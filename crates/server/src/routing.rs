//! The `bso-routing/v1` cluster routing table and its server-side
//! enforcement point.
//!
//! A cluster of `bso-server` instances partitions the object-id space
//! by *inclusive ranges*: the routing table maps each range to the
//! address of the one server currently serving it, stamped with an
//! **epoch** that only moves forward. Clients cache the table and send
//! each op straight to its owner; a server refuses ops for ranges it
//! does not own with a typed [`ErrorCode::WrongShard`] carrying its
//! epoch, which tells the client exactly whether its cache is stale
//! (refresh via [`Request::FetchRouting`], then re-route).
//!
//! ## The migration barrier
//!
//! [`RouteControl`] is the correctness heart of live migration. Every
//! apply on the serving path runs under a [`RouteControl::guard`] —
//! a shared (read) lock held across *both* the ownership check and the
//! object apply — while [`Request::DetachRanges`] takes the exclusive
//! (write) lock. That makes detach a true barrier: when the detach
//! request is answered, every apply on a detached range has either
//! fully completed (its effect is visible to the subsequent
//! [`Request::ExportObject`]) or will be refused with `WrongShard`.
//! There is no window in which an apply lands on state that was
//! already exported — the invariant the cluster's exactly-once ledger
//! tests pin down.
//!
//! A server that was never handed a table (`epoch` 0, routing
//! disabled) serves every object with no per-op locking: the
//! single-server deployments of previous revisions are unaffected.
//! The first [`Request::UpdateRouting`] must therefore arrive before
//! client traffic (the cluster bootstrap installs tables at launch,
//! before the member addresses are published).
//!
//! [`ErrorCode::WrongShard`]: crate::wire::ErrorCode::WrongShard
//! [`Request::FetchRouting`]: crate::wire::Request::FetchRouting
//! [`Request::DetachRanges`]: crate::wire::Request::DetachRanges
//! [`Request::ExportObject`]: crate::wire::Request::ExportObject
//! [`Request::UpdateRouting`]: crate::wire::Request::UpdateRouting

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

use bso_telemetry::json::{self, Json};

/// The schema name of this routing-table revision.
pub const SCHEMA: &str = "bso-routing/v1";

/// One routing-table entry: an inclusive object-id range and the
/// address of the server serving it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RouteEntry {
    /// First object id of the range.
    pub lo: u64,
    /// Last object id of the range (inclusive).
    pub hi: u64,
    /// The serving server's address, as clients should dial it.
    pub addr: String,
}

/// An epoch-stamped `bso-routing/v1` table: the cluster's full
/// object-placement map, as distributed to servers and clients.
///
/// Epochs are the staleness order: any two views of the cluster are
/// comparable by epoch, and every placement change (a migration's
/// table flip) bumps it. Servers enforce monotonicity on install.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RoutingTable {
    /// The table's epoch; higher supersedes lower.
    pub epoch: u64,
    /// The placement map. Ranges must not overlap; lookup takes the
    /// first match.
    pub entries: Vec<RouteEntry>,
}

impl RoutingTable {
    /// The address serving `obj`, or `None` if no range covers it.
    pub fn owner_of(&self, obj: u64) -> Option<&str> {
        self.entries
            .iter()
            .find(|e| e.lo <= obj && obj <= e.hi)
            .map(|e| e.addr.as_str())
    }

    /// Every range the table assigns to `addr`.
    pub fn ranges_of(&self, addr: &str) -> Vec<(u64, u64)> {
        self.entries
            .iter()
            .filter(|e| e.addr == addr)
            .map(|e| (e.lo, e.hi))
            .collect()
    }

    /// Serializes the table to its canonical JSON form.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("epoch", Json::U64(self.epoch)),
            (
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("lo", Json::U64(e.lo)),
                                ("hi", Json::U64(e.hi)),
                                ("addr", Json::str(&e.addr)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parses a table from its [`RoutingTable::to_json`] form.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field (bad
    /// JSON, wrong schema, missing keys).
    pub fn parse(src: &str) -> Result<RoutingTable, String> {
        let doc = json::parse(src).map_err(|e| format!("routing table: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("routing table schema {other:?} (want {SCHEMA:?})")),
        }
        let epoch = doc
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or("routing table: missing epoch")?;
        let items = doc
            .get("entries")
            .and_then(Json::items)
            .ok_or("routing table: missing entries")?;
        let mut entries = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let field = |key: &str| {
                item.get(key)
                    .and_then(Json::as_u64)
                    .ok_or(format!("routing entry {i}: missing {key}"))
            };
            let lo = field("lo")?;
            let hi = field("hi")?;
            let addr = item
                .get("addr")
                .and_then(Json::as_str)
                .ok_or(format!("routing entry {i}: missing addr"))?;
            if lo > hi {
                return Err(format!("routing entry {i}: empty range {lo}..={hi}"));
            }
            entries.push(RouteEntry {
                lo,
                hi,
                addr: addr.to_string(),
            });
        }
        Ok(RoutingTable { epoch, entries })
    }
}

/// What one server knows about its own placement.
pub(crate) struct RouteState {
    /// The installed epoch (0 until a table arrives).
    epoch: u64,
    /// Inclusive ranges this server currently serves.
    owned: Vec<(u64, u64)>,
    /// The full serialized table, redistributed verbatim on
    /// [`FetchRouting`](crate::wire::Request::FetchRouting).
    table: String,
    /// Lifetime count of detach operations (migration drains).
    detaches: u64,
}

/// The server's routing enforcement point: placement state behind a
/// readers-writer lock whose read side is held across each apply (see
/// the module docs for why that lock *is* the migration barrier).
pub(crate) struct RouteControl {
    /// Fast path: false until the first table install, after which
    /// every apply takes the read lock. Flipped under the write lock.
    enabled: AtomicBool,
    inner: RwLock<RouteState>,
}

/// The ownership view an apply holds for its whole duration.
pub(crate) enum RouteGuard<'a> {
    /// Routing never enabled: this server serves everything.
    Open,
    /// Routing enabled: ownership pinned until the guard drops.
    Held(RwLockReadGuard<'a, RouteState>),
}

impl RouteGuard<'_> {
    /// Whether this server may apply to `obj` right now; `Err` carries
    /// the epoch to stamp into the `WrongShard` refusal.
    pub(crate) fn check(&self, obj: u64) -> Result<(), u64> {
        match self {
            RouteGuard::Open => Ok(()),
            RouteGuard::Held(state) => {
                if state.owned.iter().any(|&(lo, hi)| lo <= obj && obj <= hi) {
                    Ok(())
                } else {
                    Err(state.epoch)
                }
            }
        }
    }
}

impl RouteControl {
    pub(crate) fn new() -> RouteControl {
        RouteControl {
            enabled: AtomicBool::new(false),
            inner: RwLock::new(RouteState {
                epoch: 0,
                owned: Vec::new(),
                table: String::new(),
                detaches: 0,
            }),
        }
    }

    /// Pins the current ownership view; hold the guard across the
    /// apply it covers.
    pub(crate) fn guard(&self) -> RouteGuard<'_> {
        if !self.enabled.load(Ordering::Acquire) {
            RouteGuard::Open
        } else {
            RouteGuard::Held(self.inner.read().expect("routing lock poisoned"))
        }
    }

    /// Installs a routing view (epoch, owned ranges, serialized
    /// table); enables enforcement. `Err` carries the installed epoch
    /// when `epoch` would move it backwards.
    pub(crate) fn update(
        &self,
        epoch: u64,
        owned: Vec<(u64, u64)>,
        table: String,
    ) -> Result<(), u64> {
        let mut state = self.inner.write().expect("routing lock poisoned");
        if epoch < state.epoch {
            return Err(state.epoch);
        }
        state.epoch = epoch;
        state.owned = owned;
        state.table = table;
        self.enabled.store(true, Ordering::Release);
        Ok(())
    }

    /// The migration drain barrier: stops serving `ranges` at `epoch`.
    /// When this returns, no apply on the detached ranges is running
    /// or will run (until a later [`RouteControl::update`] hands them
    /// back). `Err` carries the installed epoch when `epoch` would
    /// move it backwards.
    pub(crate) fn detach(&self, epoch: u64, ranges: &[(u64, u64)]) -> Result<(), u64> {
        let mut state = self.inner.write().expect("routing lock poisoned");
        if epoch < state.epoch {
            return Err(state.epoch);
        }
        if !self.enabled.load(Ordering::Acquire) {
            // A detach on a server that never saw a table: it owned
            // everything, and now everything but `ranges`.
            state.owned = vec![(0, u64::MAX)];
        }
        state.owned = subtract(&state.owned, ranges);
        state.epoch = epoch;
        state.detaches += 1;
        self.enabled.store(true, Ordering::Release);
        Ok(())
    }

    /// The installed epoch and serialized table, for redistribution.
    pub(crate) fn snapshot(&self) -> (u64, String) {
        let state = self.inner.read().expect("routing lock poisoned");
        (state.epoch, state.table.clone())
    }

    /// The routing section of the `bso-introspect/v1` document.
    pub(crate) fn introspect(&self) -> Json {
        let state = self.inner.read().expect("routing lock poisoned");
        Json::obj([
            ("enabled", Json::Bool(self.enabled.load(Ordering::Acquire))),
            ("epoch", Json::U64(state.epoch)),
            ("detaches", Json::U64(state.detaches)),
            (
                "owned",
                Json::Arr(
                    state
                        .owned
                        .iter()
                        .map(|&(lo, hi)| Json::Arr(vec![Json::U64(lo), Json::U64(hi)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Removes every id covered by `cut` from `owned` (all ranges
/// inclusive), preserving order of the surviving pieces.
fn subtract(owned: &[(u64, u64)], cut: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut result: Vec<(u64, u64)> = owned.to_vec();
    for &(clo, chi) in cut {
        let mut next = Vec::with_capacity(result.len() + 1);
        for (lo, hi) in result {
            if chi < lo || hi < clo {
                next.push((lo, hi));
                continue;
            }
            if lo < clo {
                next.push((lo, clo - 1));
            }
            if chi < hi {
                next.push((chi + 1, hi));
            }
        }
        result = next;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RoutingTable {
        RoutingTable {
            epoch: 7,
            entries: vec![
                RouteEntry {
                    lo: 0,
                    hi: 9,
                    addr: "127.0.0.1:4001".into(),
                },
                RouteEntry {
                    lo: 10,
                    hi: u64::MAX,
                    addr: "127.0.0.1:4002".into(),
                },
            ],
        }
    }

    #[test]
    fn table_json_round_trips() {
        let t = table();
        let back = RoutingTable::parse(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.owner_of(0), Some("127.0.0.1:4001"));
        assert_eq!(back.owner_of(9), Some("127.0.0.1:4001"));
        assert_eq!(back.owner_of(10), Some("127.0.0.1:4002"));
        assert_eq!(back.owner_of(u64::MAX), Some("127.0.0.1:4002"));
        assert_eq!(back.ranges_of("127.0.0.1:4001"), vec![(0, 9)]);
        let empty = RoutingTable::default();
        assert_eq!(empty.owner_of(3), None);
    }

    #[test]
    fn parse_rejects_foreign_documents() {
        assert!(RoutingTable::parse("").is_err());
        assert!(RoutingTable::parse("{\"schema\":\"bso-introspect/v1\"}").is_err());
        assert!(RoutingTable::parse("{\"schema\":\"bso-routing/v1\"}").is_err());
        // An empty range is a construction bug, not a placement.
        let bad = "{\"schema\":\"bso-routing/v1\",\"epoch\":1,\
                   \"entries\":[{\"lo\":5,\"hi\":4,\"addr\":\"x\"}]}";
        assert!(RoutingTable::parse(bad).is_err());
    }

    #[test]
    fn disabled_control_serves_everything() {
        let rc = RouteControl::new();
        assert!(matches!(rc.guard(), RouteGuard::Open));
        assert_eq!(rc.guard().check(u64::MAX), Ok(()));
        assert_eq!(rc.snapshot(), (0, String::new()));
    }

    #[test]
    fn update_enables_enforcement_and_epochs_only_advance() {
        let rc = RouteControl::new();
        rc.update(3, vec![(0, 9)], "t3".into()).unwrap();
        assert_eq!(rc.guard().check(9), Ok(()));
        assert_eq!(rc.guard().check(10), Err(3), "refusal carries the epoch");
        assert_eq!(rc.snapshot(), (3, "t3".into()));
        // Stale installs are refused, naming the installed epoch.
        assert_eq!(rc.update(2, vec![(0, u64::MAX)], "t2".into()), Err(3));
        assert_eq!(rc.guard().check(10), Err(3));
        // Same-epoch reinstall is allowed (idempotent redistribution).
        rc.update(3, vec![(0, 9)], "t3".into()).unwrap();
    }

    #[test]
    fn detach_carves_out_ranges() {
        let rc = RouteControl::new();
        rc.update(1, vec![(0, 99)], "t".into()).unwrap();
        rc.detach(2, &[(10, 19)]).unwrap();
        assert_eq!(rc.guard().check(9), Ok(()));
        assert_eq!(rc.guard().check(10), Err(2));
        assert_eq!(rc.guard().check(19), Err(2));
        assert_eq!(rc.guard().check(20), Ok(()));
        assert_eq!(rc.detach(1, &[(0, 0)]), Err(2), "stale detach refused");
        // A detach on a never-configured server leaves it owning the
        // complement.
        let fresh = RouteControl::new();
        fresh.detach(1, &[(5, 5)]).unwrap();
        assert_eq!(fresh.guard().check(5), Err(1));
        assert_eq!(fresh.guard().check(4), Ok(()));
        assert_eq!(fresh.guard().check(6), Ok(()));
    }

    #[test]
    fn range_subtraction_covers_the_edge_shapes() {
        // Disjoint, overlap-left, overlap-right, split, swallow.
        assert_eq!(subtract(&[(10, 20)], &[(0, 5)]), vec![(10, 20)]);
        assert_eq!(subtract(&[(10, 20)], &[(5, 12)]), vec![(13, 20)]);
        assert_eq!(subtract(&[(10, 20)], &[(18, 30)]), vec![(10, 17)]);
        assert_eq!(subtract(&[(10, 20)], &[(12, 15)]), vec![(10, 11), (16, 20)]);
        assert_eq!(subtract(&[(10, 20)], &[(10, 20)]), vec![]);
        assert_eq!(subtract(&[(0, u64::MAX)], &[(0, 0)]), vec![(1, u64::MAX)]);
        assert_eq!(
            subtract(&[(0, u64::MAX)], &[(u64::MAX, u64::MAX)]),
            vec![(0, u64::MAX - 1)]
        );
        assert_eq!(
            subtract(&[(0, 4), (10, 14)], &[(3, 11)]),
            vec![(0, 2), (12, 14)]
        );
    }
}
