//! Live server introspection: per-loop probes, the flight recorder,
//! and the `bso-introspect/v1` snapshot document.
//!
//! The telemetry [`Registry`](bso_telemetry::Registry) is opt-in and
//! usually disabled, but a production server must be observable *as
//! found* — so every loop also feeds an always-on [`LoopProbe`]:
//! plain (non-atomic) log2 histograms for apply/turn/flush timings
//! plus a fixed-size **flight recorder** ring of recent request
//! records. The request path never touches shared state: each loop
//! buffers its records in a loop-local [`ProbeScratch`] (a plain `Vec`
//! push per request) and [`IntrospectState::commit_turn`] drains the
//! batch into the mutex-guarded probe once per readiness turn — the
//! lock is taken at turn frequency, not request frequency, so the
//! always-on cost per request is a few nanoseconds (measured in
//! EXPERIMENTS.md). An [`Introspect`](crate::wire::Request::Introspect)
//! scrape therefore sees state as of each loop's last completed turn.
//!
//! The flight recorder keeps the last [`RING_CAPACITY`] request
//! records (opcode, object id, cross-shard queue time, apply time,
//! response batch depth) and separately **pins** slow requests: any
//! record whose apply time exceeds the loop's own observed p99
//! (refreshed every [`THRESHOLD_REFRESH`] records, floored at
//! [`SLOW_FLOOR_NS`] so sub-microsecond noise is never pinned). Both
//! rings are dumped through `Introspect`, written to the file named by
//! [`FLIGHT_ENV`] on shutdown, and spilled to stderr if a loop thread
//! panics — the black box a crashed server leaves behind.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Instant;

use bso_telemetry::json::Json;
use bso_telemetry::{bucket_index, HistogramSnapshot, HISTOGRAM_BUCKETS};

use crate::event_loop::Shared;
use crate::wire;

/// Environment variable naming the file the server writes its full
/// introspection snapshot (flight recorders included) to on shutdown:
/// `BSO_FLIGHT=path.json`.
pub const FLIGHT_ENV: &str = "BSO_FLIGHT";

/// Flight-recorder ring depth per loop (most recent requests).
pub(crate) const RING_CAPACITY: usize = 256;
/// At most this many slow requests stay pinned per loop (oldest pins
/// are dropped and counted).
pub(crate) const SLOW_PINS: usize = 32;
/// Floor under the slow-pin threshold: the p99 of a healthy loop sits
/// well below this, so only genuine outliers are pinned.
pub(crate) const SLOW_FLOOR_NS: u64 = 10_000;
/// The slow-pin threshold re-derives from the loop's apply histogram
/// every this many records.
pub(crate) const THRESHOLD_REFRESH: u32 = 1024;
/// `Introspect` dumps at most this many recent records per loop (the
/// shutdown/panic dumps are uncapped) so the response stays far below
/// [`crate::wire::MAX_FRAME`] at any shard count.
const SCRAPE_RECENT: usize = 16;
/// `Introspect` dumps at most this many pinned-slow records per loop.
const SCRAPE_SLOW: usize = 8;

/// One flight-recorder entry: what a request did and what it cost.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FlightRecord {
    /// Per-loop sequence number (monotonic, never wraps in practice).
    pub(crate) seq: u64,
    /// The request's wire opcode.
    pub(crate) opcode: u8,
    /// Target object id (or session id for election opcodes).
    pub(crate) object: u64,
    /// Time spent queued in a cross-shard [`XQueue`](crate::shard::XQueue)
    /// (0 for requests applied inline on the arriving loop).
    pub(crate) queue_ns: u64,
    /// Time inside the shard apply/elect.
    pub(crate) apply_ns: u64,
    /// Responses already staged on the connection when this one was
    /// (i.e. its position in the turn's write batch; 0 for replies
    /// routed back from another loop).
    pub(crate) batch: u64,
}

/// One not-yet-committed flight record, buffered loop-locally between
/// turn commits (no `seq` yet — the probe assigns it at commit).
#[derive(Clone, Copy)]
pub(crate) struct PendingRecord {
    opcode: u8,
    object: u64,
    queue_ns: u64,
    apply_ns: u64,
    batch: u64,
}

/// A loop's private probe buffer. The hot path pushes into plain
/// `Vec`s — no lock, no shared cache line — and the loop hands the
/// whole batch to [`IntrospectState::commit_turn`] once per readiness
/// turn.
#[derive(Default)]
pub(crate) struct ProbeScratch {
    requests: Vec<PendingRecord>,
    flushes: Vec<u64>,
    shed: u64,
}

impl ProbeScratch {
    /// Buffers one served request (the always-on per-request cost: one
    /// `Vec` push).
    #[inline]
    pub(crate) fn push_request(
        &mut self,
        opcode: u8,
        object: u64,
        queue_ns: u64,
        apply_ns: u64,
        batch: u64,
    ) {
        self.requests.push(PendingRecord {
            opcode,
            object,
            queue_ns,
            apply_ns,
            batch,
        });
    }

    /// Buffers one completed response flush of `batch` frames.
    #[inline]
    pub(crate) fn push_flush(&mut self, batch: u64) {
        self.flushes.push(batch);
    }

    /// Counts one deadline-shed op (refused [`Expired`], not applied).
    ///
    /// [`Expired`]: crate::wire::ErrorCode::Expired
    #[inline]
    pub(crate) fn push_shed(&mut self) {
        self.shed += 1;
    }
}

impl FlightRecord {
    fn to_json(self) -> Json {
        Json::obj([
            ("apply_ns", Json::U64(self.apply_ns)),
            ("batch", Json::U64(self.batch)),
            ("object", Json::U64(self.object)),
            ("opcode", Json::U64(u64::from(self.opcode))),
            ("queue_ns", Json::U64(self.queue_ns)),
            ("seq", Json::U64(self.seq)),
        ])
    }
}

/// A plain (single-writer) log2 histogram sharing the bucket layout —
/// and therefore the quantile math — of the telemetry crate's atomic
/// [`Histogram`](bso_telemetry::Histogram), without paying its atomic
/// read-modify-writes on the always-on path.
pub(crate) struct PlainHist {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl PlainHist {
    fn new() -> PlainHist {
        PlainHist {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub(crate) fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// A [`HistogramSnapshot`] view, reusing the telemetry crate's
    /// interpolated quantile estimator.
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| (i as u32, *n))
                .collect(),
        }
    }
}

fn hist_json(h: &HistogramSnapshot) -> Json {
    Json::obj([
        ("count", Json::U64(h.count)),
        ("max", Json::U64(h.max)),
        ("min", Json::U64(h.min)),
        ("p50", Json::U64(h.p50())),
        ("p90", Json::U64(h.p90())),
        ("p99", Json::U64(h.p99())),
        ("sum", Json::U64(h.sum)),
    ])
}

/// One event loop's always-on instrumentation, single-writer behind
/// the [`IntrospectState`] mutex.
pub(crate) struct LoopProbe {
    conns: u64,
    wakeups: u64,
    /// Ops this loop shed on deadline expiry (inline or at its apply
    /// site for queued transfers).
    shed: u64,
    turn_ns: PlainHist,
    apply_ns: PlainHist,
    elect_ns: PlainHist,
    flush_batch: PlainHist,
    /// Power-of-two circular buffer written at `seq % RING_CAPACITY`:
    /// one store per record, no length bookkeeping (`seq` already says
    /// how many are live).
    ring: Box<[FlightRecord; RING_CAPACITY]>,
    slow: VecDeque<FlightRecord>,
    seq: u64,
    threshold_ns: u64,
    since_refresh: u32,
    slow_dropped: u64,
}

impl LoopProbe {
    fn new() -> LoopProbe {
        LoopProbe {
            conns: 0,
            wakeups: 0,
            shed: 0,
            turn_ns: PlainHist::new(),
            apply_ns: PlainHist::new(),
            elect_ns: PlainHist::new(),
            flush_batch: PlainHist::new(),
            ring: Box::new([FlightRecord::default(); RING_CAPACITY]),
            slow: VecDeque::with_capacity(SLOW_PINS),
            seq: 0,
            threshold_ns: SLOW_FLOOR_NS,
            since_refresh: 0,
            slow_dropped: 0,
        }
    }

    fn record_request(
        &mut self,
        opcode: u8,
        object: u64,
        queue_ns: u64,
        apply_ns: u64,
        batch: u64,
    ) {
        let rec = FlightRecord {
            seq: self.seq,
            opcode,
            object,
            queue_ns,
            apply_ns,
            batch,
        };
        self.ring[self.seq as usize % RING_CAPACITY] = rec;
        self.seq += 1;
        if opcode == wire::OP_ELECT {
            self.elect_ns.record(apply_ns);
        } else {
            self.apply_ns.record(apply_ns);
        }
        if apply_ns >= self.threshold_ns {
            if self.slow.len() >= SLOW_PINS {
                self.slow.pop_front();
                self.slow_dropped += 1;
            }
            self.slow.push_back(rec);
        }
        self.since_refresh += 1;
        if self.since_refresh >= THRESHOLD_REFRESH {
            self.since_refresh = 0;
            self.threshold_ns = self.apply_ns.snapshot().p99().max(SLOW_FLOOR_NS);
        }
    }

    fn flight_json(&self, recent_cap: usize, slow_cap: usize) -> Json {
        // Newest `take` records end at `seq`, oldest first.
        let live = usize::try_from(self.seq)
            .unwrap_or(usize::MAX)
            .min(RING_CAPACITY);
        let take = live.min(recent_cap);
        let recent = (0..take)
            .map(|i| {
                let back = (take - i) as u64;
                self.ring[(self.seq - back) as usize % RING_CAPACITY].to_json()
            })
            .collect();
        let slow = self
            .slow
            .iter()
            .skip(self.slow.len().saturating_sub(slow_cap))
            .map(|r| r.to_json())
            .collect();
        Json::obj([
            ("recent", Json::Arr(recent)),
            ("seq", Json::U64(self.seq)),
            ("slow", Json::Arr(slow)),
            ("slow_dropped", Json::U64(self.slow_dropped)),
            ("threshold_ns", Json::U64(self.threshold_ns)),
        ])
    }

    fn to_json(&self, shard: usize, queue_depth: usize) -> Json {
        Json::obj([
            ("shard", Json::U64(shard as u64)),
            ("apply_ns", hist_json(&self.apply_ns.snapshot())),
            ("conns", Json::U64(self.conns)),
            ("elect_ns", hist_json(&self.elect_ns.snapshot())),
            ("flight", self.flight_json(SCRAPE_RECENT, SCRAPE_SLOW)),
            ("flush_batch", hist_json(&self.flush_batch.snapshot())),
            ("queue_depth", Json::U64(queue_depth as u64)),
            ("shed", Json::U64(self.shed)),
            ("turn_ns", hist_json(&self.turn_ns.snapshot())),
            ("wakeups", Json::U64(self.wakeups)),
        ])
    }
}

/// The server's bind-time identity, echoed verbatim in every
/// `Introspect` snapshot so a scrape identifies what it is talking to.
pub(crate) struct ConfigInfo {
    pub(crate) shards: usize,
    pub(crate) queue_capacity: usize,
    pub(crate) backend: String,
    pub(crate) read_chunk: usize,
    pub(crate) pin_cores: bool,
}

/// Always-on introspection state hung off the server's `Shared`: the
/// bind-time config plus one [`LoopProbe`] per event loop.
pub(crate) struct IntrospectState {
    started: Instant,
    config: ConfigInfo,
    probes: Vec<Mutex<LoopProbe>>,
}

impl IntrospectState {
    pub(crate) fn new(config: ConfigInfo) -> IntrospectState {
        let probes = (0..config.shards)
            .map(|_| Mutex::new(LoopProbe::new()))
            .collect();
        IntrospectState {
            started: Instant::now(),
            config,
            probes,
        }
    }

    /// Drains loop `index`'s turn scratch into its shared probe and
    /// records the turn itself: one uncontended lock per readiness
    /// turn, regardless of how many requests the turn served.
    pub(crate) fn commit_turn(
        &self,
        index: usize,
        scratch: &mut ProbeScratch,
        turn_ns: u64,
        conns: usize,
    ) {
        let mut p = self.probes[index].lock().unwrap();
        for r in scratch.requests.drain(..) {
            p.record_request(r.opcode, r.object, r.queue_ns, r.apply_ns, r.batch);
        }
        for batch in scratch.flushes.drain(..) {
            p.flush_batch.record(batch);
        }
        p.shed += std::mem::take(&mut scratch.shed);
        p.wakeups += 1;
        p.turn_ns.record(turn_ns);
        p.conns = conns as u64;
    }

    /// Loop `index`'s flight recorder as JSON (uncapped) — the panic
    /// dump.
    pub(crate) fn flight_json(&self, index: usize) -> Json {
        self.probes[index]
            .lock()
            .unwrap()
            .flight_json(RING_CAPACITY, SLOW_PINS)
    }
}

/// Builds the `bso-introspect/v1` document for `shared`'s server.
///
/// Deterministic rendering: keys are emitted in a fixed (sorted)
/// order and the shard array in shard order, so two scrapes of
/// identical state are byte-identical.
pub(crate) fn introspect_doc(shared: &Shared) -> Json {
    let intro = &shared.introspect;
    let stats = &shared.stats;
    let shards: Vec<Json> = intro
        .probes
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let depth = shared.loops[i].xq.len();
            p.lock().unwrap().to_json(i, depth)
        })
        .collect();
    Json::obj([
        ("schema", Json::str("bso-introspect/v1")),
        (
            "config",
            Json::obj([
                ("backend", Json::str(&intro.config.backend)),
                ("pin_cores", Json::Bool(intro.config.pin_cores)),
                (
                    "queue_capacity",
                    Json::U64(intro.config.queue_capacity as u64),
                ),
                ("read_chunk", Json::U64(intro.config.read_chunk as u64)),
                ("shards", Json::U64(intro.config.shards as u64)),
            ]),
        ),
        (
            "server",
            Json::obj([
                ("crate", Json::str("bso-server")),
                (
                    "uptime_ms",
                    Json::U64(intro.started.elapsed().as_millis() as u64),
                ),
                ("version", Json::str(env!("CARGO_PKG_VERSION"))),
                ("wire", Json::str(wire::SCHEMA)),
            ]),
        ),
        (
            "stats",
            Json::obj([
                ("busy", Json::U64(stats.busy.load(Ordering::Relaxed))),
                (
                    "connections",
                    Json::U64(stats.connections.load(Ordering::Relaxed)),
                ),
                (
                    "malformed",
                    Json::U64(stats.malformed.load(Ordering::Relaxed)),
                ),
                ("replays", Json::U64(stats.replays.load(Ordering::Relaxed))),
                (
                    "requests",
                    Json::U64(stats.requests.load(Ordering::Relaxed)),
                ),
                (
                    "responses",
                    Json::U64(stats.responses.load(Ordering::Relaxed)),
                ),
                ("resumes", Json::U64(stats.resumes.load(Ordering::Relaxed))),
                ("sessions", Json::U64(shared.sessions.sessions() as u64)),
                ("shed", Json::U64(stats.shed.load(Ordering::Relaxed))),
                (
                    "version_rejects",
                    Json::U64(stats.version_rejects.load(Ordering::Relaxed)),
                ),
                (
                    "wrong_shard",
                    Json::U64(stats.wrong_shard.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        ("routing", shared.route.introspect()),
        ("shards", Json::Arr(shards)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_hist_matches_telemetry_quantile_semantics() {
        let mut h = PlainHist::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        for v in [1u64, 2, 4, 8, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1024);
        assert_eq!(s.sum, 1039);
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
        assert!(s.p99() <= s.max && s.p50() >= s.min);
    }

    #[test]
    fn flight_recorder_pins_slow_requests_and_bounds_both_rings() {
        let mut p = LoopProbe::new();
        // Fast requests fill (and wrap) the ring without pinning.
        for i in 0..(RING_CAPACITY as u64 + 10) {
            p.record_request(wire::OP_APPLY, i, 0, 100, 1);
        }
        let full = p.flight_json(RING_CAPACITY, SLOW_PINS);
        let recent = full.get("recent").and_then(Json::items).unwrap();
        assert_eq!(recent.len(), RING_CAPACITY);
        assert_eq!(
            recent[0].get("seq").and_then(Json::as_u64),
            Some(10),
            "oldest dropped"
        );
        assert_eq!(
            recent[RING_CAPACITY - 1].get("seq").and_then(Json::as_u64),
            Some(RING_CAPACITY as u64 + 9),
            "newest last"
        );
        assert!(p.slow.is_empty(), "sub-floor requests are never pinned");
        // Slow requests pin, and the pin ring is bounded too.
        for i in 0..(SLOW_PINS as u64 + 3) {
            p.record_request(wire::OP_APPLY, i, 0, SLOW_FLOOR_NS * 2, 0);
        }
        assert_eq!(p.slow.len(), SLOW_PINS);
        assert_eq!(p.slow_dropped, 3);
        let doc = p.flight_json(4, SLOW_PINS);
        assert_eq!(doc.get("recent").and_then(Json::len), Some(4));
        assert_eq!(doc.get("slow").and_then(Json::len), Some(SLOW_PINS));
        assert_eq!(doc.get("slow_dropped").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn threshold_refreshes_from_the_observed_p99() {
        let mut p = LoopProbe::new();
        // A workload whose p99 sits far above the floor raises the
        // threshold at the refresh boundary.
        for _ in 0..THRESHOLD_REFRESH {
            p.record_request(wire::OP_APPLY, 0, 0, SLOW_FLOOR_NS * 8, 0);
        }
        assert!(p.threshold_ns >= SLOW_FLOOR_NS * 8, "{}", p.threshold_ns);
    }
}
