//! Per-loop shard state and the bounded cross-loop queue.
//!
//! Objects are partitioned across event loops by id (`ObjectId(i)`
//! lives on loop `i mod nshards`), and each loop owns its
//! [`ShardState`] outright — there is no locking around an object,
//! ever. A request arriving on the loop that owns its object is
//! applied inline (the fast path); a request for another loop's object
//! crosses exactly one bounded [`XQueue`]. Routing never blocks: a
//! full queue is answered with a typed [`ErrorCode::Busy`] response
//! instead of stalling the event loop — backpressure is the client's
//! problem to retry, not the server's to absorb.
//!
//! Because one loop owns each object outright, operations on it are
//! trivially linearizable: the linearization point is the loop's
//! sequential [`ObjectState::apply`]. Cross-object operations don't
//! exist in the wire protocol, so no loop ever waits on another.
//!
//! Election sessions (see [`crate::wire::Request::OpenElection`]) are
//! sharded the same way by session id. Each session instantiates the
//! Burns–Cruz–Loui [`CasOnlyElection`] from `bso-protocols` over a
//! private `compare&swap-(k)` object, and an `Elect` request drives
//! that participant's *actual protocol state machine* — one
//! [`Protocol::next_action`]/[`Protocol::on_response`] step at a time —
//! to its decision, so the service and the simulator run the very same
//! election code.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use bso_objects::spec::ObjectState;
use bso_objects::{Layout, Op, Value};
use bso_protocols::CasOnlyElection;
use bso_sim::{Action, Protocol};
use bso_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::wire::{ErrorCode, Response};

/// Telemetry handles one shard records into.
struct ShardMetrics {
    apply_ns: Histogram,
    elect_ns: Histogram,
    errors_object: Counter,
    elections_opened: Counter,
    elections_decided: Counter,
}

/// One event loop's slice of the object space plus its election
/// sessions. Strictly single-owner: only the owning loop ever touches
/// it, so every method takes `&mut self` and the interior is lock-free.
pub(crate) struct ShardState {
    /// `objects[id]` is `Some` only for ids this shard owns; the rest
    /// of the id space stays `None` so misrouted ids fail loudly
    /// instead of silently aliasing.
    objects: Vec<Option<ObjectState>>,
    sessions: HashMap<u32, ElectionSession>,
    metrics: ShardMetrics,
}

/// A live election session: the protocol instance plus its private
/// register.
struct ElectionSession {
    proto: CasOnlyElection,
    cas: ObjectState,
}

impl ShardState {
    /// Materializes shard `shard` of `nshards` over `layout`.
    pub(crate) fn new(
        layout: &Layout,
        shard: usize,
        nshards: usize,
        registry: &Registry,
    ) -> ShardState {
        let objects = layout
            .objects()
            .iter()
            .enumerate()
            .map(|(id, init)| (id % nshards == shard).then(|| ObjectState::from_init(init)))
            .collect();
        ShardState {
            objects,
            sessions: HashMap::new(),
            metrics: ShardMetrics {
                apply_ns: registry.histogram("server.apply_ns"),
                elect_ns: registry.histogram("server.elect_ns"),
                errors_object: registry.counter("server.errors.object"),
                elections_opened: registry.counter("server.elections.opened"),
                elections_decided: registry.counter("server.elections.decided"),
            },
        }
    }

    /// Applies one operation to an owned object, returning the
    /// response and the measured apply time in nanoseconds (for the
    /// caller's flight recorder and trace spans). This call is the
    /// linearization point of the operation.
    pub(crate) fn apply(&mut self, pid: usize, op: &Op) -> (Response, u64) {
        let t = std::time::Instant::now();
        let resp = match self.objects.get_mut(op.obj.0).and_then(Option::as_mut) {
            Some(state) => match state.apply(pid, &op.kind) {
                Ok(v) => Response::Ok(v),
                Err(e) => {
                    self.metrics.errors_object.inc();
                    Response::Err {
                        code: ErrorCode::Object,
                        message: e.to_string(),
                    }
                }
            },
            None => Response::Err {
                code: ErrorCode::BadRequest,
                message: format!("no object with id {}", op.obj),
            },
        };
        let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics.apply_ns.record(ns);
        (resp, ns)
    }

    /// Creates an election session under an id already allocated by
    /// the router (`session % nshards` must equal this shard's index).
    pub(crate) fn open_election(&mut self, session: u32, k: usize) -> Response {
        match open_session(k) {
            Ok(s) => {
                self.sessions.insert(session, s);
                self.metrics.elections_opened.inc();
                Response::Session(session)
            }
            Err(message) => Response::Err {
                code: ErrorCode::BadRequest,
                message,
            },
        }
    }

    /// Runs one participant of a session to its decision, returning
    /// the response and the measured time in nanoseconds.
    pub(crate) fn elect(&mut self, session: u32, pid: usize) -> (Response, u64) {
        let t = std::time::Instant::now();
        let resp = match self.sessions.get_mut(&session) {
            None => Response::Err {
                code: ErrorCode::UnknownSession,
                message: format!("no election session {session}"),
            },
            Some(s) => match run_participant(s, pid) {
                Ok(v) => {
                    self.metrics.elections_decided.inc();
                    Response::Ok(v)
                }
                Err(message) => Response::Err {
                    code: ErrorCode::BadRequest,
                    message,
                },
            },
        };
        let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics.elect_ns.record(ns);
        (resp, ns)
    }

    // Cluster-plane transfer surface (live shard migration; see
    // DESIGN.md §3.15). Exports leave the source state in place — the
    // routing table, not deletion, is what stops a drained range from
    // serving — and installs overwrite whatever stale copy the target
    // materialized from the shared layout.

    /// Serializes an owned object's full state for migration.
    pub(crate) fn export_object(&mut self, obj: usize) -> Response {
        match self.objects.get(obj).and_then(Option::as_ref) {
            Some(state) => Response::Ok(state.export()),
            None => Response::Err {
                code: ErrorCode::BadRequest,
                message: format!("no object with id {obj} to export"),
            },
        }
    }

    /// Installs a migrated object's state under `obj`, overwriting any
    /// resident copy (the stale layout-initialized one, typically).
    pub(crate) fn install_object(&mut self, obj: usize, state: &Value) -> Response {
        match ObjectState::import(state) {
            Ok(imported) => {
                if obj >= self.objects.len() {
                    self.objects.resize_with(obj + 1, || None);
                }
                self.objects[obj] = Some(imported);
                Response::Ok(Value::Nil)
            }
            Err(message) => Response::Err {
                code: ErrorCode::BadRequest,
                message: format!("cannot install object {obj}: {message}"),
            },
        }
    }

    /// Serializes an election session as `[k, cas-state]` — enough to
    /// reconstruct the session (and its history so far) elsewhere.
    pub(crate) fn export_session(&mut self, session: u32) -> Response {
        match self.sessions.get(&session) {
            Some(s) => {
                // Burns–Cruz–Loui at the ceiling: n = k − 1.
                let k = s.proto.processes() + 1;
                Response::Ok(Value::Seq(vec![Value::Int(k as i64), s.cas.export()]))
            }
            None => Response::Err {
                code: ErrorCode::UnknownSession,
                message: format!("no election session {session} to export"),
            },
        }
    }

    /// Reconstructs an election session from an exported `state` (the
    /// cas-state half of [`ShardState::export_session`]'s pair),
    /// overwriting any resident session under the same id.
    pub(crate) fn install_session(&mut self, session: u32, k: usize, state: &Value) -> Response {
        let mut s = match open_session(k) {
            Ok(s) => s,
            Err(message) => {
                return Response::Err {
                    code: ErrorCode::BadRequest,
                    message,
                }
            }
        };
        match ObjectState::import(state) {
            Ok(cas) => {
                s.cas = cas;
                self.sessions.insert(session, s);
                self.metrics.elections_opened.inc();
                Response::Session(session)
            }
            Err(message) => Response::Err {
                code: ErrorCode::BadRequest,
                message: format!("cannot install session {session}: {message}"),
            },
        }
    }
}

/// Builds a session: a `CasOnlyElection` at the Burns–Cruz–Loui
/// ceiling (`n = k − 1`) over a fresh private register.
fn open_session(k: usize) -> Result<ElectionSession, String> {
    if !(2..=255).contains(&k) {
        return Err(format!("election domain k must be in 2..=255, got {k}"));
    }
    let proto = CasOnlyElection::new(k - 1, k)?;
    let layout = proto.layout();
    let cas = ObjectState::from_init(&layout.objects()[0]);
    Ok(ElectionSession { proto, cas })
}

/// Drives participant `pid`'s state machine to its decision against
/// the session's register. `CasOnlyElection` is wait-free (one shared
/// operation then a decision), so this loop is bounded.
fn run_participant(s: &mut ElectionSession, pid: usize) -> Result<Value, String> {
    if pid >= s.proto.processes() {
        return Err(format!(
            "participant {pid} out of range (session hosts {})",
            s.proto.processes()
        ));
    }
    let mut state = s.proto.init(pid, &Value::Pid(pid));
    loop {
        match s.proto.next_action(&state) {
            Action::Invoke(op) => {
                let resp = s.cas.apply(pid, &op.kind).map_err(|e| e.to_string())?;
                s.proto.on_response(&mut state, resp);
            }
            Action::Decide(v) => return Ok(v),
        }
    }
}

/// Why a message could not be enqueued on an [`XQueue`].
pub(crate) enum RouteError {
    /// The queue is at capacity.
    Busy,
    /// The owning loop has exited.
    Closed,
}

/// The **bounded** cross-loop work queue in front of each event loop.
///
/// [`XQueue::try_push`] is the only way in; it either enqueues or
/// reports why not ([`RouteError::Busy`] / [`RouteError::Closed`]).
/// Depth is exported as the loop's `server.shard<i>.queue_depth`
/// gauge. The owning loop drains with [`XQueue::drain_into`], which
/// takes everything queued in one lock acquisition — pushers never
/// hold the lock across anything slower than a `VecDeque::push_back`.
pub(crate) struct XQueue<T> {
    q: Mutex<VecDeque<T>>,
    capacity: usize,
    closed: AtomicBool,
    depth: Gauge,
}

impl<T> XQueue<T> {
    /// A queue of at most `capacity` entries, reporting its depth
    /// through `depth`.
    pub(crate) fn new(capacity: usize, depth: Gauge) -> XQueue<T> {
        XQueue {
            q: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            closed: AtomicBool::new(false),
            depth,
        }
    }

    /// Enqueues without blocking, or says why not. The caller turns
    /// [`RouteError::Busy`] into a typed wire response — the request
    /// was *not* enqueued.
    pub(crate) fn try_push(&self, item: T) -> Result<(), RouteError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(RouteError::Closed);
        }
        let mut q = self.q.lock().unwrap();
        if q.len() >= self.capacity {
            return Err(RouteError::Busy);
        }
        q.push_back(item);
        self.depth.set(q.len() as u64);
        Ok(())
    }

    /// Moves everything queued into `out` (appending), in FIFO order.
    pub(crate) fn drain_into(&self, out: &mut Vec<T>) {
        let mut q = self.q.lock().unwrap();
        out.extend(q.drain(..));
        self.depth.set(0);
    }

    /// Marks the queue closed: subsequent pushes fail with
    /// [`RouteError::Closed`]. Already-queued items stay drainable.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether nothing is queued right now.
    pub(crate) fn is_empty(&self) -> bool {
        self.q.lock().unwrap().is_empty()
    }

    /// How many entries are queued right now (an instantaneous depth
    /// reading for `Introspect` scrapes).
    pub(crate) fn len(&self) -> usize {
        self.q.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{ObjectId, ObjectInit};

    fn small_layout() -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: 4 });
        l.push(ObjectInit::Register(Value::Nil));
        l.push(ObjectInit::FetchAdd(0));
        l
    }

    #[test]
    fn apply_owns_only_its_slice_of_the_id_space() {
        let layout = small_layout();
        // Shard 1 of 2 owns object 1 only.
        let mut s = ShardState::new(&layout, 1, 2, &Registry::disabled());
        let (resp, _) = s.apply(0, &Op::write(ObjectId(1), Value::Int(5)));
        assert_eq!(resp, Response::Ok(Value::Nil));
        let (resp, _) = s.apply(0, &Op::read(ObjectId(1)));
        assert_eq!(resp, Response::Ok(Value::Int(5)));
        // A misrouted id (object 0 belongs to shard 0) is a
        // BadRequest, not an aliased apply.
        let (resp, _) = s.apply(0, &Op::read(ObjectId(0)));
        assert!(matches!(
            resp,
            Response::Err {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // Object-level refusals are typed separately.
        let (resp, _) = s.apply(0, &Op::new(ObjectId(1), bso_objects::OpKind::Dequeue));
        assert!(matches!(
            resp,
            Response::Err {
                code: ErrorCode::Object,
                ..
            }
        ));
    }

    #[test]
    fn election_session_elects_exactly_one_winner() {
        let mut s = ShardState::new(&Layout::new(), 0, 1, &Registry::disabled());
        assert_eq!(s.open_election(7, 5), Response::Session(7));
        let mut winners = Vec::new();
        for pid in 0..4 {
            match s.elect(7, pid).0 {
                Response::Ok(v) => winners.push(v.as_pid().unwrap()),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Consistency: everyone elected the same leader; validity: the
        // leader is a participant.
        assert!(winners.windows(2).all(|w| w[0] == w[1]));
        assert!(winners[0] < 4);
        // Unknown session, out-of-range pid, and a bad domain are
        // typed errors.
        assert!(matches!(
            s.elect(8, 0).0,
            Response::Err {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        assert!(matches!(
            s.elect(7, 99).0,
            Response::Err {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        assert!(matches!(
            s.open_election(9, 1),
            Response::Err {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn migration_transfer_round_trips_objects_and_sessions() {
        let layout = small_layout();
        let mut src = ShardState::new(&layout, 0, 1, &Registry::disabled());
        let mut dst = ShardState::new(&layout, 0, 1, &Registry::disabled());
        src.apply(0, &Op::write(ObjectId(1), Value::Int(41)));
        let exported = match src.export_object(1) {
            Response::Ok(v) => v,
            other => panic!("export refused: {other:?}"),
        };
        assert_eq!(dst.install_object(1, &exported), Response::Ok(Value::Nil));
        let (resp, _) = dst.apply(0, &Op::read(ObjectId(1)));
        assert_eq!(resp, Response::Ok(Value::Int(41)));
        // The source copy stays in place: the routing table, not
        // deletion, is what retires a migrated range.
        let (resp, _) = src.apply(0, &Op::read(ObjectId(1)));
        assert_eq!(resp, Response::Ok(Value::Int(41)));

        // A half-run election migrates with its history: pid 0 decides
        // at the source, pid 1 at the target elects the same winner.
        assert_eq!(src.open_election(3, 5), Response::Session(3));
        let w0 = match src.elect(3, 0).0 {
            Response::Ok(v) => v.as_pid().unwrap(),
            other => panic!("elect refused: {other:?}"),
        };
        let pair = match src.export_session(3) {
            Response::Ok(Value::Seq(p)) => p,
            other => panic!("session export refused: {other:?}"),
        };
        assert_eq!(pair[0], Value::Int(5), "exported pair leads with k");
        assert_eq!(dst.install_session(3, 5, &pair[1]), Response::Session(3));
        let w1 = match dst.elect(3, 1).0 {
            Response::Ok(v) => v.as_pid().unwrap(),
            other => panic!("elect refused: {other:?}"),
        };
        assert_eq!(w0, w1, "migrated session keeps its decided winner");

        // Typed refusals: unknown ids and malformed state.
        assert!(matches!(
            src.export_object(99),
            Response::Err {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        assert!(matches!(
            src.export_session(9),
            Response::Err {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        assert!(matches!(
            dst.install_object(1, &Value::Int(7)),
            Response::Err {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        assert!(matches!(
            dst.install_session(4, 1, &pair[1]),
            Response::Err {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
    }

    #[test]
    fn full_queue_reports_busy_without_blocking() {
        let q: XQueue<u64> = XQueue::new(2, Registry::disabled().gauge("test.q"));
        assert!(q.try_push(0).is_ok());
        assert!(q.try_push(1).is_ok());
        assert!(matches!(q.try_push(2), Err(RouteError::Busy)));
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out, vec![0, 1], "FIFO, rejected push not enqueued");
        assert!(q.is_empty());
        assert!(q.try_push(3).is_ok(), "drained queue accepts again");
    }

    #[test]
    fn closed_queue_reports_closed_but_stays_drainable() {
        let q: XQueue<u64> = XQueue::new(4, Registry::disabled().gauge("test.q"));
        assert!(q.try_push(0).is_ok());
        q.close();
        assert!(matches!(q.try_push(1), Err(RouteError::Closed)));
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out, vec![0], "pre-close item survives for draining");
    }
}
