//! The sharded object store and its worker threads.
//!
//! Objects are partitioned across shards by id (`ObjectId(i)` lives on
//! shard `i mod nshards`), each shard owned by one worker thread fed
//! through a **bounded** MPSC queue. Routing a request never blocks:
//! a full queue is answered with a typed [`ErrorCode::Busy`] response
//! instead of stalling the connection thread — backpressure is the
//! client's problem to retry, not the acceptor's to absorb.
//!
//! Because one worker owns each object outright, operations on it are
//! trivially linearizable: the linearization point is the worker's
//! sequential [`ObjectState::apply`]. Cross-object operations don't
//! exist in the wire protocol, so no shard ever waits on another.
//!
//! Election sessions (see [`crate::wire::Request::OpenElection`]) are
//! sharded the same way by session id. Each session instantiates the
//! Burns–Cruz–Loui [`CasOnlyElection`] from `bso-protocols` over a
//! private `compare&swap-(k)` object, and an `Elect` request drives
//! that participant's *actual protocol state machine* — one
//! [`Protocol::next_action`]/[`Protocol::on_response`] step at a time —
//! to its decision, so the service and the simulator run the very same
//! election code.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use bso_objects::spec::ObjectState;
use bso_objects::{Layout, Op, Value};
use bso_protocols::CasOnlyElection;
use bso_sim::{Action, Protocol};
use bso_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::wire::{ErrorCode, Response};

/// One unit of work routed to a shard. The `reply` sender leads back
/// to the requesting connection's writer thread.
pub(crate) enum ShardMsg {
    /// Apply one operation to an owned object.
    Apply {
        req_id: u64,
        pid: usize,
        op: Op,
        reply: Sender<(u64, Response)>,
    },
    /// Create an election session (id already allocated by the router).
    OpenElection {
        req_id: u64,
        session: u32,
        k: usize,
        reply: Sender<(u64, Response)>,
    },
    /// Run one participant of a session to its decision.
    Elect {
        req_id: u64,
        session: u32,
        pid: usize,
        reply: Sender<(u64, Response)>,
    },
}

/// A live election session: the protocol instance plus its private
/// register.
struct ElectionSession {
    proto: CasOnlyElection,
    cas: ObjectState,
}

/// Telemetry handles one shard worker records into.
struct ShardMetrics {
    apply_ns: Histogram,
    elect_ns: Histogram,
    queue_depth: Gauge,
    errors_object: Counter,
    elections_opened: Counter,
    elections_decided: Counter,
}

/// The bounded queues in front of the shard workers.
///
/// `try_route` is the only way in; it either enqueues or reports
/// why not ([`RouteError::Busy`] / [`RouteError::Closed`]). Depths are
/// tracked by a shared atomic per shard (the channel itself cannot be
/// introspected) and exported as `server.shard<i>.queue_depth` gauges.
pub(crate) struct ShardPool {
    senders: Vec<SyncSender<ShardMsg>>,
    depths: Vec<Arc<AtomicU64>>,
    capacity: usize,
}

/// Why a message could not be enqueued.
pub(crate) enum RouteError {
    /// The shard's queue is at capacity.
    Busy,
    /// The shard has shut down.
    Closed,
}

impl ShardPool {
    /// Creates the queues and spawns one worker per shard.
    ///
    /// Returns the pool and the worker join handles (the server joins
    /// them after dropping every sender).
    pub(crate) fn start(
        layout: &Layout,
        nshards: usize,
        capacity: usize,
        registry: &Registry,
    ) -> (ShardPool, Vec<JoinHandle<()>>) {
        assert!(nshards >= 1, "need at least one shard");
        let mut senders = Vec::with_capacity(nshards);
        let mut depths = Vec::with_capacity(nshards);
        let mut workers = Vec::with_capacity(nshards);
        for shard in 0..nshards {
            let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
            let depth = Arc::new(AtomicU64::new(0));
            let metrics = ShardMetrics {
                apply_ns: registry.histogram("server.apply_ns"),
                elect_ns: registry.histogram("server.elect_ns"),
                queue_depth: registry.gauge(&format!("server.shard{shard}.queue_depth")),
                errors_object: registry.counter("server.errors.object"),
                elections_opened: registry.counter("server.elections.opened"),
                elections_decided: registry.counter("server.elections.decided"),
            };
            // Each shard materializes only the objects it owns; the
            // rest of the id space stays `None` so misrouted ids fail
            // loudly instead of silently aliasing.
            let objects: Vec<Option<ObjectState>> = layout
                .objects()
                .iter()
                .enumerate()
                .map(|(id, init)| (id % nshards == shard).then(|| ObjectState::from_init(init)))
                .collect();
            let worker_depth = Arc::clone(&depth);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bso-shard{shard}"))
                    .spawn(move || shard_worker(rx, objects, worker_depth, metrics))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
            depths.push(depth);
        }
        (
            ShardPool {
                senders,
                depths,
                capacity: capacity.max(1),
            },
            workers,
        )
    }

    /// The shard owning object or session id `id`.
    pub(crate) fn shard_of(&self, id: usize) -> usize {
        id % self.senders.len()
    }

    /// Routes `msg` to shard `shard` without blocking.
    pub(crate) fn try_route(&self, shard: usize, msg: ShardMsg) -> Result<(), RouteError> {
        let depth = &self.depths[shard];
        // Optimistic reservation: bump first so the worker-side
        // decrement can never underflow, undo on failure.
        if depth.fetch_add(1, Ordering::Relaxed) >= self.capacity as u64 {
            depth.fetch_sub(1, Ordering::Relaxed);
            return Err(RouteError::Busy);
        }
        match self.senders[shard].try_send(msg) {
            Ok(()) => Ok(()),
            Err(e) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                match e {
                    TrySendError::Full(_) => Err(RouteError::Busy),
                    TrySendError::Disconnected(_) => Err(RouteError::Closed),
                }
            }
        }
    }
}

/// The worker loop: drain the queue until every sender is gone (the
/// server drops its master senders during shutdown; connection
/// routers drop their clones when the connection closes), processing
/// whatever is still queued — that is the drain-on-shutdown guarantee.
fn shard_worker(
    rx: Receiver<ShardMsg>,
    mut objects: Vec<Option<ObjectState>>,
    depth: Arc<AtomicU64>,
    metrics: ShardMetrics,
) {
    let mut sessions: HashMap<u32, ElectionSession> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        let d = depth.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        metrics.queue_depth.set(d);
        match msg {
            ShardMsg::Apply {
                req_id,
                pid,
                op,
                reply,
            } => {
                let t = std::time::Instant::now();
                let resp = match objects.get_mut(op.obj.0).and_then(Option::as_mut) {
                    Some(state) => match state.apply(pid, &op.kind) {
                        Ok(v) => Response::Ok(v),
                        Err(e) => {
                            metrics.errors_object.inc();
                            Response::Err {
                                code: ErrorCode::Object,
                                message: e.to_string(),
                            }
                        }
                    },
                    None => Response::Err {
                        code: ErrorCode::BadRequest,
                        message: format!("no object with id {}", op.obj),
                    },
                };
                metrics
                    .apply_ns
                    .record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                let _ = reply.send((req_id, resp));
            }
            ShardMsg::OpenElection {
                req_id,
                session,
                k,
                reply,
            } => {
                let resp = match open_session(k) {
                    Ok(s) => {
                        sessions.insert(session, s);
                        metrics.elections_opened.inc();
                        Response::Session(session)
                    }
                    Err(message) => Response::Err {
                        code: ErrorCode::BadRequest,
                        message,
                    },
                };
                let _ = reply.send((req_id, resp));
            }
            ShardMsg::Elect {
                req_id,
                session,
                pid,
                reply,
            } => {
                let t = std::time::Instant::now();
                let resp = match sessions.get_mut(&session) {
                    None => Response::Err {
                        code: ErrorCode::UnknownSession,
                        message: format!("no election session {session}"),
                    },
                    Some(s) => match run_participant(s, pid) {
                        Ok(v) => {
                            metrics.elections_decided.inc();
                            Response::Ok(v)
                        }
                        Err(message) => Response::Err {
                            code: ErrorCode::BadRequest,
                            message,
                        },
                    },
                };
                metrics
                    .elect_ns
                    .record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                let _ = reply.send((req_id, resp));
            }
        }
    }
}

/// Builds a session: a `CasOnlyElection` at the Burns–Cruz–Loui
/// ceiling (`n = k − 1`) over a fresh private register.
fn open_session(k: usize) -> Result<ElectionSession, String> {
    if !(2..=255).contains(&k) {
        return Err(format!("election domain k must be in 2..=255, got {k}"));
    }
    let proto = CasOnlyElection::new(k - 1, k)?;
    let layout = proto.layout();
    let cas = ObjectState::from_init(&layout.objects()[0]);
    Ok(ElectionSession { proto, cas })
}

/// Drives participant `pid`'s state machine to its decision against
/// the session's register. `CasOnlyElection` is wait-free (one shared
/// operation then a decision), so this loop is bounded.
fn run_participant(s: &mut ElectionSession, pid: usize) -> Result<Value, String> {
    if pid >= s.proto.processes() {
        return Err(format!(
            "participant {pid} out of range (session hosts {})",
            s.proto.processes()
        ));
    }
    let mut state = s.proto.init(pid, &Value::Pid(pid));
    loop {
        match s.proto.next_action(&state) {
            Action::Invoke(op) => {
                let resp = s.cas.apply(pid, &op.kind).map_err(|e| e.to_string())?;
                s.proto.on_response(&mut state, resp);
            }
            Action::Decide(v) => return Ok(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{ObjectId, ObjectInit};

    #[allow(clippy::type_complexity)]
    fn reply_channel() -> (Sender<(u64, Response)>, Receiver<(u64, Response)>) {
        std::sync::mpsc::channel()
    }

    fn small_layout() -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: 4 });
        l.push(ObjectInit::Register(Value::Nil));
        l.push(ObjectInit::FetchAdd(0));
        l
    }

    #[test]
    fn apply_routes_to_owner_and_responds() {
        let layout = small_layout();
        let (pool, workers) = ShardPool::start(&layout, 2, 8, &Registry::disabled());
        let (tx, rx) = reply_channel();
        // Object 1 lives on shard 1 (1 % 2).
        pool.try_route(
            pool.shard_of(1),
            ShardMsg::Apply {
                req_id: 42,
                pid: 0,
                op: Op::write(ObjectId(1), Value::Int(5)),
                reply: tx.clone(),
            },
        )
        .unwrap_or_else(|_| panic!("route failed"));
        let (id, resp) = rx.recv().unwrap();
        assert_eq!(id, 42);
        assert_eq!(resp, Response::Ok(Value::Nil));
        // A misrouted id (object 0 sent to shard 1) is a BadRequest,
        // not an aliased apply.
        pool.try_route(
            1,
            ShardMsg::Apply {
                req_id: 43,
                pid: 0,
                op: Op::read(ObjectId(0)),
                reply: tx.clone(),
            },
        )
        .unwrap_or_else(|_| panic!("route failed"));
        let (_, resp) = rx.recv().unwrap();
        assert!(matches!(
            resp,
            Response::Err {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        drop(tx);
        drop(pool);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn full_queue_reports_busy_without_blocking() {
        // Deterministic backpressure: build the pool by hand with no
        // worker draining the queue, so the third route must hit the
        // capacity-2 limit.
        let (tx, _rx_keepalive) = std::sync::mpsc::sync_channel::<ShardMsg>(2);
        let pool = ShardPool {
            senders: vec![tx],
            depths: vec![Arc::new(AtomicU64::new(0))],
            capacity: 2,
        };
        let (reply, _r) = reply_channel();
        let msg = |i| ShardMsg::Apply {
            req_id: i,
            pid: 0,
            op: Op::read(ObjectId(0)),
            reply: reply.clone(),
        };
        assert!(pool.try_route(0, msg(0)).is_ok());
        assert!(pool.try_route(0, msg(1)).is_ok());
        assert!(matches!(pool.try_route(0, msg(2)), Err(RouteError::Busy)));
    }

    #[test]
    fn closed_pool_reports_closed() {
        let (tx, rx) = std::sync::mpsc::sync_channel::<ShardMsg>(2);
        drop(rx);
        let pool = ShardPool {
            senders: vec![tx],
            depths: vec![Arc::new(AtomicU64::new(0))],
            capacity: 2,
        };
        let (reply, _r) = reply_channel();
        assert!(matches!(
            pool.try_route(
                0,
                ShardMsg::Apply {
                    req_id: 0,
                    pid: 0,
                    op: Op::read(ObjectId(0)),
                    reply,
                }
            ),
            Err(RouteError::Closed)
        ));
    }

    #[test]
    fn election_session_elects_exactly_one_winner() {
        let layout = Layout::new();
        let (pool, workers) = ShardPool::start(&layout, 1, 8, &Registry::disabled());
        let (tx, rx) = reply_channel();
        pool.try_route(
            0,
            ShardMsg::OpenElection {
                req_id: 0,
                session: 7,
                k: 5,
                reply: tx.clone(),
            },
        )
        .unwrap_or_else(|_| panic!("route failed"));
        assert_eq!(rx.recv().unwrap().1, Response::Session(7));
        let mut winners = Vec::new();
        for pid in 0..4 {
            pool.try_route(
                0,
                ShardMsg::Elect {
                    req_id: pid as u64,
                    session: 7,
                    pid,
                    reply: tx.clone(),
                },
            )
            .unwrap_or_else(|_| panic!("route failed"));
            match rx.recv().unwrap().1 {
                Response::Ok(v) => winners.push(v.as_pid().unwrap()),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Consistency: everyone elected the same leader; validity: the
        // leader is a participant.
        assert!(winners.windows(2).all(|w| w[0] == w[1]));
        assert!(winners[0] < 4);
        // Unknown session and out-of-range pid are typed errors.
        pool.try_route(
            0,
            ShardMsg::Elect {
                req_id: 9,
                session: 8,
                pid: 0,
                reply: tx.clone(),
            },
        )
        .unwrap_or_else(|_| panic!("route failed"));
        assert!(matches!(
            rx.recv().unwrap().1,
            Response::Err {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        pool.try_route(
            0,
            ShardMsg::Elect {
                req_id: 10,
                session: 7,
                pid: 99,
                reply: tx,
            },
        )
        .unwrap_or_else(|_| panic!("route failed"));
        assert!(matches!(
            rx.recv().unwrap().1,
            Response::Err {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        drop(pool);
        for w in workers {
            w.join().unwrap();
        }
    }
}
