//! The TCP front-end: acceptor, per-connection reader/writer threads,
//! request routing, and graceful shutdown.
//!
//! # Thread topology
//!
//! ```text
//! acceptor ──spawns──▶ conn reader ──bounded try_send──▶ shard workers
//!                          │   ▲                              │
//!                          │   └────── reply mpsc ◀───────────┘
//!                          └──spawns──▶ conn writer (batches + flushes)
//! ```
//!
//! The reader parses frames and routes them; it never blocks on a
//! shard (a full queue becomes a typed [`ErrorCode::Busy`] response).
//! Each connection has a private unbounded reply channel drained by
//! its writer thread, which greedily batches whatever responses are
//! ready into one `write`+`flush` — pipelined clients get pipelined
//! (possibly reordered) responses correlated by `req_id`.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] runs the drain sequence: stop accepting,
//! shut down live client sockets (readers exit), join connection
//! threads, drop the master shard senders so workers finish whatever
//! is still queued and exit, then join workers. Every queued request
//! is answered before its worker exits — nothing is dropped silently.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bso_objects::Layout;
use bso_telemetry::Registry;

use crate::shard::{RouteError, ShardMsg, ShardPool};
use crate::wire::{self, ErrorCode, Request, Response};

/// Tuning knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of shard worker threads (objects are owned by
    /// `obj.0 % shards`). Default 4.
    pub shards: usize,
    /// Bounded depth of each shard's request queue; a route into a
    /// full queue yields [`ErrorCode::Busy`]. Default 128.
    pub queue_capacity: usize,
    /// Telemetry sink for `server.*` metrics. Defaults to the
    /// process-global registry, so `BSO_TELEMETRY=path.json` captures
    /// server metrics with no extra wiring.
    pub registry: Registry,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 4,
            queue_capacity: 128,
            registry: Registry::default(),
        }
    }
}

/// Totals reported by [`ServerHandle::shutdown`]. Tracked by plain
/// atomics (independently mirrored into telemetry counters) so they
/// are exact even when telemetry is disabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Well-formed requests decoded.
    pub requests: u64,
    /// Responses written back to clients.
    pub responses: u64,
    /// Requests refused with [`ErrorCode::Busy`].
    pub busy: u64,
    /// Malformed frames (each one closes its connection).
    pub malformed: u64,
}

#[derive(Default)]
struct StatCells {
    connections: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    busy: AtomicU64,
    malformed: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
        }
    }
}

/// State shared between the acceptor, connections, and the handle.
struct Shared {
    shutdown: AtomicBool,
    next_session: AtomicU32,
    next_conn: AtomicU64,
    stats: StatCells,
    registry: Registry,
    /// Live client sockets, keyed by connection id, so shutdown can
    /// interrupt blocked reads. Readers deregister themselves on exit.
    streams: Mutex<HashMap<u64, TcpStream>>,
    /// Reader-thread handles, collected by the acceptor and joined at
    /// shutdown (each reader joins its own writer before exiting).
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// The entry point: binds a listener over a [`Layout`] of shared
/// objects and serves `bso-wire/v1` clients until shut down.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral loopback port) and
    /// starts the acceptor and shard workers.
    ///
    /// # Errors
    ///
    /// Socket errors from [`TcpListener::bind`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        layout: &Layout,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (pool, workers) = ShardPool::start(
            layout,
            config.shards.max(1),
            config.queue_capacity,
            &config.registry,
        );
        let pool = Arc::new(pool);
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            next_session: AtomicU32::new(0),
            next_conn: AtomicU64::new(0),
            stats: StatCells::default(),
            registry: config.registry,
            streams: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("bso-acceptor".into())
                .spawn(move || accept_loop(listener, shared, pool))
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            local_addr,
            shared,
            pool: Some(pool),
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] also drains, but discards the stats.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    pool: Option<Arc<ShardPool>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, disconnects clients, drains every shard queue,
    /// joins all threads, and returns the lifetime totals.
    pub fn shutdown(mut self) -> ServerStats {
        self.drain();
        self.shared.stats.snapshot()
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a throwaway
        // connection; it re-checks the flag per iteration.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Interrupt blocked connection readers, then join them (each
        // reader joins its writer, which first delivers every reply
        // still owed by the shards).
        for (_, s) in self.shared.streams.lock().unwrap().drain() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let conns: Vec<_> = self.shared.conns.lock().unwrap().drain(..).collect();
        for c in conns {
            let _ = c.join();
        }
        // Drop the master senders: workers drain what is queued, then
        // see Disconnected and exit.
        self.pool = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.drain();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, pool: Arc<ShardPool>) {
    let accepted = shared.registry.counter("server.connections");
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are small batched frames; waiting for ACKs (Nagle)
        // would serialize every pipelined window on the RTT.
        let _ = stream.set_nodelay(true);
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        accepted.inc();
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.streams.lock().unwrap().insert(conn_id, clone);
        }
        let shared2 = Arc::clone(&shared);
        let pool2 = Arc::clone(&pool);
        let handle = std::thread::Builder::new()
            .name(format!("bso-conn{conn_id}"))
            .spawn(move || serve_connection(conn_id, stream, shared2, pool2))
            .expect("spawn connection thread");
        shared.conns.lock().unwrap().push(handle);
    }
}

/// The per-connection reader: parse → route → (on exit) join writer.
fn serve_connection(conn_id: u64, stream: TcpStream, shared: Arc<Shared>, pool: Arc<ShardPool>) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.streams.lock().unwrap().remove(&conn_id);
            return;
        }
    };
    let (reply_tx, reply_rx) = std::sync::mpsc::channel::<(u64, Response)>();
    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("bso-conn{conn_id}-w"))
            .spawn(move || write_loop(write_half, reply_rx, shared))
            .expect("spawn connection writer")
    };

    let requests = shared.registry.counter("server.requests");
    let busy = shared.registry.counter("server.busy");
    let malformed = shared.registry.counter("server.malformed");
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        match wire::read_frame(&mut reader, &mut buf) {
            Ok(false) => break, // clean EOF at a frame boundary
            Ok(true) => {}
            Err(e) => {
                // An oversized length prefix is a protocol violation;
                // everything else (reset, mid-frame EOF, shutdown) is
                // an ordinary disconnect.
                if e.kind() == std::io::ErrorKind::InvalidData {
                    shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                    malformed.inc();
                }
                break;
            }
        }
        let (req_id, req) = match wire::decode_request(&buf) {
            Ok(x) => x,
            Err(_) => {
                // Undecodable body: count it and drop the connection.
                // We cannot trust anything after a corrupt frame.
                shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
                malformed.inc();
                break;
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        requests.inc();
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = reply_tx.send((
                req_id,
                Response::Err {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".into(),
                },
            ));
            continue;
        }
        let (shard, msg) = match req {
            Request::Ping => {
                let _ = reply_tx.send((req_id, Response::Ok(bso_objects::Value::Nil)));
                continue;
            }
            Request::Apply { pid, op } => (
                pool.shard_of(op.obj.0),
                ShardMsg::Apply {
                    req_id,
                    pid: pid as usize,
                    op,
                    reply: reply_tx.clone(),
                },
            ),
            Request::OpenElection { k } => {
                let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
                (
                    pool.shard_of(session as usize),
                    ShardMsg::OpenElection {
                        req_id,
                        session,
                        k: k as usize,
                        reply: reply_tx.clone(),
                    },
                )
            }
            Request::Elect { session, pid } => (
                pool.shard_of(session as usize),
                ShardMsg::Elect {
                    req_id,
                    session,
                    pid: pid as usize,
                    reply: reply_tx.clone(),
                },
            ),
        };
        match pool.try_route(shard, msg) {
            Ok(()) => {}
            Err(RouteError::Busy) => {
                shared.stats.busy.fetch_add(1, Ordering::Relaxed);
                busy.inc();
                let _ = reply_tx.send((
                    req_id,
                    Response::Err {
                        code: ErrorCode::Busy,
                        message: format!("shard {shard} queue is full"),
                    },
                ));
            }
            Err(RouteError::Closed) => {
                let _ = reply_tx.send((
                    req_id,
                    Response::Err {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".into(),
                    },
                ));
            }
        }
    }
    shared.streams.lock().unwrap().remove(&conn_id);
    // Dropping our reply sender lets the writer exit once the shards
    // have answered everything already routed for this connection.
    drop(reply_tx);
    let _ = writer.join();
}

/// The per-connection writer: batch whatever responses are ready into
/// one write + flush. Exits when every reply sender (the reader's and
/// the shard-held clones) is gone.
fn write_loop(stream: TcpStream, rx: Receiver<(u64, Response)>, shared: Arc<Shared>) {
    let responses = shared.registry.counter("server.responses");
    let flush_batch = shared.registry.histogram("server.flush_batch");
    let mut w = BufWriter::new(stream);
    let mut buf = Vec::new();
    while let Ok((req_id, resp)) = rx.recv() {
        let mut n: u64 = 1;
        if wire::encode_response(req_id, &resp, &mut buf).is_err() {
            // Responses are server-built and bounded; failure here
            // would be a server bug, not client input. Skip the frame.
            debug_assert!(false, "server built an unencodable response");
        }
        // Greedy batch: drain whatever is already queued so pipelined
        // traffic amortizes the write+flush.
        while let Ok((id, r)) = rx.try_recv() {
            if wire::encode_response(id, &r, &mut buf).is_err() {
                debug_assert!(false, "server built an unencodable response");
                continue;
            }
            n += 1;
        }
        flush_batch.record(n);
        responses.add(n);
        shared.stats.responses.fetch_add(n, Ordering::Relaxed);
        if wire::write_frames(&mut w, &mut buf).is_err() || w.flush().is_err() {
            break; // client went away; reader will notice on its side
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{ObjectId, ObjectInit, Op, Value};
    use std::io::Read;

    fn layout() -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: 4 });
        l.push(ObjectInit::Register(Value::Nil));
        l.push(ObjectInit::FetchAdd(0));
        l
    }

    fn send(stream: &mut TcpStream, req_id: u64, req: &Request) {
        let mut buf = Vec::new();
        wire::encode_request(req_id, req, &mut buf).unwrap();
        stream.write_all(&buf).unwrap();
    }

    fn recv(stream: &mut TcpStream) -> (u64, Response) {
        let mut buf = Vec::new();
        assert!(wire::read_frame(stream, &mut buf).unwrap());
        wire::decode_response(&buf).unwrap()
    }

    #[test]
    fn serves_applies_and_pings_over_loopback() {
        let handle = Server::bind("127.0.0.1:0", &layout(), ServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(handle.local_addr()).unwrap();
        send(&mut c, 1, &Request::Ping);
        assert_eq!(recv(&mut c), (1, Response::Ok(Value::Nil)));
        send(
            &mut c,
            2,
            &Request::Apply {
                pid: 0,
                op: Op::write(ObjectId(1), Value::Int(9)),
            },
        );
        send(
            &mut c,
            3,
            &Request::Apply {
                pid: 0,
                op: Op::read(ObjectId(1)),
            },
        );
        let mut got = HashMap::new();
        for _ in 0..2 {
            let (id, r) = recv(&mut c);
            got.insert(id, r);
        }
        assert_eq!(got[&2], Response::Ok(Value::Nil));
        assert_eq!(got[&3], Response::Ok(Value::Int(9)));
        drop(c);
        let stats = handle.shutdown();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.responses, 3);
        assert_eq!(stats.malformed, 0);
    }

    #[test]
    fn malformed_frame_closes_only_that_connection() {
        let handle = Server::bind("127.0.0.1:0", &layout(), ServerConfig::default()).unwrap();
        let mut bad = TcpStream::connect(handle.local_addr()).unwrap();
        let mut good = TcpStream::connect(handle.local_addr()).unwrap();
        // A frame whose body claims 4 GiB: rejected before allocation,
        // connection closed.
        bad.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        let mut probe = [0u8; 1];
        assert_eq!(bad.read(&mut probe).unwrap(), 0, "bad conn sees EOF");
        // The other connection keeps serving.
        send(&mut good, 5, &Request::Ping);
        assert_eq!(recv(&mut good), (5, Response::Ok(Value::Nil)));
        drop(bad);
        drop(good);
        let stats = handle.shutdown();
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.connections, 2);
    }

    #[test]
    fn shutdown_is_idempotent_under_drop_and_reports_totals() {
        let handle = Server::bind("127.0.0.1:0", &layout(), ServerConfig::default()).unwrap();
        let addr = handle.local_addr();
        let mut c = TcpStream::connect(addr).unwrap();
        send(
            &mut c,
            1,
            &Request::Apply {
                pid: 2,
                op: Op::new(ObjectId(2), bso_objects::OpKind::FetchAdd(3)),
            },
        );
        assert_eq!(recv(&mut c), (1, Response::Ok(Value::Int(0))));
        drop(c);
        let stats = handle.shutdown();
        assert_eq!(stats.requests, 1);
        // Post-shutdown connects are refused (or reset immediately).
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        send(&mut s, 9, &Request::Ping);
                        let mut b = [0u8; 1];
                        s.read(&mut b)
                    })
                    .map(|n| n == 0)
                    .unwrap_or(true)
        );
    }

    #[test]
    fn election_over_the_wire_is_consistent() {
        let handle = Server::bind("127.0.0.1:0", &layout(), ServerConfig::default()).unwrap();
        let mut c = TcpStream::connect(handle.local_addr()).unwrap();
        send(&mut c, 1, &Request::OpenElection { k: 4 });
        let (_, resp) = recv(&mut c);
        let Response::Session(session) = resp else {
            panic!("expected session, got {resp:?}");
        };
        let mut winners = Vec::new();
        for pid in 0..3u32 {
            send(&mut c, 10 + pid as u64, &Request::Elect { session, pid });
            match recv(&mut c).1 {
                Response::Ok(v) => winners.push(v.as_pid().unwrap()),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(winners.windows(2).all(|w| w[0] == w[1]));
        drop(c);
        handle.shutdown();
    }
}
