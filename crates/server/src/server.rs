//! The serving surface: [`ServerBuilder`], the acceptor, and the
//! draining [`ServerHandle`].
//!
//! # Thread topology
//!
//! ```text
//! acceptor ──round-robin NewConn + wake──▶ event loop 0..N  (see event_loop.rs)
//! ```
//!
//! The acceptor is the only blocking thread left: it accepts, flips
//! the socket nonblocking, and hands it to the least-recently-fed
//! event loop. Everything else — reads, parsing, applying, batching,
//! writes — happens on the loops.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] raises the drain flag, nudges the
//! acceptor out of `accept()` with a throwaway connection, wakes every
//! loop, and joins them. Loops answer everything already queued
//! (cross-loop obligations are counted; see `event_loop.rs`) before
//! exiting, bounded by a drain deadline.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bso_objects::Layout;
use bso_telemetry::trace::TraceSink;
use bso_telemetry::Registry;

use crate::event_loop::{Ctl, EventLoop, LoopHandle, Shared, StatCells};
use crate::introspect::{self, ConfigInfo, IntrospectState};
use crate::poll::{self, PollBackend, Poller, WakeReader};
use crate::routing::RouteControl;
use crate::session::{ResumeTable, DEFAULT_MAX_SESSIONS, DEFAULT_REPLIES_PER_SESSION};

/// Tuning knobs for the deprecated [`Server::bind`] entry point.
#[deprecated(since = "0.2.0", note = "use `Server::builder()` instead")]
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of event loops (objects are owned by `obj.0 % shards`).
    /// Default 4.
    pub shards: usize,
    /// Bounded depth of each loop's cross-shard queue; a route into a
    /// full queue yields a typed `Busy`. Default 128.
    pub queue_capacity: usize,
    /// Telemetry sink for `server.*` metrics. Defaults to the
    /// process-global registry, so `BSO_TELEMETRY=path.json` captures
    /// server metrics with no extra wiring.
    pub registry: Registry,
}

#[allow(deprecated)]
impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            shards: 4,
            queue_capacity: 128,
            registry: Registry::default(),
        }
    }
}

/// Totals reported by [`ServerHandle::shutdown`]. Tracked by plain
/// atomics (independently mirrored into telemetry counters) so they
/// are exact even when telemetry is disabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Well-formed requests decoded.
    pub requests: u64,
    /// Responses written back to clients.
    pub responses: u64,
    /// Requests refused with a typed `Busy` (cross-shard queue full).
    pub busy: u64,
    /// Malformed frames (each one closes its connection).
    pub malformed: u64,
    /// Frames or `Hello`s refused with a typed `Version` error.
    pub version_rejects: u64,
    /// Deadline-carrying ops shed with a typed `Expired` (budget ran
    /// out before the apply; the op was never applied).
    pub shed: u64,
    /// `Resume` session bindings served.
    pub resumes: u64,
    /// Retried requests answered from a session's reply cache instead
    /// of being applied a second time.
    pub replays: u64,
    /// Applies refused with a typed `WrongShard` because the installed
    /// routing table places the object on another server (never
    /// applied; the client refreshes its table and redirects).
    pub wrong_shard: u64,
}

impl StatCells {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            version_rejects: self.version_rejects.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            resumes: self.resumes.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            wrong_shard: self.wrong_shard.load(Ordering::Relaxed),
        }
    }
}

/// The entry point: [`Server::builder`] configures and binds an
/// event-driven server over a [`Layout`] of shared objects.
pub struct Server;

impl Server {
    /// Starts configuring a server. See [`ServerBuilder`] for the
    /// knobs and their defaults.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::new()
    }

    /// Binds `addr` with the pre-builder configuration surface.
    ///
    /// # Errors
    ///
    /// Socket errors from [`TcpListener::bind`].
    #[deprecated(since = "0.2.0", note = "use `Server::builder()` instead")]
    #[allow(deprecated)]
    pub fn bind(
        addr: impl ToSocketAddrs,
        layout: &Layout,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        Server::builder()
            .shards(config.shards)
            .queue_capacity(config.queue_capacity)
            .registry(config.registry)
            .bind(addr, layout)
    }
}

/// Fluent configuration for [`Server`], mirroring the `Explorer`
/// builder idiom: construct with [`Server::builder`], chain knobs,
/// finish with [`ServerBuilder::bind`].
///
/// ```no_run
/// use bso_objects::{Layout, ObjectInit};
/// use bso_server::{PollBackend, Server};
///
/// let mut layout = Layout::new();
/// layout.push(ObjectInit::CasK { k: 4 });
/// let handle = Server::builder()
///     .shards(4)
///     .queue_capacity(256)
///     .backend(PollBackend::Auto)
///     .pin_cores(true)
///     .bind("127.0.0.1:0", &layout)
///     .unwrap();
/// # drop(handle);
/// ```
#[derive(Clone, Debug)]
pub struct ServerBuilder {
    shards: usize,
    queue_capacity: usize,
    backend: PollBackend,
    read_chunk: usize,
    pin_cores: bool,
    registry: Registry,
    trace: TraceSink,
}

impl Default for ServerBuilder {
    fn default() -> ServerBuilder {
        ServerBuilder::new()
    }
}

impl ServerBuilder {
    /// The default configuration: one event loop per CPU, queue
    /// capacity 128, 64 KiB read chunks, core pinning on, the poll
    /// backend from `BSO_POLL_BACKEND` (else auto), and the
    /// process-global telemetry registry.
    pub fn new() -> ServerBuilder {
        let backend = std::env::var("BSO_POLL_BACKEND")
            .ok()
            .and_then(|s| PollBackend::parse(&s))
            .unwrap_or_default();
        ServerBuilder {
            shards: poll::num_cpus(),
            queue_capacity: 128,
            backend,
            read_chunk: 64 * 1024,
            pin_cores: true,
            registry: Registry::default(),
            trace: TraceSink::default(),
        }
    }

    /// Number of event loops / shards. Objects are owned by
    /// `obj.0 % shards`; sessions by `session % shards`. Clamped to at
    /// least 1.
    pub fn shards(mut self, n: usize) -> ServerBuilder {
        self.shards = n.max(1);
        self
    }

    /// Bounded depth of each loop's cross-shard queue. A route into a
    /// full queue is answered with a typed `Busy` — it never blocks.
    pub fn queue_capacity(mut self, n: usize) -> ServerBuilder {
        self.queue_capacity = n.max(1);
        self
    }

    /// Readiness backend ([`PollBackend::Auto`] picks `epoll` on
    /// Linux, `poll(2)` elsewhere).
    pub fn backend(mut self, b: PollBackend) -> ServerBuilder {
        self.backend = b;
        self
    }

    /// Socket read chunk (and arena buffer) size in bytes.
    pub fn read_chunk(mut self, bytes: usize) -> ServerBuilder {
        self.read_chunk = bytes.max(1024);
        self
    }

    /// Whether each loop pins itself to core `index % num_cpus`
    /// (best-effort; ignored where unsupported).
    pub fn pin_cores(mut self, pin: bool) -> ServerBuilder {
        self.pin_cores = pin;
        self
    }

    /// Telemetry sink for `server.*` metrics.
    pub fn registry(mut self, r: Registry) -> ServerBuilder {
        self.registry = r;
        self
    }

    /// Trace sink for `server.apply` spans. Each event loop gets a
    /// `server-loop<i>` track. Defaults to [`TraceSink::global`], so
    /// `BSO_TRACE=path.json` enables server-side tracing with no extra
    /// wiring; a disabled sink (the default without that env var)
    /// costs nothing per request.
    pub fn trace_sink(mut self, sink: TraceSink) -> ServerBuilder {
        self.trace = sink;
        self
    }

    /// Binds `addr` (use port 0 for an ephemeral loopback port), spawns
    /// the event loops and the acceptor, and returns the handle.
    ///
    /// # Errors
    ///
    /// Socket errors from [`TcpListener::bind`], or poller-creation
    /// errors (e.g. forcing [`PollBackend::Epoll`] off Linux).
    pub fn bind(self, addr: impl ToSocketAddrs, layout: &Layout) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let nloops = self.shards;

        // Pollers and wake pipes are created up front so the shared
        // handle vector is complete before any loop starts.
        let mut pollers = Vec::with_capacity(nloops);
        let mut handles = Vec::with_capacity(nloops);
        for i in 0..nloops {
            let poller = Poller::new(self.backend)?;
            let (reader, waker) = WakeReader::pair()?;
            handles.push(LoopHandle::new(
                self.queue_capacity,
                self.registry.gauge(&format!("server.shard{i}.queue_depth")),
                waker,
            ));
            pollers.push((poller, reader));
        }
        let shared = Arc::new(Shared {
            loops: handles,
            shutdown: AtomicBool::new(false),
            inflight: AtomicI64::new(0),
            next_session: AtomicU32::new(0),
            sessions: ResumeTable::new(DEFAULT_MAX_SESSIONS, DEFAULT_REPLIES_PER_SESSION),
            route: RouteControl::new(),
            stats: StatCells::default(),
            introspect: IntrospectState::new(ConfigInfo {
                shards: nloops,
                queue_capacity: self.queue_capacity,
                backend: self.backend.to_string(),
                read_chunk: self.read_chunk,
                pin_cores: self.pin_cores,
            }),
        });
        // BSO_PROGRESS=path.jsonl tails a serving heartbeat with no
        // extra wiring (idempotent; a no-op without the env var).
        bso_telemetry::progress::spawn_global_if_env();

        let mut loops = Vec::with_capacity(nloops);
        for (i, (poller, reader)) in pollers.into_iter().enumerate() {
            let ev = EventLoop::new(
                i,
                nloops,
                layout,
                poller,
                reader,
                Arc::clone(&shared),
                &self.registry,
                self.read_chunk,
                self.pin_cores,
                self.trace.worker(format!("server-loop{i}")),
            );
            loops.push(
                std::thread::Builder::new()
                    .name(format!("bso-loop{i}"))
                    .spawn(move || ev.run())
                    .expect("spawn event loop"),
            );
        }

        let acceptor = {
            let shared = Arc::clone(&shared);
            let registry = self.registry.clone();
            std::thread::Builder::new()
                .name("bso-acceptor".into())
                .spawn(move || accept_loop(listener, shared, registry))
                .expect("spawn acceptor")
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            loops,
        })
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] also drains, but discards the stats.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    loops: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains every loop (queued requests are
    /// answered), joins all threads, and returns the lifetime totals.
    pub fn shutdown(mut self) -> ServerStats {
        self.drain();
        self.shared.stats.snapshot()
    }

    fn drain(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Nudge the acceptor out of `accept()` with a throwaway
        // connection; it re-checks the flag per iteration.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for l in &self.shared.loops {
            l.wake();
        }
        for l in self.loops.drain(..) {
            let _ = l.join();
        }
        // BSO_FLIGHT=path.json preserves the final introspection
        // snapshot — flight recorders included — as the server's
        // black box.
        if let Some(path) = std::env::var_os(introspect::FLIGHT_ENV) {
            let doc = introspect::introspect_doc(&self.shared).render_pretty();
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!(
                    "bso-server: failed to write {} snapshot to {}: {e}",
                    introspect::FLIGHT_ENV,
                    std::path::Path::new(&path).display()
                );
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.loops.is_empty() {
            self.drain();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, registry: Registry) {
    let accepted = registry.counter("server.connections");
    let nloops = shared.loops.len();
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are small batched frames; waiting for ACKs (Nagle)
        // would serialize every pipelined window on the RTT.
        let _ = stream.set_nodelay(true);
        if poll::set_nonblocking(&stream).is_err() {
            continue;
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        accepted.inc();
        let target = next % nloops;
        next = next.wrapping_add(1);
        shared.loops[target].send_ctl(Ctl::NewConn(stream));
        shared.loops[target].wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{self, ErrorCode, Request, Response};
    use bso_objects::{ObjectId, ObjectInit, Op, Value};
    use bso_telemetry::json::Json;
    use std::collections::HashMap;
    use std::io::{Read, Write};

    fn layout() -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: 4 });
        l.push(ObjectInit::Register(Value::Nil));
        l.push(ObjectInit::FetchAdd(0));
        l
    }

    fn serve() -> ServerHandle {
        Server::builder()
            .shards(4)
            .pin_cores(false)
            .bind("127.0.0.1:0", &layout())
            .unwrap()
    }

    fn send(stream: &mut TcpStream, req_id: u64, req: &Request) {
        let mut buf = Vec::new();
        wire::encode_request(req_id, req, &mut buf).unwrap();
        stream.write_all(&buf).unwrap();
    }

    fn recv(stream: &mut TcpStream) -> (u64, Response) {
        let mut buf = Vec::new();
        assert!(wire::read_frame(stream, &mut buf).unwrap());
        wire::decode_response(&buf).unwrap()
    }

    #[test]
    fn serves_applies_and_pings_over_loopback() {
        let handle = serve();
        let mut c = TcpStream::connect(handle.local_addr()).unwrap();
        send(&mut c, 1, &Request::Ping);
        assert_eq!(recv(&mut c), (1, Response::Ok(Value::Nil)));
        send(
            &mut c,
            2,
            &Request::Apply {
                pid: 0,
                op: Op::write(ObjectId(1), Value::Int(9)),
            },
        );
        send(
            &mut c,
            3,
            &Request::Apply {
                pid: 0,
                op: Op::read(ObjectId(1)),
            },
        );
        let mut got = HashMap::new();
        for _ in 0..2 {
            let (id, r) = recv(&mut c);
            got.insert(id, r);
        }
        assert_eq!(got[&2], Response::Ok(Value::Nil));
        assert_eq!(got[&3], Response::Ok(Value::Int(9)));
        drop(c);
        let stats = handle.shutdown();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.responses, 3);
        assert_eq!(stats.malformed, 0);
    }

    #[test]
    fn malformed_frame_closes_only_that_connection() {
        let handle = serve();
        let mut bad = TcpStream::connect(handle.local_addr()).unwrap();
        let mut good = TcpStream::connect(handle.local_addr()).unwrap();
        // A frame whose body claims 4 GiB: rejected before allocation,
        // connection closed.
        bad.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        let mut probe = [0u8; 1];
        assert_eq!(bad.read(&mut probe).unwrap(), 0, "bad conn sees EOF");
        // The other connection keeps serving.
        send(&mut good, 5, &Request::Ping);
        assert_eq!(recv(&mut good), (5, Response::Ok(Value::Nil)));
        drop(bad);
        drop(good);
        let stats = handle.shutdown();
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.connections, 2);
    }

    #[test]
    fn shutdown_is_idempotent_under_drop_and_reports_totals() {
        let handle = serve();
        let addr = handle.local_addr();
        let mut c = TcpStream::connect(addr).unwrap();
        send(
            &mut c,
            1,
            &Request::Apply {
                pid: 2,
                op: Op::new(ObjectId(2), bso_objects::OpKind::FetchAdd(3)),
            },
        );
        assert_eq!(recv(&mut c), (1, Response::Ok(Value::Int(0))));
        drop(c);
        let stats = handle.shutdown();
        assert_eq!(stats.requests, 1);
        // Post-shutdown connects are refused (or reset immediately).
        assert!(
            TcpStream::connect(addr).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        send(&mut s, 9, &Request::Ping);
                        let mut b = [0u8; 1];
                        s.read(&mut b)
                    })
                    .map(|n| n == 0)
                    .unwrap_or(true)
        );
    }

    #[test]
    fn election_over_the_wire_is_consistent() {
        let handle = serve();
        let mut c = TcpStream::connect(handle.local_addr()).unwrap();
        send(&mut c, 1, &Request::OpenElection { k: 4 });
        let (_, resp) = recv(&mut c);
        let Response::Session(session) = resp else {
            panic!("expected session, got {resp:?}");
        };
        let mut winners = Vec::new();
        for pid in 0..3u32 {
            send(&mut c, 10 + pid as u64, &Request::Elect { session, pid });
            match recv(&mut c).1 {
                Response::Ok(v) => winners.push(v.as_pid().unwrap()),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(winners.windows(2).all(|w| w[0] == w[1]));
        drop(c);
        handle.shutdown();
    }

    #[test]
    fn introspect_reports_config_and_per_shard_state() {
        let handle = serve();
        let mut c = TcpStream::connect(handle.local_addr()).unwrap();
        // Generate some owned work first so the snapshot is non-trivial.
        send(
            &mut c,
            1,
            &Request::Apply {
                pid: 0,
                op: Op::write(ObjectId(1), Value::Int(3)),
            },
        );
        assert_eq!(recv(&mut c), (1, Response::Ok(Value::Nil)));
        send(&mut c, 2, &Request::Introspect);
        let (id, resp) = recv(&mut c);
        assert_eq!(id, 2);
        let Response::Introspect(json) = resp else {
            panic!("expected introspect snapshot, got {resp:?}");
        };
        let doc = bso_telemetry::json::parse(&json).expect("snapshot parses");
        assert_eq!(
            doc.get("schema").and_then(|j| j.as_str()),
            Some("bso-introspect/v1")
        );
        let config = doc.get("config").expect("config");
        assert_eq!(config.get("shards").and_then(Json::as_u64), Some(4));
        let shards = doc.get("shards").expect("shards");
        assert_eq!(shards.len(), Some(4), "one entry per event loop");
        // The apply above landed on loop 1 (object 1 % 4): its probe
        // saw it, flight recorder included.
        let probed = &shards.items().unwrap()[1];
        assert_eq!(
            probed
                .get("apply_ns")
                .and_then(|j| j.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(
            probed
                .get("flight")
                .and_then(|f| f.get("seq"))
                .and_then(Json::as_u64)
                >= Some(1)
        );
        // Identity travels with the snapshot.
        let server = doc.get("server").expect("server");
        assert_eq!(
            server.get("wire").and_then(|j| j.as_str()),
            Some(wire::SCHEMA)
        );
        drop(c);
        let stats = handle.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.responses, 2);
    }

    #[test]
    fn hello_negotiates_and_v1_requests_get_typed_rejects() {
        let handle = serve();
        // A well-behaved v2 client negotiates first.
        let mut c = TcpStream::connect(handle.local_addr()).unwrap();
        send(
            &mut c,
            1,
            &Request::Hello {
                version: wire::VERSION,
            },
        );
        assert_eq!(
            recv(&mut c),
            (
                1,
                Response::Hello {
                    version: wire::VERSION
                }
            )
        );
        // A v1 client sending a v1-framed request gets a typed Version
        // error *framed at v1* (parseable by it), then a graceful EOF
        // — not a malformed-frame kill.
        let mut old = TcpStream::connect(handle.local_addr()).unwrap();
        let mut buf = Vec::new();
        wire::encode_request(7, &Request::Ping, &mut buf).unwrap();
        // A v1 client's framing: v1 version byte, no trailing digest.
        buf[4] = 1;
        buf.truncate(buf.len() - wire::CHECKSUM_LEN);
        let body_len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&body_len.to_le_bytes());
        old.write_all(&buf).unwrap();
        let mut body = Vec::new();
        assert!(wire::read_frame(&mut old, &mut body).unwrap());
        assert_eq!(wire::peek_version(&body), Some(1), "rejection framed at v1");
        let (id, resp) = wire::decode_response(&body).unwrap();
        assert_eq!(id, 7);
        assert!(matches!(
            resp,
            Response::Err {
                code: ErrorCode::Version,
                ..
            }
        ));
        assert!(!wire::read_frame(&mut old, &mut body).unwrap(), "clean EOF");
        // A Hello proposing an unserved version is refused but the
        // connection survives for re-negotiation.
        send(&mut c, 2, &Request::Hello { version: 1 });
        assert!(matches!(
            recv(&mut c).1,
            Response::Err {
                code: ErrorCode::Version,
                ..
            }
        ));
        send(
            &mut c,
            3,
            &Request::Hello {
                version: wire::VERSION,
            },
        );
        assert_eq!(
            recv(&mut c).1,
            Response::Hello {
                version: wire::VERSION
            }
        );
        drop(c);
        drop(old);
        let stats = handle.shutdown();
        assert_eq!(stats.malformed, 0, "version mismatch is not malformed");
        assert_eq!(stats.version_rejects, 2);
    }

    #[test]
    fn resumed_session_replays_instead_of_reapplying() {
        let handle = serve();
        let addr = handle.local_addr();
        let token = 0xFEED_u64;
        let mut c = TcpStream::connect(addr).unwrap();
        send(
            &mut c,
            1,
            &Request::Resume {
                token,
                last_acked: 0,
            },
        );
        assert_eq!(recv(&mut c), (1, Response::Resumed { token, cached: 0 }));
        // An effectful op under the session: FetchAdd(5) on object 2.
        let add = Request::Apply {
            pid: 0,
            op: Op::new(ObjectId(2), bso_objects::OpKind::FetchAdd(5)),
        };
        send(&mut c, 2, &add);
        assert_eq!(recv(&mut c), (2, Response::Ok(Value::Int(0))));
        // The connection dies before the client sees the ack; it
        // reconnects, resumes the same token, and retries req_id 2.
        drop(c);
        let mut c2 = TcpStream::connect(addr).unwrap();
        send(
            &mut c2,
            10,
            &Request::Resume {
                token,
                last_acked: 1,
            },
        );
        let (_, resumed) = recv(&mut c2);
        assert_eq!(resumed, Response::Resumed { token, cached: 1 });
        send(&mut c2, 2, &add);
        // Replayed from the cache: the counter was NOT bumped again,
        // so the retry sees the original pre-state 0, not 5.
        assert_eq!(recv(&mut c2), (2, Response::Ok(Value::Int(0))));
        // A genuinely fresh op observes exactly one application.
        send(
            &mut c2,
            3,
            &Request::Apply {
                pid: 0,
                op: Op::new(ObjectId(2), bso_objects::OpKind::FetchAdd(0)),
            },
        );
        assert_eq!(recv(&mut c2), (3, Response::Ok(Value::Int(5))));
        drop(c2);
        let stats = handle.shutdown();
        assert_eq!(stats.resumes, 2);
        assert_eq!(stats.replays, 1);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn resume_prunes_acked_replies_and_refuses_pruned_retries() {
        let handle = serve();
        let addr = handle.local_addr();
        let token = 0xB0B_u64;
        let mut c = TcpStream::connect(addr).unwrap();
        send(
            &mut c,
            1,
            &Request::Resume {
                token,
                last_acked: 0,
            },
        );
        recv(&mut c);
        let add = Request::Apply {
            pid: 0,
            op: Op::new(ObjectId(2), bso_objects::OpKind::FetchAdd(1)),
        };
        send(&mut c, 2, &add);
        recv(&mut c);
        drop(c);
        // Resuming with last_acked=2 prunes the cached reply for 2...
        let mut c2 = TcpStream::connect(addr).unwrap();
        send(
            &mut c2,
            3,
            &Request::Resume {
                token,
                last_acked: 2,
            },
        );
        assert_eq!(recv(&mut c2), (3, Response::Resumed { token, cached: 0 }));
        // ...so a (buggy) retry of 2 is refused with BadToken rather
        // than silently re-applied.
        send(&mut c2, 2, &add);
        assert!(matches!(
            recv(&mut c2).1,
            Response::Err {
                code: ErrorCode::BadToken,
                ..
            }
        ));
        drop(c2);
        handle.shutdown();
    }

    #[test]
    fn zero_budget_deadline_apply_is_shed_with_expired() {
        let handle = serve();
        let mut c = TcpStream::connect(handle.local_addr()).unwrap();
        send(
            &mut c,
            1,
            &Request::DeadlineApply {
                budget_us: 0,
                pid: 0,
                op: Op::new(ObjectId(2), bso_objects::OpKind::FetchAdd(7)),
            },
        );
        assert!(matches!(
            recv(&mut c).1,
            Response::Err {
                code: ErrorCode::Expired,
                ..
            }
        ));
        // The shed op was never applied.
        send(
            &mut c,
            2,
            &Request::Apply {
                pid: 0,
                op: Op::new(ObjectId(2), bso_objects::OpKind::FetchAdd(0)),
            },
        );
        assert_eq!(recv(&mut c), (2, Response::Ok(Value::Int(0))));
        // A generous budget sails through.
        send(
            &mut c,
            3,
            &Request::DeadlineApply {
                budget_us: 5_000_000,
                pid: 0,
                op: Op::new(ObjectId(2), bso_objects::OpKind::FetchAdd(7)),
            },
        );
        assert_eq!(recv(&mut c), (3, Response::Ok(Value::Int(0))));
        drop(c);
        let stats = handle.shutdown();
        assert!(stats.shed >= 1);
    }
}
