//! The shard-per-core event loop: nonblocking sockets, readiness
//! polling, inline same-shard applies, and bounded cross-loop routing.
//!
//! # Topology
//!
//! ```text
//! acceptor ──round-robin NewConn──▶ event loop 0 ◀──▶ XQueue/Ctl ◀──▶ event loop 1 …
//!                                      │
//!                        owns: conns (Slab) + ShardState + Poller + Arena
//! ```
//!
//! One loop per shard. Each loop owns *both* a slice of the
//! connections and the shard of objects whose ids land on it
//! (`id % nloops == index`), so the common case — a request arriving
//! on the loop that owns its object — is applied inline between a
//! `read` and a `write` with no queue, no lock, and no thread
//! handoff. Only cross-shard requests travel the bounded [`XQueue`]
//! to the owner loop, which applies them and routes the reply back
//! through the origin loop's [`Ctl`] inbox — the origin loop is the
//! **single writer** for its sockets, so responses never interleave
//! mid-frame.
//!
//! # Batching
//!
//! Responses are staged into per-connection write buffers and flushed
//! once per readiness turn (or when a buffer passes the high-water
//! mark), so a pipelined client's burst of `n` requests costs one
//! `write` syscall, not `n`. Wakeups to peer loops are batched the
//! same way: at most one `wake()` per peer per turn, regardless of how
//! many transfers were queued. The per-loop `server.loop<i>.flush_batch`
//! histogram records frames-per-flush; `server.loop<i>.wakeups` counts
//! turns.
//!
//! # Observability
//!
//! Independently of the opt-in telemetry registry, every loop feeds an
//! always-on [`LoopProbe`](crate::introspect::LoopProbe) — plain
//! histograms of apply/turn/flush cost plus the flight recorder of
//! recent requests — which [`Request::Introspect`] serializes for any
//! v2 client, and which is spilled to stderr if the loop thread
//! panics. The request path only pushes into a loop-local
//! [`ProbeScratch`]; the batch is committed to the shared probe once
//! per turn, so the probe mutex is taken at turn frequency. Requests carrying a [`TraceContext`] additionally record a
//! `server.apply` span on the *owning* loop's trace track (the span
//! lands where the work ran, not where the bytes arrived), so merged
//! client+server Chrome traces attribute each request's server time to
//! a shard.
//!
//! # Drain
//!
//! Shutdown raises a flag and wakes every loop. Loops keep answering
//! (`ShuttingDown` for new work), finish queued transfers, flush
//! write buffers, and exit when the global in-flight count hits zero
//! — bounded by [`DRAIN_DEADLINE`] so a stuck peer socket cannot wedge
//! the process.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bso_objects::{Layout, Op, Value};
use bso_telemetry::trace::{TraceArg, TraceWorker};
use bso_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::arena::{Arena, Slab};
use crate::introspect::{self, IntrospectState, ProbeScratch};
use crate::poll::{self, Interest, Poller, WakeReader, Waker};
use crate::routing::RouteControl;
use crate::session::{Begin, ResumeTable};
use crate::shard::{RouteError, ShardState, XQueue};
use crate::wire::{self, ErrorCode, Request, Response, TraceContext};

/// Poller token reserved for the loop's wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;
/// Poll timeout while draining (loops re-check exit conditions).
const DRAIN_POLL: Duration = Duration::from_millis(2);
/// Hard ceiling on the drain before sockets are closed regardless.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);
/// A write buffer past this many bytes is flushed mid-turn instead of
/// waiting for the end of the readiness turn.
const FLUSH_HIGH_WATER: usize = 1 << 20;
/// Per-connection, per-turn read budget in multiples of the chunk
/// size; level-triggered polling re-reports leftover kernel data, so
/// a firehose connection cannot starve its siblings on the same loop.
const READ_BUDGET_CHUNKS: usize = 4;

/// Loop-to-loop control messages (unbounded: these are obligations —
/// replies owed and sockets already accepted — not new work, so
/// refusing them is never correct).
pub(crate) enum Ctl {
    /// A freshly accepted socket this loop now owns.
    NewConn(TcpStream),
    /// The answer to a cross-loop [`Xfer`], addressed by slot +
    /// generation so a recycled slot cannot receive a dead
    /// connection's reply.
    Reply {
        conn: u32,
        gen: u32,
        req_id: u64,
        resp: Response,
    },
}

/// The shard work carried by a cross-loop transfer.
pub(crate) enum Work {
    Apply {
        pid: usize,
        op: Op,
        /// Carried so a traced apply's span lands on the owner loop's
        /// trace track, not the origin's.
        trace: Option<TraceContext>,
    },
    OpenElection {
        session: u32,
        k: usize,
    },
    Elect {
        session: u32,
        pid: usize,
    },
    /// Cluster-plane migration ops (`ExportObject` &c.): routed to the
    /// owning loop like applies, but they skip session admission and
    /// the routing ownership check — an export legitimately runs
    /// *after* its range was detached, an install *before* the table
    /// hands the range over.
    ExportObject {
        obj: usize,
    },
    InstallObject {
        obj: usize,
        state: Value,
    },
    ExportSession {
        session: u32,
    },
    InstallSession {
        session: u32,
        k: usize,
        state: Value,
    },
}

/// A request forwarded to the loop that owns its object/session.
pub(crate) struct Xfer {
    origin: usize,
    conn: u32,
    gen: u32,
    req_id: u64,
    /// When the transfer was enqueued — the flight recorder reports
    /// the queue wait it implies.
    queued: Instant,
    /// Freshness bound from a [`Request::DeadlineApply`]: the owner
    /// loop sheds the work (typed [`ErrorCode::Expired`], never
    /// applied) if it reaches it past this instant.
    deadline: Option<Instant>,
    /// Resumable-session token of the issuing connection, if bound.
    /// The owner loop records the apply's outcome against
    /// `(sess, req_id)` *at the apply site*, so a response that never
    /// reaches its (possibly dead) origin connection is still
    /// replayable to the retry.
    sess: Option<u64>,
    work: Work,
}

/// One loop's shared-facing surface: its control inbox, its bounded
/// cross-loop work queue, and its waker.
pub(crate) struct LoopHandle {
    ctl: Mutex<VecDeque<Ctl>>,
    pub(crate) xq: XQueue<Xfer>,
    waker: Waker,
}

impl LoopHandle {
    pub(crate) fn new(capacity: usize, depth: Gauge, waker: Waker) -> LoopHandle {
        LoopHandle {
            ctl: Mutex::new(VecDeque::new()),
            xq: XQueue::new(capacity, depth),
            waker,
        }
    }

    /// Queues a control message. The caller wakes the loop (possibly
    /// batched) afterwards.
    pub(crate) fn send_ctl(&self, c: Ctl) {
        self.ctl.lock().unwrap().push_back(c);
    }

    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// Exact lifetime totals, tracked by plain atomics (independently
/// mirrored into telemetry counters) so they are right even when
/// telemetry is disabled.
#[derive(Default)]
pub(crate) struct StatCells {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) responses: AtomicU64,
    pub(crate) busy: AtomicU64,
    pub(crate) malformed: AtomicU64,
    pub(crate) version_rejects: AtomicU64,
    /// Deadline-carrying ops refused with [`ErrorCode::Expired`]
    /// because their freshness budget ran out before the apply.
    pub(crate) shed: AtomicU64,
    /// [`Request::Resume`] bindings served.
    pub(crate) resumes: AtomicU64,
    /// Retried requests answered from a session's reply cache instead
    /// of being applied again.
    pub(crate) replays: AtomicU64,
    /// Applies refused with [`ErrorCode::WrongShard`] because the
    /// routing table does not place the object here (never applied).
    pub(crate) wrong_shard: AtomicU64,
}

/// State shared between the acceptor, the event loops, and the handle.
pub(crate) struct Shared {
    pub(crate) loops: Vec<LoopHandle>,
    pub(crate) shutdown: AtomicBool,
    /// Cross-loop transfers pushed but whose replies have not yet been
    /// consumed (or recognized as stale) by their origin loop. Drain
    /// completion requires this to reach zero, so no queued request is
    /// silently dropped during shutdown.
    pub(crate) inflight: AtomicI64,
    pub(crate) next_session: AtomicU32,
    pub(crate) stats: StatCells,
    /// Always-on introspection: bind-time config plus one probe (plain
    /// histograms + flight recorder) per loop.
    pub(crate) introspect: IntrospectState,
    /// Resumable-session reply caches (exactly-once retries). Shared
    /// across loops because a reconnected client may land anywhere.
    pub(crate) sessions: ResumeTable,
    /// The cluster routing view: which object-id ranges this server
    /// serves, behind the read-across-apply lock that makes migration
    /// drains a barrier (see `routing.rs`). Disabled (serve
    /// everything, no locking) until the first table install.
    pub(crate) route: RouteControl,
}

/// What a parsed frame did to its connection.
enum FrameOutcome {
    /// Keep parsing.
    Next,
    /// Stop reading; flush what is owed, then close (version reject,
    /// peer EOF).
    CloseGraceful,
    /// Stop immediately; the stream cannot be trusted (malformed).
    CloseHard,
}

struct Conn {
    stream: TcpStream,
    gen: u32,
    rbuf: Vec<u8>,
    /// Parse offset into `rbuf` (bytes before it are consumed frames).
    rpos: usize,
    wbuf: Vec<u8>,
    /// Flush offset into `wbuf` (bytes before it are already written).
    wpos: usize,
    /// Whether the poller currently watches for writability.
    write_armed: bool,
    /// Replies owed by other loops; a graceful close waits for them.
    inflight_remote: u32,
    /// Close once `wbuf` is flushed and `inflight_remote` is zero.
    closing: bool,
    /// Wire version responses are framed at (negotiated via `Hello`).
    version: u8,
    /// Resumable-session token this connection bound via
    /// [`Request::Resume`]; effectful requests then pass through the
    /// shared [`ResumeTable`] for exactly-once retry semantics.
    session: Option<u64>,
    /// Responses staged since the last completed flush.
    batch: u64,
    /// Already on this turn's touched list.
    touched: bool,
}

/// One shard's event loop. Constructed on the binding thread, then
/// moved into its own thread where [`EventLoop::run`] takes over.
pub(crate) struct EventLoop {
    index: usize,
    nloops: usize,
    poller: Poller,
    wake: WakeReader,
    conns: Slab<Conn>,
    shard: ShardState,
    arena: Arena,
    shared: Arc<Shared>,
    read_chunk: usize,
    pin_cores: bool,
    /// This loop's trace track; disabled workers are free.
    trace: TraceWorker,
    // Telemetry mirrors of the StatCells counters, plus loop-local
    // instruments.
    registry: Registry,
    requests: Counter,
    responses: Counter,
    busy: Counter,
    malformed: Counter,
    version_rejects: Counter,
    shed: Counter,
    resumes: Counter,
    replays: Counter,
    wrong_shard: Counter,
    wakeups: Counter,
    conns_gauge: Gauge,
    /// Created on first completed flush, so loops that never serve a
    /// connection don't leave an empty histogram in the snapshot.
    flush_batch: Option<Histogram>,
    /// Loop-local probe buffer, committed to the shared
    /// [`LoopProbe`](crate::introspect::LoopProbe) once per turn.
    probe: ProbeScratch,
    // Scratch reused across turns.
    events: Vec<poll::Event>,
    inbox: Vec<Ctl>,
    xwork: Vec<Xfer>,
    pending_wakes: Vec<bool>,
    touched: Vec<u32>,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        index: usize,
        nloops: usize,
        layout: &Layout,
        poller: Poller,
        wake: WakeReader,
        shared: Arc<Shared>,
        registry: &Registry,
        read_chunk: usize,
        pin_cores: bool,
        trace: TraceWorker,
    ) -> EventLoop {
        EventLoop {
            index,
            nloops,
            poller,
            wake,
            conns: Slab::new(),
            shard: ShardState::new(layout, index, nloops, registry),
            arena: Arena::new(
                read_chunk,
                64,
                registry.gauge(&format!("server.loop{index}.arena_buffers")),
            ),
            shared,
            read_chunk: read_chunk.max(1024),
            pin_cores,
            trace,
            registry: registry.clone(),
            requests: registry.counter("server.requests"),
            responses: registry.counter("server.responses"),
            busy: registry.counter("server.busy"),
            malformed: registry.counter("server.malformed"),
            version_rejects: registry.counter("server.version_rejects"),
            shed: registry.counter("server.shed"),
            resumes: registry.counter("server.resumes"),
            replays: registry.counter("server.replays"),
            wrong_shard: registry.counter("server.wrong_shard"),
            wakeups: registry.counter(&format!("server.loop{index}.wakeups")),
            conns_gauge: registry.gauge(&format!("server.loop{index}.conns")),
            flush_batch: None,
            probe: ProbeScratch::default(),
            events: Vec::with_capacity(256),
            inbox: Vec::new(),
            xwork: Vec::new(),
            pending_wakes: vec![false; nloops],
            touched: Vec::new(),
        }
    }

    /// The loop body. Returns when the server has drained.
    pub(crate) fn run(mut self) {
        if self.pin_cores {
            let _ = poll::pin_to_core(self.index % poll::num_cpus());
        }
        // If this loop's thread panics, its flight recorder is the
        // black box: spill it to stderr on the way down.
        let _flight_guard = FlightDumpGuard {
            shared: Arc::clone(&self.shared),
            index: self.index,
        };
        self.poller
            .register(self.wake.raw_fd(), WAKE_TOKEN, Interest::READ)
            .expect("register wake pipe");
        let mut drain_started: Option<Instant> = None;
        loop {
            let shutting = self.shared.shutdown.load(Ordering::Acquire);
            if shutting && drain_started.is_none() {
                drain_started = Some(Instant::now());
            }
            let timeout = shutting.then_some(DRAIN_POLL);
            let mut events = std::mem::take(&mut self.events);
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                debug_assert!(false, "poller wait failed: {e}");
            }
            // Turn time measures the work between poll returns, not
            // the idle wait itself.
            let turn_start = Instant::now();
            self.wakeups.inc();
            self.drain_ctl();
            self.drain_xq();
            for ev in &events {
                if ev.token == WAKE_TOKEN {
                    self.wake.drain();
                    continue;
                }
                let slot = ev.token as u32;
                if ev.readable || ev.error {
                    self.read_conn(slot);
                }
                if ev.writable {
                    self.flush_conn(slot);
                }
            }
            self.events = events;
            self.flush_touched();
            // Commit before waking peers: a loop woken by our transfer
            // replies then observes this turn's records as committed.
            self.shared.introspect.commit_turn(
                self.index,
                &mut self.probe,
                u64::try_from(turn_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                self.conns.len(),
            );
            self.send_wakes();
            if let Some(since) = drain_started {
                if self.drained(since) {
                    break;
                }
            }
        }
        self.teardown();
    }

    // ------------------------------------------------------------ inbound

    fn drain_ctl(&mut self) {
        let mut inbox = std::mem::take(&mut self.inbox);
        {
            let mut q = self.shared.loops[self.index].ctl.lock().unwrap();
            inbox.extend(q.drain(..));
        }
        for c in inbox.drain(..) {
            match c {
                Ctl::NewConn(stream) => {
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        drop(stream); // accepted during shutdown: refuse
                    } else {
                        self.adopt(stream);
                    }
                }
                Ctl::Reply {
                    conn,
                    gen,
                    req_id,
                    resp,
                } => {
                    self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
                    // If the connection died in the meantime the reply is moot.
                    if let Some(c) = self.conns.get_mut_gen(conn, gen) {
                        c.inflight_remote = c.inflight_remote.saturating_sub(1);
                        self.respond(conn, req_id, &resp);
                    }
                }
            }
        }
        self.inbox = inbox;
    }

    fn adopt(&mut self, stream: TcpStream) {
        let _ = poll::set_nonblocking(&stream);
        let fd = poll::raw_fd(&stream);
        let rbuf = self.arena.get();
        let wbuf = self.arena.get();
        let (slot, gen) = self.conns.insert(Conn {
            stream,
            gen: 0,
            rbuf,
            rpos: 0,
            wbuf,
            wpos: 0,
            write_armed: false,
            inflight_remote: 0,
            closing: false,
            version: wire::VERSION,
            session: None,
            batch: 0,
            touched: false,
        });
        let c = self.conns.get_mut(slot).expect("just inserted");
        c.gen = gen;
        if self
            .poller
            .register(fd, u64::from(slot), Interest::READ)
            .is_err()
        {
            let c = self.conns.remove(slot).expect("just inserted");
            self.arena.put(c.rbuf);
            self.arena.put(c.wbuf);
        }
        self.conns_gauge.set(self.conns.len() as u64);
    }

    fn drain_xq(&mut self) {
        let mut xwork = std::mem::take(&mut self.xwork);
        self.shared.loops[self.index].xq.drain_into(&mut xwork);
        for x in xwork.drain(..) {
            let queue_ns = u64::try_from(x.queued.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // Deadline check at the apply site: queued work whose
            // freshness budget ran out is shed — refused, never
            // applied — so an overloaded shard spends its time on
            // answers clients are still waiting for.
            let resp = if x.deadline.is_some_and(|d| Instant::now() >= d) {
                if let Some(token) = x.sess {
                    self.shared.sessions.abort(token, x.req_id);
                }
                self.note_shed();
                Response::Err {
                    code: ErrorCode::Expired,
                    message: format!(
                        "deadline expired after {}us in the cross-shard queue; op not applied",
                        queue_ns / 1_000
                    ),
                }
            } else {
                // Routing check at the apply site, under a guard held
                // across the apply itself: once `DetachRanges` wins the
                // table's write lock, every apply on a detached range
                // has either completed (its effect is visible to the
                // migration's `ExportObject`) or bounces `WrongShard`.
                let shared = Arc::clone(&self.shared);
                let route = shared.route.guard();
                let denied = match &x.work {
                    Work::Apply { op, .. } => {
                        let object = op.obj.0 as u64;
                        route.check(object).err().map(|epoch| (epoch, object))
                    }
                    // Election and cluster-plane work is not
                    // range-routed (see `Work::ExportObject`).
                    _ => None,
                };
                if let Some((epoch, object)) = denied {
                    if let Some(token) = x.sess {
                        self.shared.sessions.abort(token, x.req_id);
                    }
                    self.note_wrong_shard();
                    Response::Err {
                        code: ErrorCode::WrongShard,
                        message: wire::wrong_shard_message(epoch, object),
                    }
                } else {
                    let resp = match x.work {
                        Work::Apply { pid, op, trace } => {
                            let object = op.obj.0 as u64;
                            let t0 = self.span_start(trace);
                            let (resp, apply_ns) = self.shard.apply(pid, &op);
                            self.record_apply(trace, t0, object, apply_ns);
                            // batch 0: the reply is staged by the origin loop,
                            // so this loop cannot know its flush position.
                            self.probe
                                .push_request(wire::OP_APPLY, object, queue_ns, apply_ns, 0);
                            resp
                        }
                        Work::OpenElection { session, k } => self.shard.open_election(session, k),
                        Work::Elect { session, pid } => {
                            let (resp, elect_ns) = self.shard.elect(session, pid);
                            self.probe.push_request(
                                wire::OP_ELECT,
                                u64::from(session),
                                queue_ns,
                                elect_ns,
                                0,
                            );
                            resp
                        }
                        work => self.run_admin(work),
                    };
                    // The outcome is recorded against the session *here*,
                    // atomically-with-the-apply from the retry's point of
                    // view: even if the origin connection died, a retry of
                    // this req_id replays this response instead of
                    // re-applying the op.
                    if let Some(token) = x.sess {
                        self.shared.sessions.complete(token, x.req_id, &resp);
                    }
                    resp
                }
            };
            if x.origin == self.index {
                // Never produced by `forward` (own-shard work applies
                // inline), but harmless to answer locally.
                self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
                if let Some(c) = self.conns.get_mut_gen(x.conn, x.gen) {
                    c.inflight_remote = c.inflight_remote.saturating_sub(1);
                    self.respond(x.conn, x.req_id, &resp);
                }
            } else {
                self.shared.loops[x.origin].send_ctl(Ctl::Reply {
                    conn: x.conn,
                    gen: x.gen,
                    req_id: x.req_id,
                    resp,
                });
                self.pending_wakes[x.origin] = true;
            }
        }
        self.xwork = xwork;
    }

    // ------------------------------------------------------------- reading

    fn read_conn(&mut self, slot: u32) {
        let Some(c) = self.conns.get_mut(slot) else {
            return;
        };
        if c.closing {
            return; // already winding down; ignore further input
        }
        let mut rbuf = std::mem::take(&mut c.rbuf);
        let mut rpos = c.rpos;
        let mut budget = self.read_chunk * READ_BUDGET_CHUNKS;
        let mut outcome = FrameOutcome::Next;
        'turn: while budget > 0 {
            let start = rbuf.len();
            let want = self.read_chunk.min(budget);
            rbuf.resize(start + want, 0);
            let Some(c) = self.conns.get_mut(slot) else {
                rbuf.truncate(start);
                break;
            };
            match c.stream.read(&mut rbuf[start..]) {
                Ok(0) => {
                    rbuf.truncate(start);
                    outcome = FrameOutcome::CloseGraceful;
                    break;
                }
                Ok(n) => {
                    rbuf.truncate(start + n);
                    budget -= n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    rbuf.truncate(start);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    rbuf.truncate(start);
                    continue;
                }
                Err(_) => {
                    rbuf.truncate(start);
                    outcome = FrameOutcome::CloseHard;
                    break;
                }
            }
            // Parse every complete frame buffered so far: deferring
            // parsed-but-unhandled bytes would lose them (the poller
            // only re-reports *kernel*-buffered data).
            loop {
                match wire::split_frame(&rbuf, rpos) {
                    Ok(Some(range)) => {
                        rpos = range.end;
                        match self.handle_frame(slot, &rbuf[range]) {
                            FrameOutcome::Next => {}
                            other => {
                                outcome = other;
                                break 'turn;
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        self.note_malformed();
                        outcome = FrameOutcome::CloseHard;
                        break 'turn;
                    }
                }
            }
        }
        // Compact consumed frames out of the buffer and hand it back.
        if rpos >= rbuf.len() {
            rbuf.clear();
            rpos = 0;
        } else if rpos > 0 {
            rbuf.drain(..rpos);
            rpos = 0;
        }
        if let Some(c) = self.conns.get_mut(slot) {
            c.rbuf = rbuf;
            c.rpos = rpos;
        }
        match outcome {
            FrameOutcome::Next => {}
            FrameOutcome::CloseGraceful => self.begin_close(slot),
            FrameOutcome::CloseHard => self.close_conn(slot),
        }
    }

    fn handle_frame(&mut self, slot: u32, body: &[u8]) -> FrameOutcome {
        self.shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.requests.inc();
        let spoken = wire::peek_version(body).unwrap_or(0);
        let (req_id, req) = match wire::decode_request(body) {
            Ok(x) => x,
            Err(wire::WireError::BadVersion(v)) => {
                // A version we cannot even decode (v0, or newer than
                // ours): typed rejection framed at our version —
                // best effort, since we cannot know the peer's layout.
                let req_id = wire::peek_req_id(body).unwrap_or(0);
                self.note_version_reject();
                self.respond(
                    slot,
                    req_id,
                    &Response::Err {
                        code: ErrorCode::Version,
                        message: format!(
                            "unsupported wire version {v}; server speaks {}",
                            wire::SCHEMA
                        ),
                    },
                );
                return FrameOutcome::CloseGraceful;
            }
            Err(_) => {
                self.note_malformed();
                return FrameOutcome::CloseHard;
            }
        };
        if let Request::Hello { version: proposed } = req {
            return self.handle_hello(slot, req_id, proposed);
        }
        if spoken != wire::VERSION {
            // Decodable (v1) but unserved: reject with a typed error
            // framed *at the client's version* so the client parses
            // its own rejection instead of seeing a malformed kill.
            self.note_version_reject();
            if let Some(c) = self.conns.get_mut(slot) {
                c.version = spoken;
            }
            self.respond(
                slot,
                req_id,
                &Response::Err {
                    code: ErrorCode::Version,
                    message: format!("server speaks {}; send Hello to negotiate", wire::SCHEMA),
                },
            );
            return FrameOutcome::CloseGraceful;
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            self.respond(
                slot,
                req_id,
                &Response::Err {
                    code: ErrorCode::ShuttingDown,
                    message: "server is draining".into(),
                },
            );
            return FrameOutcome::Next;
        }
        match req {
            Request::Hello { .. } => unreachable!("handled above"),
            Request::Ping => self.respond(slot, req_id, &Response::Ok(Value::Nil)),
            Request::Introspect => {
                let json = introspect::introspect_doc(&self.shared).render();
                self.respond(slot, req_id, &Response::Introspect(json));
            }
            Request::Resume { token, last_acked } => {
                match self.shared.sessions.resume(token, last_acked) {
                    Ok(cached) => {
                        if let Some(c) = self.conns.get_mut(slot) {
                            c.session = Some(token);
                        }
                        self.note_resume();
                        self.respond(slot, req_id, &Response::Resumed { token, cached });
                    }
                    Err(code) => self.respond(
                        slot,
                        req_id,
                        &Response::Err {
                            code,
                            message: "session table at capacity; reconnect and retry".into(),
                        },
                    ),
                }
            }
            Request::Apply { pid, op } => self.serve_apply(slot, req_id, pid, op, None, None),
            Request::TracedApply { ctx, pid, op } => {
                self.serve_apply(slot, req_id, pid, op, Some(ctx), None)
            }
            Request::DeadlineApply { budget_us, pid, op } => {
                let deadline = Instant::now() + Duration::from_micros(u64::from(budget_us));
                self.serve_apply(slot, req_id, pid, op, None, Some(deadline));
            }
            Request::OpenElection { k } => {
                // Session admission *before* the session-id allocation:
                // a replayed OpenElection must return its original id,
                // not mint (and orphan) a second election.
                let sess = match self.admit(slot, req_id) {
                    Ok(sess) => sess,
                    Err(()) => return FrameOutcome::Next,
                };
                let session = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
                let target = session as usize % self.nloops;
                if target == self.index {
                    let resp = self.shard.open_election(session, k as usize);
                    self.settle(sess, req_id, &resp);
                    self.respond(slot, req_id, &resp);
                } else {
                    self.forward(
                        slot,
                        req_id,
                        target,
                        sess,
                        None,
                        Work::OpenElection {
                            session,
                            k: k as usize,
                        },
                    );
                }
            }
            Request::Elect { session, pid } => {
                let sess = match self.admit(slot, req_id) {
                    Ok(sess) => sess,
                    Err(()) => return FrameOutcome::Next,
                };
                let target = session as usize % self.nloops;
                if target == self.index {
                    let batch = self.conns.get_mut(slot).map_or(0, |c| c.batch);
                    let (resp, elect_ns) = self.shard.elect(session, pid as usize);
                    self.probe
                        .push_request(wire::OP_ELECT, u64::from(session), 0, elect_ns, batch);
                    self.settle(sess, req_id, &resp);
                    self.respond(slot, req_id, &resp);
                } else {
                    self.forward(
                        slot,
                        req_id,
                        target,
                        sess,
                        None,
                        Work::Elect {
                            session,
                            pid: pid as usize,
                        },
                    );
                }
            }
            // Cluster-plane requests (coordinator traffic, not client
            // effects): no session admission, no routing check. Table
            // edits answer inline on the arriving loop; object/session
            // transfers route to the owning loop like applies.
            Request::FetchRouting => {
                let (epoch, table) = self.shared.route.snapshot();
                self.respond(slot, req_id, &Response::Routing { epoch, table });
            }
            Request::UpdateRouting {
                epoch,
                ranges,
                table,
            } => {
                let resp = match self.shared.route.update(epoch, ranges, table) {
                    Ok(()) => Response::Ok(Value::Nil),
                    Err(installed) => Response::Err {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "stale routing update: epoch {epoch} <= installed epoch {installed}"
                        ),
                    },
                };
                self.respond(slot, req_id, &resp);
            }
            Request::DetachRanges { epoch, ranges } => {
                let resp = match self.shared.route.detach(epoch, &ranges) {
                    Ok(()) => Response::Ok(Value::Nil),
                    Err(installed) => Response::Err {
                        code: ErrorCode::BadRequest,
                        message: format!(
                            "stale detach: epoch {epoch} <= installed epoch {installed}"
                        ),
                    },
                };
                self.respond(slot, req_id, &resp);
            }
            Request::ExportObject { obj } => {
                let target = obj as usize % self.nloops;
                self.serve_admin(
                    slot,
                    req_id,
                    target,
                    Work::ExportObject { obj: obj as usize },
                );
            }
            Request::InstallObject { obj, state } => {
                let target = obj as usize % self.nloops;
                self.serve_admin(
                    slot,
                    req_id,
                    target,
                    Work::InstallObject {
                        obj: obj as usize,
                        state,
                    },
                );
            }
            Request::ExportSession { session } => {
                let target = session as usize % self.nloops;
                self.serve_admin(slot, req_id, target, Work::ExportSession { session });
            }
            Request::InstallSession { session, k, state } => {
                let target = session as usize % self.nloops;
                self.serve_admin(
                    slot,
                    req_id,
                    target,
                    Work::InstallSession {
                        session,
                        k: k as usize,
                        state,
                    },
                );
            }
        }
        FrameOutcome::Next
    }

    /// Routes a cluster-plane transfer op to the loop owning its
    /// object/session id: inline here, or forwarded with no session
    /// marker and no deadline.
    fn serve_admin(&mut self, slot: u32, req_id: u64, target: usize, work: Work) {
        if target == self.index {
            let resp = self.run_admin(work);
            self.respond(slot, req_id, &resp);
        } else {
            self.forward(slot, req_id, target, None, None, work);
        }
    }

    /// Executes a cluster-plane transfer op against this loop's shard.
    fn run_admin(&mut self, work: Work) -> Response {
        match work {
            Work::ExportObject { obj } => self.shard.export_object(obj),
            Work::InstallObject { obj, state } => self.shard.install_object(obj, &state),
            Work::ExportSession { session } => self.shard.export_session(session),
            Work::InstallSession { session, k, state } => {
                self.shard.install_session(session, k, &state)
            }
            // Apply/OpenElection/Elect never reach here: `drain_xq`
            // handles them in their own arms.
            _ => Response::Err {
                code: ErrorCode::BadRequest,
                message: "non-admin work routed to run_admin".into(),
            },
        }
    }

    /// Session admission for an effectful request. `Ok(None)`: the
    /// connection is unbound, serve normally. `Ok(Some(token))`: a
    /// fresh `Pending` marker is installed — the apply site must settle
    /// it. `Err(())`: the request was already answered here (replayed
    /// from cache, refused as in-flight, or refused as unknowable).
    fn admit(&mut self, slot: u32, req_id: u64) -> Result<Option<u64>, ()> {
        let Some(token) = self.conns.get_mut(slot).and_then(|c| c.session) else {
            return Ok(None);
        };
        match self.shared.sessions.begin(token, req_id) {
            Begin::Fresh => Ok(Some(token)),
            Begin::Replay(resp) => {
                self.note_replay();
                self.respond(slot, req_id, &resp);
                Err(())
            }
            Begin::InFlight => {
                self.shared.stats.busy.fetch_add(1, Ordering::Relaxed);
                self.busy.inc();
                self.respond(
                    slot,
                    req_id,
                    &Response::Err {
                        code: ErrorCode::Busy,
                        message: format!("request {req_id} still in flight; retry shortly"),
                    },
                );
                Err(())
            }
            Begin::Pruned => {
                self.respond(
                    slot,
                    req_id,
                    &Response::Err {
                        code: ErrorCode::BadToken,
                        message: format!(
                            "reply cache no longer covers request {req_id}; outcome unknown"
                        ),
                    },
                );
                Err(())
            }
        }
    }

    /// Settles an inline apply's session marker with its outcome.
    fn settle(&mut self, sess: Option<u64>, req_id: u64, resp: &Response) {
        if let Some(token) = sess {
            self.shared.sessions.complete(token, req_id, resp);
        }
    }

    fn handle_hello(&mut self, slot: u32, req_id: u64, proposed: u8) -> FrameOutcome {
        if proposed == wire::VERSION {
            if let Some(c) = self.conns.get_mut(slot) {
                c.version = wire::VERSION;
            }
            self.respond(
                slot,
                req_id,
                &Response::Hello {
                    version: wire::VERSION,
                },
            );
            return FrameOutcome::Next;
        }
        self.note_version_reject();
        // Frame the refusal at the proposed version when the codec can
        // (a v1 Hello gets a v1-parseable answer); the connection stays
        // open so the client may re-negotiate.
        if (wire::MIN_DECODE_VERSION..=wire::VERSION).contains(&proposed) {
            if let Some(c) = self.conns.get_mut(slot) {
                c.version = proposed;
            }
        }
        self.respond(
            slot,
            req_id,
            &Response::Err {
                code: ErrorCode::Version,
                message: format!(
                    "cannot serve wire version {proposed}; server speaks {}",
                    wire::SCHEMA
                ),
            },
        );
        FrameOutcome::Next
    }

    /// Routes an apply (traced, deadlined or plain) to its owning
    /// loop: inline when this loop owns the object, a cross-loop
    /// transfer otherwise.
    fn serve_apply(
        &mut self,
        slot: u32,
        req_id: u64,
        pid: u32,
        op: Op,
        trace: Option<TraceContext>,
        deadline: Option<Instant>,
    ) {
        let sess = match self.admit(slot, req_id) {
            Ok(sess) => sess,
            Err(()) => return,
        };
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // Zero/negative budget by the time we decoded it: shed
            // before routing. The cross-shard case re-checks at the
            // owner (where queue wait has accrued).
            if let Some(token) = sess {
                self.shared.sessions.abort(token, req_id);
            }
            self.note_shed();
            self.respond(
                slot,
                req_id,
                &Response::Err {
                    code: ErrorCode::Expired,
                    message: "deadline expired before routing; op not applied".into(),
                },
            );
            return;
        }
        let target = op.obj.0 % self.nloops;
        let object = op.obj.0 as u64;
        // Routing ownership check — after admission (so a replay of an
        // op applied before a migration still answers from the reply
        // cache) and before any effect. For the inline path the guard
        // stays held across the apply itself; combined with the
        // re-check in `drain_xq`, a `DetachRanges` write-locking the
        // table is a barrier: afterwards, every apply on a detached
        // range has either completed or was refused `WrongShard`.
        let shared = Arc::clone(&self.shared);
        let route = shared.route.guard();
        if let Err(epoch) = route.check(object) {
            drop(route);
            if let Some(token) = sess {
                self.shared.sessions.abort(token, req_id);
            }
            self.note_wrong_shard();
            self.respond(
                slot,
                req_id,
                &Response::Err {
                    code: ErrorCode::WrongShard,
                    message: wire::wrong_shard_message(epoch, object),
                },
            );
            return;
        }
        if target != self.index {
            // The owning loop re-checks under its own guard at the
            // apply site; this early check just rejects cheaply.
            drop(route);
            self.forward(
                slot,
                req_id,
                target,
                sess,
                deadline,
                Work::Apply {
                    pid: pid as usize,
                    op,
                    trace,
                },
            );
            return;
        }
        // Position in the connection's current write batch, read
        // before the response is staged.
        let batch = self.conns.get_mut(slot).map_or(0, |c| c.batch);
        let t0 = self.span_start(trace);
        let (resp, apply_ns) = self.shard.apply(pid as usize, &op);
        self.record_apply(trace, t0, object, apply_ns);
        self.probe
            .push_request(wire::OP_APPLY, object, 0, apply_ns, batch);
        self.settle(sess, req_id, &resp);
        self.respond(slot, req_id, &resp);
    }

    /// Timestamp for a traced apply's span start, or `None` when the
    /// request is untraced or this loop's trace track is disabled —
    /// the no-trace fast path never reads the trace clock.
    fn span_start(&self, trace: Option<TraceContext>) -> Option<u64> {
        (trace.is_some() && self.trace.is_enabled()).then(|| self.trace.now_ns())
    }

    /// Records the `server.apply` span for a traced request.
    fn record_apply(&self, trace: Option<TraceContext>, t0: Option<u64>, object: u64, dur_ns: u64) {
        if let (Some(ctx), Some(t0)) = (trace, t0) {
            self.trace.event_at(
                t0,
                Some(dur_ns),
                "server.apply",
                [
                    ("trace_id", TraceArg::U64(ctx.trace_id)),
                    ("span_id", TraceArg::U64(ctx.span_id)),
                    ("obj", TraceArg::U64(object)),
                ],
            );
        }
    }

    fn forward(
        &mut self,
        slot: u32,
        req_id: u64,
        target: usize,
        sess: Option<u64>,
        deadline: Option<Instant>,
        work: Work,
    ) {
        let Some(c) = self.conns.get_mut(slot) else {
            // The connection vanished between admit and forward; the
            // marker must not outlive it unapplied.
            if let Some(token) = sess {
                self.shared.sessions.abort(token, req_id);
            }
            return;
        };
        let gen = c.gen;
        self.shared.inflight.fetch_add(1, Ordering::AcqRel);
        match self.shared.loops[target].xq.try_push(Xfer {
            origin: self.index,
            conn: slot,
            gen,
            req_id,
            queued: Instant::now(),
            deadline,
            sess,
            work,
        }) {
            Ok(()) => {
                if let Some(c) = self.conns.get_mut(slot) {
                    c.inflight_remote += 1;
                }
                self.pending_wakes[target] = true;
            }
            Err(RouteError::Busy) => {
                self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
                if let Some(token) = sess {
                    self.shared.sessions.abort(token, req_id);
                }
                self.shared.stats.busy.fetch_add(1, Ordering::Relaxed);
                self.busy.inc();
                self.respond(
                    slot,
                    req_id,
                    &Response::Err {
                        code: ErrorCode::Busy,
                        message: format!("shard {target} queue is full"),
                    },
                );
            }
            Err(RouteError::Closed) => {
                self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
                if let Some(token) = sess {
                    self.shared.sessions.abort(token, req_id);
                }
                self.respond(
                    slot,
                    req_id,
                    &Response::Err {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".into(),
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------- writing

    /// Stages a response on the connection's write buffer (framed at
    /// its negotiated version) and marks it for the end-of-turn flush.
    fn respond(&mut self, slot: u32, req_id: u64, resp: &Response) {
        let Some(c) = self.conns.get_mut(slot) else {
            return;
        };
        if wire::encode_response_at(c.version, req_id, resp, &mut c.wbuf).is_err() {
            // Responses are server-built and bounded; failure here
            // would be a server bug, not client input. Skip the frame.
            debug_assert!(false, "server built an unencodable response");
            return;
        }
        c.batch += 1;
        let backlog = c.wbuf.len() - c.wpos;
        let newly = !c.touched;
        c.touched = true;
        if newly {
            self.touched.push(slot);
        }
        self.shared.stats.responses.fetch_add(1, Ordering::Relaxed);
        self.responses.inc();
        if backlog >= FLUSH_HIGH_WATER {
            self.flush_conn(slot);
        }
    }

    fn flush_touched(&mut self) {
        let touched = std::mem::take(&mut self.touched);
        for slot in touched {
            if let Some(c) = self.conns.get_mut(slot) {
                c.touched = false;
                self.flush_conn(slot);
            }
        }
    }

    fn flush_conn(&mut self, slot: u32) {
        let Some(c) = self.conns.get_mut(slot) else {
            return;
        };
        let mut dead = false;
        while c.wpos < c.wbuf.len() {
            match c.stream.write(&c.wbuf[c.wpos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => c.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        let done = c.wpos >= c.wbuf.len();
        let batch = if done {
            std::mem::take(&mut c.batch)
        } else {
            0
        };
        let fd = poll::raw_fd(&c.stream);
        let armed = c.write_armed;
        let close_now = dead || (done && c.closing && c.inflight_remote == 0);
        if done {
            c.wbuf.clear();
            c.wpos = 0;
        }
        if batch > 0 {
            if self.flush_batch.is_none() {
                self.flush_batch = Some(
                    self.registry
                        .histogram(&format!("server.loop{}.flush_batch", self.index)),
                );
            }
            if let Some(h) = &self.flush_batch {
                h.record(batch);
            }
            self.probe.push_flush(batch);
        }
        if close_now {
            self.close_conn(slot);
            return;
        }
        // Arm write interest on a partial flush; disarm once drained.
        if !done && !armed {
            if self
                .poller
                .reregister(fd, u64::from(slot), Interest::READ_WRITE)
                .is_ok()
            {
                if let Some(c) = self.conns.get_mut(slot) {
                    c.write_armed = true;
                }
            }
        } else if done && armed {
            let _ = self.poller.reregister(fd, u64::from(slot), Interest::READ);
            if let Some(c) = self.conns.get_mut(slot) {
                c.write_armed = false;
            }
        }
    }

    // ------------------------------------------------------------- closing

    /// Closes once everything owed has been delivered: pending remote
    /// replies arrive and flush first.
    fn begin_close(&mut self, slot: u32) {
        let Some(c) = self.conns.get_mut(slot) else {
            return;
        };
        if c.inflight_remote == 0 && c.wpos >= c.wbuf.len() {
            self.close_conn(slot);
        } else {
            c.closing = true;
        }
    }

    fn close_conn(&mut self, slot: u32) {
        let Some(c) = self.conns.remove(slot) else {
            return;
        };
        let _ = self.poller.deregister(poll::raw_fd(&c.stream));
        self.arena.put(c.rbuf);
        self.arena.put(c.wbuf);
        self.conns_gauge.set(self.conns.len() as u64);
        // Dropping the stream closes the socket. Replies still in
        // flight for it will miss the generation check and be dropped.
    }

    fn note_malformed(&mut self) {
        self.shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
        self.malformed.inc();
    }

    fn note_version_reject(&mut self) {
        self.shared
            .stats
            .version_rejects
            .fetch_add(1, Ordering::Relaxed);
        self.version_rejects.inc();
    }

    fn note_shed(&mut self) {
        self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        self.shed.inc();
        self.probe.push_shed();
    }

    fn note_resume(&mut self) {
        self.shared.stats.resumes.fetch_add(1, Ordering::Relaxed);
        self.resumes.inc();
    }

    fn note_replay(&mut self) {
        self.shared.stats.replays.fetch_add(1, Ordering::Relaxed);
        self.replays.inc();
    }

    fn note_wrong_shard(&mut self) {
        self.shared
            .stats
            .wrong_shard
            .fetch_add(1, Ordering::Relaxed);
        self.wrong_shard.inc();
    }

    // ------------------------------------------------------------ shutdown

    fn send_wakes(&mut self) {
        for target in 0..self.nloops {
            if self.pending_wakes[target] {
                self.pending_wakes[target] = false;
                self.shared.loops[target].wake();
            }
        }
    }

    /// Whether this loop may exit: every cross-loop obligation in the
    /// whole server is settled and this loop's own buffers are empty.
    /// The deadline caps how long a stuck peer socket can hold us.
    fn drained(&mut self, since: Instant) -> bool {
        if since.elapsed() >= DRAIN_DEADLINE {
            return true;
        }
        if self.shared.inflight.load(Ordering::Acquire) != 0 {
            return false;
        }
        if !self.shared.loops[self.index].xq.is_empty() {
            return false;
        }
        if !self.shared.loops[self.index].ctl.lock().unwrap().is_empty() {
            return false;
        }
        self.conns.iter_mut().all(|(_, c)| c.wpos >= c.wbuf.len())
    }

    fn teardown(&mut self) {
        self.shared.loops[self.index].xq.close();
        for slot in self.conns.live_slots() {
            self.close_conn(slot);
        }
    }
}

/// Spills a loop's flight recorder to stderr if its thread unwinds —
/// the last 256 requests a crashed loop served are usually the
/// explanation.
struct FlightDumpGuard {
    shared: Arc<Shared>,
    index: usize,
}

impl Drop for FlightDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "bso-loop{} panicked; flight recorder:\n{}",
                self.index,
                self.shared
                    .introspect
                    .flight_json(self.index)
                    .render_pretty()
            );
        }
    }
}
