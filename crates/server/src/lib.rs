//! `bso-server`: an event-driven, shard-per-core shared-object service.
//!
//! Everything this repository studies — read/write registers,
//! `compare&swap-(k)` objects over the bounded domain
//! Σ = {⊥, 0, …, k−2} (Afek & Stupp, *Delimiting the Power of Bounded
//! Size Synchronization Objects*, PODC 1994), atomic snapshots, and
//! the Burns–Cruz–Loui leader-election protocol — has so far lived
//! inside the simulator. This crate serves the same objects to real
//! clients over TCP, using only `std::net` and `std::thread` (plus a
//! thin, self-contained FFI shim over `epoll(7)`/`poll(2)` in
//! [`poll`]) so the workspace still builds fully offline.
//!
//! * [`wire`] — the `bso-wire/v2` length-prefixed binary protocol:
//!   framing, request/response codecs, `Hello` version negotiation,
//!   and the hardening limits ([`wire::MAX_FRAME`],
//!   [`wire::MAX_VALUE_DEPTH`], [`wire::MAX_SEQ_LEN`]).
//! * [`poll`] — readiness polling: level-triggered `epoll` with a
//!   portable `poll(2)` fallback, a self-pipe [`poll::Waker`], and
//!   best-effort core pinning.
//! * [`routing`] — the `bso-routing/v1` cluster plane: the
//!   epoch-stamped table mapping object-id ranges to servers, and the
//!   in-server enforcement that makes live shard migration a barrier
//!   (the `bso-cluster` crate drives it). See DESIGN.md §3.15.
//! * [`Server`] / [`ServerBuilder`] / [`ServerHandle`] — the serving
//!   surface: one nonblocking event loop per shard, each owning both a
//!   slice of the connections and the shard of objects whose ids land
//!   on it, so same-shard requests apply inline with no queueing and
//!   cross-shard requests travel bounded queues with typed `Busy`
//!   backpressure. Frames parse in place out of per-loop arenas;
//!   responses batch per readiness wakeup.
//! * Observability: a running server is never a black box. Any v2
//!   client can scrape a deterministic `bso-introspect/v1` JSON
//!   snapshot with [`Request::Introspect`] (per-shard queue depths,
//!   connection counts, turn/apply quantiles, flight recorder);
//!   requests may carry a [`TraceContext`] so client and server spans
//!   of the same request share a `trace_id` across merged Chrome
//!   traces; and `BSO_FLIGHT=path.json` preserves the final snapshot
//!   on shutdown. See DESIGN.md §3.13.
//!
//! The companion `bso-client` crate provides the pipelined client
//! handle, the event-driven `Swarm` for thousands of concurrent
//! connections, and the op-recording mode that feeds the Wing–Gong
//! linearizability checker in `bso-sim`.
//!
//! # Quick start
//!
//! ```
//! use bso_objects::{Layout, ObjectInit, ObjectId, Op, Value};
//! use bso_server::Server;
//!
//! let mut layout = Layout::new();
//! layout.push(ObjectInit::CasK { k: 4 });
//! let handle = Server::builder()
//!     .shards(2)
//!     .queue_capacity(256)
//!     .bind("127.0.0.1:0", &layout)
//!     .unwrap();
//! let addr = handle.local_addr();
//! // ... point bso_client::Connection at `addr` ...
//! let stats = handle.shutdown();
//! assert_eq!(stats.malformed, 0);
//! ```

// `poll` needs FFI; everything else stays safe. The unsafe surface is
// confined to that one module and audited there.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod event_loop;
mod introspect;
pub mod poll;
pub mod routing;
mod server;
mod session;
mod shard;
pub mod wire;

pub use introspect::FLIGHT_ENV;
pub use poll::PollBackend;
pub use routing::{RouteEntry, RoutingTable};
#[allow(deprecated)] // the historical config surface stays re-exported
pub use server::ServerConfig;
pub use server::{Server, ServerBuilder, ServerHandle, ServerStats};
pub use wire::{ErrorCode, Request, Response, TraceContext, WireError};
