//! `bso-server`: a sharded, batched shared-object service.
//!
//! Everything this repository studies — read/write registers,
//! `compare&swap-(k)` objects over the bounded domain
//! Σ = {⊥, 0, …, k−2} (Afek & Stupp, *Delimiting the Power of Bounded
//! Size Synchronization Objects*, PODC 1994), atomic snapshots, and
//! the Burns–Cruz–Loui leader-election protocol — has so far lived
//! inside the simulator. This crate serves the same objects to real
//! clients over TCP, using only `std::net` and `std::thread` so the
//! workspace still builds fully offline.
//!
//! * [`wire`] — the `bso-wire/v1` length-prefixed binary protocol:
//!   framing, request/response codecs, and the hardening limits
//!   ([`wire::MAX_FRAME`], [`wire::MAX_VALUE_DEPTH`],
//!   [`wire::MAX_SEQ_LEN`]).
//! * [`Server`] / [`ServerHandle`] — the TCP front-end: acceptor,
//!   per-connection reader/writer threads (request pipelining, write
//!   batching), sharded object store behind bounded queues with typed
//!   `Busy` backpressure, and a draining shutdown.
//!
//! The companion `bso-client` crate provides the pipelined client
//! handle and the op-recording mode that feeds the Wing–Gong
//! linearizability checker in `bso-sim`.
//!
//! # Quick start
//!
//! ```
//! use bso_objects::{Layout, ObjectInit, ObjectId, Op, Value};
//! use bso_server::{Server, ServerConfig};
//!
//! let mut layout = Layout::new();
//! layout.push(ObjectInit::CasK { k: 4 });
//! let handle = Server::bind("127.0.0.1:0", &layout, ServerConfig::default()).unwrap();
//! let addr = handle.local_addr();
//! // ... point bso_client::Connection at `addr` ...
//! let stats = handle.shutdown();
//! assert_eq!(stats.malformed, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;
mod shard;
pub mod wire;

pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use wire::{ErrorCode, Request, Response, WireError};
