//! Resumable sessions: the server half of exactly-once retries.
//!
//! A client binds a connection to a *session token* with
//! [`Request::Resume`]; from then on every effectful request on that
//! connection passes through the [`ResumeTable`] before it is applied.
//! The table keeps, per token, a bounded window of request outcomes:
//!
//! - **Fresh** — the request id has never been seen: a `Pending` marker
//!   is installed and the op proceeds to its shard.
//! - **Replay** — the id completed before (possibly on a previous
//!   connection that died before delivering the response): the cached
//!   [`Response`] is returned and the op is *not* applied again.
//! - **InFlight** — an earlier copy of the id is still being applied
//!   (e.g. still queued cross-shard from a connection that has since
//!   died): the retry is refused with [`ErrorCode::Busy`] so the
//!   client backs off until the first copy's outcome is cached.
//! - **Pruned** — the id predates what the bounded cache still covers:
//!   the server can no longer tell whether it was applied, so the
//!   retry is refused with [`ErrorCode::BadToken`] rather than risk a
//!   duplicate effect.
//!
//! The `begin` check and marker installation happen under one mutex
//! acquisition, which is the whole correctness argument: two copies of
//! the same `(token, req_id)` — a retry racing the original across
//! shards — serialize there, the second seeing `InFlight` or `Replay`,
//! never a second apply.
//!
//! Only *effectful outcomes* are cached ([`Response::Ok`] and
//! [`Response::Session`]). Errors abort the marker instead: every
//! typed refusal in this codebase is effect-free, so re-attempting an
//! errored request is safe and must not be masked by a stale cached
//! error.
//!
//! Everything is bounded. At most [`ResumeTable::max_sessions`] tokens
//! exist at once (beyond that, `Resume` answers
//! [`ErrorCode::Overloaded`]); each token caches at most
//! `cache_per_session` completed replies, evicting the oldest and
//! advancing the token's pruned watermark so an eviction can only ever
//! turn a would-be replay into a refusal, never into a duplicate
//! apply.
//!
//! [`Request::Resume`]: crate::wire::Request::Resume
//! [`ErrorCode::Busy`]: crate::wire::ErrorCode::Busy
//! [`ErrorCode::BadToken`]: crate::wire::ErrorCode::BadToken
//! [`ErrorCode::Overloaded`]: crate::wire::ErrorCode::Overloaded

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

use crate::wire::{ErrorCode, Response};

/// Default cap on concurrently live session tokens.
pub(crate) const DEFAULT_MAX_SESSIONS: usize = 1024;

/// Default per-token reply-cache depth. Must be at least a client's
/// pipeline depth or its oldest in-flight retry can fall off the
/// window and come back [`ErrorCode::BadToken`].
pub(crate) const DEFAULT_REPLIES_PER_SESSION: usize = 256;

/// One request id's state in a session's window.
enum Slot {
    /// Installed by [`ResumeTable::begin`]; an apply is underway.
    Pending,
    /// The request completed with this (effectful) response.
    Done(Response),
}

struct SessionEntry {
    /// Request ids below this are unanswerable: their cache entries
    /// were pruned (client acknowledged them) or evicted (window
    /// overflow). A cache miss below the watermark is `Pruned`.
    pruned_below: u64,
    window: BTreeMap<u64, Slot>,
    /// How many `window` entries are `Done` (eviction only counts
    /// completed replies against the cache bound — `Pending` markers
    /// are bounded by the client's pipeline depth, not by us).
    done: usize,
}

/// What [`ResumeTable::begin`] found for a `(token, req_id)`.
pub(crate) enum Begin {
    /// Never seen — a `Pending` marker is now installed; apply it.
    Fresh,
    /// Already completed — answer this, do not apply again.
    Replay(Response),
    /// An earlier copy is mid-apply — refuse with `Busy`, retry later.
    InFlight,
    /// Outcome unknowable (pruned/evicted) — refuse with `BadToken`.
    Pruned,
}

/// The shared session table. One per server, shared by every event
/// loop; only session-bound connections ever touch it, so the plain
/// mutex is off the fast path entirely.
pub(crate) struct ResumeTable {
    max_sessions: usize,
    cache_per_session: usize,
    inner: Mutex<HashMap<u64, SessionEntry>>,
}

impl ResumeTable {
    pub(crate) fn new(max_sessions: usize, cache_per_session: usize) -> ResumeTable {
        ResumeTable {
            max_sessions: max_sessions.max(1),
            cache_per_session: cache_per_session.max(1),
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Binds (or re-binds) a token, pruning everything at or below
    /// `last_acked`, and reports how many completed replies remain
    /// cached. `Err(Overloaded)` when the token is new and the table
    /// is full.
    pub(crate) fn resume(&self, token: u64, last_acked: u64) -> Result<u32, ErrorCode> {
        let mut inner = self.inner.lock().expect("resume table poisoned");
        if !inner.contains_key(&token) && inner.len() >= self.max_sessions {
            return Err(ErrorCode::Overloaded);
        }
        let entry = inner.entry(token).or_insert_with(|| SessionEntry {
            pruned_below: 0,
            window: BTreeMap::new(),
            done: 0,
        });
        // Acknowledged replies will never be asked for again; drop
        // them and advance the watermark past them.
        let keep = entry.window.split_off(&(last_acked.saturating_add(1)));
        for slot in entry.window.values() {
            if matches!(slot, Slot::Done(_)) {
                entry.done -= 1;
            }
        }
        entry.window = keep;
        entry.pruned_below = entry.pruned_below.max(last_acked.saturating_add(1));
        Ok(entry.done as u32)
    }

    /// The admission check every effectful request on a bound
    /// connection makes before applying. On `Fresh`, a `Pending`
    /// marker is installed atomically with the check; the caller must
    /// follow up with [`complete`] or [`abort`].
    ///
    /// [`complete`]: ResumeTable::complete
    /// [`abort`]: ResumeTable::abort
    pub(crate) fn begin(&self, token: u64, req_id: u64) -> Begin {
        let mut inner = self.inner.lock().expect("resume table poisoned");
        let Some(entry) = inner.get_mut(&token) else {
            // A bound connection implies a successful resume, so the
            // entry exists; tolerate its absence by serving without
            // dedup (complete/abort no-op on a missing token).
            return Begin::Fresh;
        };
        match entry.window.get(&req_id) {
            Some(Slot::Done(resp)) => Begin::Replay(resp.clone()),
            Some(Slot::Pending) => Begin::InFlight,
            None if req_id < entry.pruned_below => Begin::Pruned,
            None => {
                entry.window.insert(req_id, Slot::Pending);
                Begin::Fresh
            }
        }
    }

    /// Records a request's outcome. Effectful responses (`Ok`,
    /// `Session`) replace the `Pending` marker and become replayable;
    /// anything else aborts the marker (typed refusals are effect-free,
    /// so the retry must re-attempt, not replay). Evicts the oldest
    /// completed reply when the window is over its bound, advancing the
    /// pruned watermark so the evicted id refuses rather than
    /// re-applies.
    pub(crate) fn complete(&self, token: u64, req_id: u64, resp: &Response) {
        let cacheable = matches!(resp, Response::Ok(_) | Response::Session(_));
        let mut inner = self.inner.lock().expect("resume table poisoned");
        let Some(entry) = inner.get_mut(&token) else {
            return;
        };
        if !cacheable {
            if entry
                .window
                .remove(&req_id)
                .is_some_and(|s| matches!(s, Slot::Done(_)))
            {
                entry.done -= 1;
            }
            return;
        }
        let prev = entry.window.insert(req_id, Slot::Done(resp.clone()));
        if !matches!(prev, Some(Slot::Done(_))) {
            entry.done += 1;
        }
        while entry.done > self.cache_per_session {
            let oldest = entry
                .window
                .iter()
                .find_map(|(id, slot)| matches!(slot, Slot::Done(_)).then_some(*id))
                .expect("done count implies a Done slot");
            entry.window.remove(&oldest);
            entry.done -= 1;
            entry.pruned_below = entry.pruned_below.max(oldest + 1);
        }
    }

    /// Drops a `Pending` marker without recording an outcome — the
    /// request never reached its apply (shed, refused cross-shard,
    /// shutdown). The id stays fresh for a retry.
    pub(crate) fn abort(&self, token: u64, req_id: u64) {
        let mut inner = self.inner.lock().expect("resume table poisoned");
        if let Some(entry) = inner.get_mut(&token) {
            if let Some(Slot::Done(_)) = entry.window.get(&req_id) {
                return; // completed concurrently; keep the reply
            }
            entry.window.remove(&req_id);
        }
    }

    /// Live session count (introspection).
    pub(crate) fn sessions(&self) -> usize {
        self.inner.lock().expect("resume table poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::Value;

    fn ok(n: i64) -> Response {
        Response::Ok(Value::Int(n))
    }

    #[test]
    fn fresh_then_complete_then_replay() {
        let t = ResumeTable::new(4, 8);
        assert_eq!(t.resume(9, 0), Ok(0));
        assert!(matches!(t.begin(9, 1), Begin::Fresh));
        assert!(matches!(t.begin(9, 1), Begin::InFlight), "marker holds");
        t.complete(9, 1, &ok(5));
        match t.begin(9, 1) {
            Begin::Replay(r) => assert_eq!(r, ok(5)),
            _ => panic!("expected replay"),
        }
    }

    #[test]
    fn errors_abort_the_marker_so_retries_reattempt() {
        let t = ResumeTable::new(4, 8);
        t.resume(1, 0).unwrap();
        assert!(matches!(t.begin(1, 7), Begin::Fresh));
        t.complete(
            1,
            7,
            &Response::Err {
                code: ErrorCode::Busy,
                message: "queue full".into(),
            },
        );
        assert!(matches!(t.begin(1, 7), Begin::Fresh), "error not cached");
        t.abort(1, 7);
        assert!(matches!(t.begin(1, 7), Begin::Fresh));
    }

    #[test]
    fn acked_prefix_prunes_and_refuses_stale_retries() {
        let t = ResumeTable::new(4, 8);
        t.resume(2, 0).unwrap();
        for id in 1..=4u64 {
            assert!(matches!(t.begin(2, id), Begin::Fresh));
            t.complete(2, id, &ok(id as i64));
        }
        assert_eq!(t.resume(2, 3), Ok(1), "one unacked reply kept");
        assert!(matches!(t.begin(2, 2), Begin::Pruned), "acked id refused");
        match t.begin(2, 4) {
            Begin::Replay(r) => assert_eq!(r, ok(4)),
            _ => panic!("unacked id still replayable"),
        }
    }

    #[test]
    fn eviction_advances_the_watermark_never_reapplies() {
        let t = ResumeTable::new(4, 2);
        t.resume(3, 0).unwrap();
        for id in 1..=5u64 {
            assert!(matches!(t.begin(3, id), Begin::Fresh));
            t.complete(3, id, &ok(id as i64));
        }
        // Window depth 2: ids 1..=3 were evicted. They must refuse,
        // not re-apply.
        for id in 1..=3u64 {
            assert!(matches!(t.begin(3, id), Begin::Pruned), "id {id}");
        }
        assert!(matches!(t.begin(3, 5), Begin::Replay(_)));
    }

    #[test]
    fn session_table_is_bounded() {
        let t = ResumeTable::new(2, 8);
        t.resume(1, 0).unwrap();
        t.resume(2, 0).unwrap();
        assert_eq!(t.resume(3, 0), Err(ErrorCode::Overloaded));
        assert_eq!(t.resume(1, 0), Ok(0), "existing tokens re-bind fine");
        assert_eq!(t.sessions(), 2);
    }

    #[test]
    fn pending_markers_survive_connection_death_until_completed() {
        // The retry-races-original scenario: the original copy is
        // mid-apply (Pending) when its connection dies; the retry on a
        // fresh connection must wait (Busy), then replay once the
        // original's outcome lands.
        let t = ResumeTable::new(4, 8);
        t.resume(5, 0).unwrap();
        assert!(matches!(t.begin(5, 10), Begin::Fresh));
        assert!(matches!(t.begin(5, 10), Begin::InFlight));
        t.complete(5, 10, &ok(1));
        assert!(matches!(t.begin(5, 10), Begin::Replay(_)));
    }
}
