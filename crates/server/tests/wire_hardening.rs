//! Malformed-input hardening for the `bso-wire/v2` codec, mirroring
//! the nesting-depth hardening of the telemetry JSON parser: no input
//! — truncated, oversized, tag-corrupted, or adversarially crafted —
//! may panic, allocate proportionally to an attacker-chosen length, or
//! take down more than its own connection.

use std::io::{Read, Write};

use bso_objects::rng::SplitMix64;
use bso_objects::{ObjectId, Op, OpKind, Sym, Value};
use bso_server::wire::{
    self, decode_request, decode_response, encode_request, encode_response, read_frame,
};
use bso_server::{ErrorCode, Request, Response, Server, WireError};

/// A representative spread of valid requests (every opcode, nested
/// operand values) to mutate from.
fn sample_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::OpenElection { k: 6 },
        Request::Elect { session: 3, pid: 1 },
        Request::Hello {
            version: wire::VERSION,
        },
        Request::Resume {
            token: 0xFEED_F00D,
            last_acked: 17,
        },
        Request::DeadlineApply {
            budget_us: 2_500,
            pid: 1,
            op: Op::new(ObjectId(1), OpKind::FetchAdd(1)),
        },
        Request::Apply {
            pid: 0,
            op: Op::read(ObjectId(0)),
        },
        Request::Apply {
            pid: 1,
            op: Op::cas(
                ObjectId(0),
                Value::Sym(Sym::BOTTOM),
                Value::Sym(Sym::new(1)),
            ),
        },
        Request::Apply {
            pid: 2,
            op: Op::new(
                ObjectId(7),
                OpKind::Write(Value::Seq(vec![
                    Value::pair(Value::Int(-4), Value::Bool(true)),
                    Value::Pid(9),
                    Value::Nil,
                ])),
            ),
        },
    ]
}

fn sample_responses() -> Vec<Response> {
    vec![
        Response::Ok(Value::pair(Value::Sym(Sym::BOTTOM), Value::Int(i64::MIN))),
        Response::Err {
            code: ErrorCode::Busy,
            message: "shard 3 queue is full".into(),
        },
        Response::Session(41),
    ]
}

/// Frame body (length prefix stripped) of an encoded request.
fn body_of(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_request(9, req, &mut buf).unwrap();
    buf.split_off(4)
}

/// Rewrites a hand-mutated v2 body's trailing digest so it passes the
/// integrity gate — how these tests reach the *payload* validators
/// behind it (an attacker can always compute a valid digest; the
/// digest is against wire damage, not malice).
fn reseal(body: &mut [u8]) {
    let split = body.len() - wire::CHECKSUM_LEN;
    let sum = wire::checksum(&body[..split]);
    body[split..].copy_from_slice(&sum.to_le_bytes());
}

/// Appends a valid digest to a hand-built (digest-less) v2 body.
fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let sum = wire::checksum(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    body
}

#[test]
fn every_truncation_errors_cleanly() {
    for req in sample_requests() {
        let body = body_of(&req);
        for cut in 0..body.len() {
            let err = decode_request(&body[..cut])
                .expect_err("a strict prefix of a valid body must not decode");
            // Cutting before the version byte is Truncated; after it,
            // anything typed is acceptable — what matters is a clean
            // typed error, which the expect_err above already proves.
            if cut == 0 {
                assert_eq!(err, WireError::Truncated);
            }
        }
    }
    for resp in sample_responses() {
        let mut buf = Vec::new();
        encode_response(1, &resp, &mut buf).unwrap();
        let body = buf.split_off(4);
        for cut in 0..body.len() {
            decode_response(&body[..cut])
                .expect_err("a strict prefix of a valid body must not decode");
        }
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    // On a v2 body the integrity gate fires first: padding bytes shift
    // where the digest is read from, so the frame reads as damaged.
    let mut body = body_of(&Request::Ping);
    body.extend_from_slice(&[0, 0, 0]);
    assert!(matches!(
        decode_request(&body),
        Err(WireError::Corrupt { .. })
    ));
    // Reseal over the padding and the payload validator catches it.
    reseal(&mut body);
    assert_eq!(decode_request(&body), Err(WireError::Trailing(3)));
    // A v1 body (no digest) hits the payload validator directly.
    let mut body = body_of(&Request::Ping);
    body.truncate(body.len() - wire::CHECKSUM_LEN);
    body[0] = wire::MIN_DECODE_VERSION;
    body.extend_from_slice(&[0, 0, 0]);
    assert_eq!(decode_request(&body), Err(WireError::Trailing(3)));
}

#[test]
fn wrong_version_is_rejected() {
    // v1 bodies still decode (the payload layouts coincide; v1 carries
    // no digest); anything outside MIN_DECODE_VERSION..=VERSION is a
    // typed BadVersion.
    let mut body = body_of(&Request::Ping);
    body.truncate(body.len() - wire::CHECKSUM_LEN);
    body[0] = wire::MIN_DECODE_VERSION;
    assert!(decode_request(&body).is_ok());
    body[0] = wire::VERSION + 1;
    assert_eq!(
        decode_request(&body),
        Err(WireError::BadVersion(wire::VERSION + 1))
    );
    body[0] = 0;
    assert_eq!(decode_request(&body), Err(WireError::BadVersion(0)));
}

#[test]
fn unknown_opcodes_and_tags_are_rejected() {
    // Each mutation is resealed so it reaches the payload validator
    // behind the integrity gate — a crafted frame, not wire damage.
    // Response opcodes are not request opcodes and vice versa.
    let mut body = body_of(&Request::Ping);
    body[1] = 0x81;
    reseal(&mut body);
    assert_eq!(decode_request(&body), Err(WireError::BadOpcode(0x81)));
    body[1] = 0x7f;
    reseal(&mut body);
    assert_eq!(decode_request(&body), Err(WireError::BadOpcode(0x7f)));
    assert!(matches!(
        decode_response(&body),
        Err(WireError::BadOpcode(0x7f))
    ));

    // Corrupt the OpKind tag of an Apply (last payload byte of a Read).
    let mut body = body_of(&Request::Apply {
        pid: 0,
        op: Op::read(ObjectId(0)),
    });
    let last = body.len() - 1 - wire::CHECKSUM_LEN;
    body[last] = 250;
    reseal(&mut body);
    assert_eq!(decode_request(&body), Err(WireError::BadOpTag(250)));

    // Corrupt a Value tag (first payload byte of a Write op).
    let mut body = body_of(&Request::Apply {
        pid: 0,
        op: Op::write(ObjectId(0), Value::Nil),
    });
    let last = body.len() - 1 - wire::CHECKSUM_LEN;
    body[last] = 99;
    reseal(&mut body);
    assert_eq!(decode_request(&body), Err(WireError::BadValueTag(99)));

    // Corrupt a response error code.
    let mut buf = Vec::new();
    encode_response(
        1,
        &Response::Err {
            code: ErrorCode::Object,
            message: String::new(),
        },
        &mut buf,
    )
    .unwrap();
    let mut body = buf.split_off(4);
    body[10] = 77; // version(1) + opcode(1) + req_id(8) → code byte
    reseal(&mut body);
    assert_eq!(
        decode_response(&body),
        Err(WireError::BadErrorCode(77)),
        "body: {body:?}"
    );
}

/// A reader that panics if more than `limit` bytes are ever requested —
/// proof that an oversized length prefix is rejected *before* any
/// buffer for it is filled.
struct TrippedReader {
    data: Vec<u8>,
    at: usize,
    limit: usize,
    served: usize,
}

impl Read for TrippedReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = out.len().min(self.data.len() - self.at);
        self.served += n;
        assert!(
            self.served <= self.limit,
            "codec tried to read past the hardening limit"
        );
        out[..n].copy_from_slice(&self.data[self.at..self.at + n]);
        self.at += n;
        Ok(n)
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_the_body_is_read() {
    // Prefix claims ~4 GiB; only the 4 prefix bytes may be consumed.
    let mut r = TrippedReader {
        data: u32::MAX.to_le_bytes().to_vec(),
        at: 0,
        limit: 4,
        served: 0,
    };
    let mut buf = Vec::new();
    let err = read_frame(&mut r, &mut buf).expect_err("oversized frame must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(buf.capacity() < wire::MAX_FRAME, "no oversized allocation");
}

#[test]
fn eof_inside_prefix_or_body_is_unexpected_eof() {
    let mut buf = Vec::new();
    // Clean EOF at a frame boundary is Ok(false)…
    let mut empty: &[u8] = &[];
    assert!(!read_frame(&mut empty, &mut buf).unwrap());
    // …EOF two bytes into the prefix is an error…
    let mut partial: &[u8] = &[3, 0];
    let err = read_frame(&mut partial, &mut buf).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    // …and so is a body shorter than its prefix claims.
    let mut short: &[u8] = &[10, 0, 0, 0, 1, 2, 3];
    let err = read_frame(&mut short, &mut buf).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn lying_seq_counts_are_rejected_before_allocation() {
    // version, RESP_OK opcode, req_id, then a Seq claiming u32::MAX
    // elements with no element bytes behind it.
    let mut body = vec![wire::VERSION, 0x81];
    body.extend_from_slice(&7u64.to_le_bytes());
    body.push(6); // Seq tag
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        decode_response(&seal(body)),
        Err(WireError::SeqTooLong(u32::MAX as usize))
    );
    // A count under MAX_SEQ_LEN but over the remaining byte budget is
    // caught by the bytes-remaining check instead.
    let mut body = vec![wire::VERSION, 0x81];
    body.extend_from_slice(&7u64.to_le_bytes());
    body.push(6);
    body.extend_from_slice(&1000u32.to_le_bytes());
    body.extend_from_slice(&[0, 0, 0]); // 3 elements' worth of bytes
    assert_eq!(decode_response(&seal(body)), Err(WireError::Truncated));
}

#[test]
fn nesting_bomb_is_rejected() {
    // A chain of Pair tags far past MAX_VALUE_DEPTH: the depth guard
    // must fire before the cursor runs dry.
    let mut body = vec![wire::VERSION, 0x81];
    body.extend_from_slice(&7u64.to_le_bytes());
    body.extend(std::iter::repeat_n(5u8, wire::MAX_VALUE_DEPTH * 4));
    assert_eq!(decode_response(&seal(body)), Err(WireError::TooDeep));
}

#[test]
fn seeded_corruption_sweep_never_decodes_damage() {
    // The chaos-plan contract behind DESIGN.md §3.14: wire damage —
    // any single corrupted byte, any mid-frame truncation, on any
    // opcode including the Hello handshake — must surface as a typed
    // WireError, never panic, and above all never silently decode
    // (a silently wrong payload would break exactly-once retries).
    let mut rng = SplitMix64::new(0xC0_22FF);
    for req in sample_requests() {
        let body = body_of(&req);
        for i in 0..body.len() {
            let mut evil = body.clone();
            evil[i] ^= rng.range_u8(1, 255);
            assert!(
                decode_request(&evil).is_err(),
                "corrupted byte {i} of {req:?} decoded"
            );
        }
        for cut in 1..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "truncation at {cut} of {req:?} decoded"
            );
        }
    }

    // And end to end: a corrupted Hello costs that connection exactly
    // one malformed kill; the listener keeps serving.
    let mut layout = bso_objects::Layout::new();
    layout.push(bso_objects::ObjectInit::FetchAdd(0));
    let handle = Server::builder()
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .unwrap();
    let addr = handle.local_addr();
    {
        let mut body = body_of(&Request::Hello {
            version: wire::VERSION,
        });
        let i = 2 + rng.usize_below(body.len() - 2); // spare the version byte
        body[i] ^= rng.range_u8(1, 255);
        let mut framed = (body.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&body);
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(&framed).unwrap();
        let mut probe = [0u8; 1];
        assert_eq!(s.read(&mut probe).unwrap(), 0, "corrupt Hello gets EOF");
    }
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    encode_request(
        1,
        &Request::Apply {
            pid: 0,
            op: Op::new(ObjectId(0), OpKind::FetchAdd(1)),
        },
        &mut buf,
    )
    .unwrap();
    s.write_all(&buf).unwrap();
    let mut body = Vec::new();
    assert!(read_frame(&mut s, &mut body).unwrap());
    assert_eq!(
        wire::decode_response(&body).unwrap(),
        (1, Response::Ok(Value::Int(0)))
    );
    drop(s);
    let stats = handle.shutdown();
    assert_eq!(stats.malformed, 1);
}

#[test]
fn random_mutations_never_panic() {
    // Seeded-loop fuzz in the style of prop_faults.rs: flip bytes,
    // splice lengths, truncate — the decoder must always return, never
    // panic or hang.
    let reqs = sample_requests();
    let mut rng = SplitMix64::new(0x51e5);
    let mut decoded_ok = 0usize;
    for _ in 0..4000 {
        let mut body = body_of(&reqs[rng.usize_below(reqs.len())]);
        match rng.usize_below(3) {
            0 => {
                let i = rng.usize_below(body.len());
                body[i] = body[i].wrapping_add(rng.range_u8(1, 255));
            }
            1 => {
                let cut = rng.usize_below(body.len());
                body.truncate(cut);
            }
            _ => {
                let i = rng.usize_below(body.len());
                let extra = rng.usize_below(9);
                body.splice(i..i, std::iter::repeat_n(0xAAu8, extra));
            }
        }
        if decode_request(&body).is_ok() {
            decoded_ok += 1;
        }
    }
    // Some mutations (e.g. flipping a pid byte) still decode — fine.
    // The point is the 4000 iterations above completed.
    assert!(decoded_ok < 4000, "mutations cannot all be valid");
}

#[test]
fn garbage_on_one_connection_leaves_the_server_serving() {
    let mut layout = bso_objects::Layout::new();
    layout.push(bso_objects::ObjectInit::CasK { k: 4 });
    let handle = Server::builder()
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .unwrap();
    let addr = handle.local_addr();

    // Two malformed connections: unknown opcode and a nesting bomb.
    // Each must be dropped with EOF and no response.
    let mut frames = Vec::new();
    {
        let mut body = body_of(&Request::Ping);
        body[1] = 0x7e;
        frames.push(body);
    }
    {
        let mut body = vec![wire::VERSION, 0x01];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend(std::iter::repeat_n(5u8, 256));
        frames.push(body);
    }
    for body in frames {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let mut framed = (body.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&body);
        s.write_all(&framed).unwrap();
        let mut probe = [0u8; 1];
        assert_eq!(s.read(&mut probe).unwrap(), 0, "hostile conn gets EOF");
    }

    // An undecodable version is rejected with a *typed* error frame
    // before the graceful EOF — not a malformed kill.
    {
        let mut body = body_of(&Request::Ping);
        body[0] = 9;
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let mut framed = (body.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&body);
        s.write_all(&framed).unwrap();
        let mut resp_body = Vec::new();
        assert!(read_frame(&mut s, &mut resp_body).unwrap());
        assert!(matches!(
            wire::decode_response(&resp_body).unwrap().1,
            Response::Err {
                code: ErrorCode::Version,
                ..
            }
        ));
        assert!(
            !read_frame(&mut s, &mut resp_body).unwrap(),
            "clean EOF after the typed reject"
        );
    }

    // A well-behaved connection still gets service afterwards.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    encode_request(
        1,
        &Request::Apply {
            pid: 0,
            op: Op::cas(
                ObjectId(0),
                Value::Sym(Sym::BOTTOM),
                Value::Sym(Sym::new(2)),
            ),
        },
        &mut buf,
    )
    .unwrap();
    s.write_all(&buf).unwrap();
    let mut body = Vec::new();
    assert!(read_frame(&mut s, &mut body).unwrap());
    assert_eq!(
        wire::decode_response(&body).unwrap(),
        (1, Response::Ok(Value::Sym(Sym::BOTTOM)))
    );
    drop(s);
    let stats = handle.shutdown();
    assert_eq!(stats.malformed, 2);
    assert_eq!(stats.version_rejects, 1);
    assert_eq!(stats.connections, 4);
}
