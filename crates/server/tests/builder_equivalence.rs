//! Pins the deprecated serving surface to the builder path: a server
//! stood up through `Server::bind(addr, layout, ServerConfig)` must
//! behave identically to `Server::builder()` with the same knobs.
//! When the wrappers are eventually deleted, this file goes with them.
#![allow(deprecated)]

use std::io::Write;
use std::net::TcpStream;

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_server::wire::{self, read_frame};
use bso_server::{Request, Response, Server, ServerConfig, ServerHandle};

fn layout() -> Layout {
    let mut l = Layout::new();
    l.push(ObjectInit::FetchAdd(0));
    l.push(ObjectInit::Register(Value::Nil));
    l.push(ObjectInit::CasK { k: 4 });
    l
}

/// One blocking round trip over raw frames.
fn round_trip(s: &mut TcpStream, req_id: u64, req: &Request) -> Response {
    let mut buf = Vec::new();
    wire::encode_request(req_id, req, &mut buf).unwrap();
    s.write_all(&buf).unwrap();
    buf.clear();
    assert!(read_frame(s, &mut buf).unwrap(), "server closed mid-script");
    let (id, resp) = wire::decode_response(&buf).unwrap();
    assert_eq!(id, req_id);
    resp
}

/// Same scripted workload against either server; returns final stats.
fn workload(handle: ServerHandle) -> bso_server::ServerStats {
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    let mut req_id = 0u64;
    let mut rt = |s: &mut TcpStream, req: &Request| {
        req_id += 1;
        round_trip(s, req_id, req)
    };

    for i in 0..40 {
        let add = Request::Apply {
            pid: 0,
            op: Op::new(ObjectId(0), OpKind::FetchAdd(1)),
        };
        assert!(matches!(rt(&mut s, &add), Response::Ok(_)));
        let write = Request::Apply {
            pid: 0,
            op: Op::write(ObjectId(1), Value::Int(i)),
        };
        assert!(matches!(rt(&mut s, &write), Response::Ok(_)));
    }
    let read = Request::Apply {
        pid: 0,
        op: Op::read(ObjectId(0)),
    };
    assert_eq!(rt(&mut s, &read), Response::Ok(Value::Int(40)));

    let session = match rt(&mut s, &Request::OpenElection { k: 3 }) {
        Response::Session(id) => id,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(
        rt(&mut s, &Request::Elect { session, pid: 0 }),
        Response::Ok(Value::Pid(0))
    );
    assert!(matches!(rt(&mut s, &Request::Ping), Response::Ok(_)));
    drop(s);
    handle.shutdown()
}

#[test]
fn deprecated_bind_equals_builder() {
    let config = ServerConfig {
        shards: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    };
    let old = workload(Server::bind("127.0.0.1:0", &layout(), config).unwrap());
    let new = workload(
        Server::builder()
            .shards(2)
            .queue_capacity(64)
            .pin_cores(false)
            .bind("127.0.0.1:0", &layout())
            .unwrap(),
    );

    assert_eq!(old.connections, new.connections);
    assert_eq!(old.requests, new.requests);
    assert_eq!(old.responses, new.responses);
    assert_eq!(old.busy, new.busy);
    assert_eq!(old.malformed, 0);
    assert_eq!(new.malformed, 0);
    assert_eq!(old.version_rejects, 0);
    assert_eq!(new.version_rejects, 0);
}
