//! Experiment E2 performance series: the Lemma 1.1 move/jump game —
//! exhaustive strategy search on small instances, greedy witnesses on
//! larger ones, and the potential audit.

use bso::combinatorics::game::{audit_potential, Game, GameAction};
use bso::combinatorics::search::{greedy_moves, max_moves, max_moves_any_start};
use bso_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("game_exhaustive");
    g.sample_size(10);
    for (k, m) in [(2usize, 2usize), (3, 2), (2, 3), (3, 3)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_m{m}")),
            &(k, m),
            |b, &(k, m)| b.iter(|| black_box(max_moves_any_start(k, m))),
        );
    }
    g.finish();
}

fn bench_single_start(c: &mut Criterion) {
    let mut g = c.benchmark_group("game_fixed_start");
    g.sample_size(10);
    for (k, m) in [(4usize, 2usize), (3, 3)] {
        let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_m{m}")),
            &starts,
            |b, starts| b.iter(|| black_box(max_moves(k, starts))),
        );
    }
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("game_greedy");
    for (k, m) in [(5usize, 3usize), (6, 3), (8, 4)] {
        let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_m{m}")),
            &starts,
            |b, starts| b.iter(|| black_box(greedy_moves(k, starts, 100_000))),
        );
    }
    g.finish();
}

fn bench_potential_audit(c: &mut Criterion) {
    // A fixed medium-length run to audit.
    let k = 5;
    let starts = [0usize, 0, 1];
    let mut game = Game::new(k, &starts);
    let mut run = Vec::new();
    while run.len() < 60 {
        let actions = game.legal_actions();
        if actions.is_empty() {
            break;
        }
        let a = actions[run.len() * 7 % actions.len()];
        game.act(a).unwrap();
        run.push(a);
    }
    let moves = run
        .iter()
        .filter(|a| matches!(a, GameAction::Move { .. }))
        .count();
    assert!(moves >= 1);
    c.bench_function("game_potential_audit", |b| {
        b.iter(|| black_box(audit_potential(k, &starts, &run)))
    });
}

criterion_group! {
    name = benches;
    config = bso_bench::quick();
    targets = bench_exhaustive, bench_single_start, bench_greedy, bench_potential_audit
}
criterion_main!(benches);
