//! Experiment E3/E4 performance series: leader-election cost in the
//! two regimes.
//!
//! * `cas_only/k` — Burns–Cruz–Loui regime: `k−1` processes, one
//!   compare&swap-(k), no registers. O(1) operations per process.
//! * `label/k` — `(k−1)!` processes, one compare&swap-(k) plus
//!   read/write memory (`LabelElection`). O(k) operations per process,
//!   but factorially many processes: the series exhibits the
//!   exponential power the paper prices.
//! * `label_threads/k` — the same election on real OS threads over
//!   hardware atomics.

use bso::sim::{thread_runner, ProtocolExt};
use bso::{CasOnlyElection, LabelElection};
use bso_bench::run_once;
use bso_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_cas_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("cas_only");
    for k in [3usize, 5, 8, 12, 16] {
        let proto = CasOnlyElection::new(k - 1, k).unwrap();
        g.throughput(Throughput::Elements((k - 1) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_once(&proto, seed)
            });
        });
    }
    g.finish();
}

fn bench_label(c: &mut Criterion) {
    let mut g = c.benchmark_group("label");
    for k in [3usize, 4, 5, 6] {
        let n = bso::bounds::nk_algorithmic(k) as usize;
        let proto = LabelElection::new(n, k).unwrap();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("full_house", k), &k, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_once(&proto, seed)
            });
        });
    }
    g.finish();
}

fn bench_label_rw(c: &mut Criterion) {
    // The fully-from-registers variant: the O(n²) snapshot scans
    // dominate — compare with the `label` group to price the
    // construction.
    let mut g = c.benchmark_group("label_rw");
    for k in [3usize, 4] {
        let n = bso::bounds::nk_algorithmic(k) as usize;
        let proto = bso::protocols::LabelElectionRw::new(n, k).unwrap();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("full_house", k), &k, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_once(&proto, seed)
            });
        });
    }
    g.finish();
}

fn bench_label_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("label_threads");
    g.sample_size(20);
    for k in [4usize, 5] {
        let n = bso::bounds::nk_algorithmic(k) as usize;
        let proto = LabelElection::new(n, k).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| thread_runner::run_on_threads(&proto, &proto.pid_inputs()).unwrap());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = bso_bench::quick();
    targets = bench_cas_only, bench_label, bench_label_rw, bench_label_threads
}
criterion_main!(benches);
