//! The exhaustive model checker: states per second and full-instance
//! verification cost for the protocols the experiments rely on.

use bso::sim::{explore, ExploreConfig, ProtocolExt, TaskSpec};
use bso::{CasOnlyElection, LabelElection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_explore_cas_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore_cas_only");
    g.sample_size(20);
    for k in [3usize, 4, 5, 6] {
        let proto = CasOnlyElection::new(k - 1, k).unwrap();
        let inputs = proto.pid_inputs();
        let cfg = ExploreConfig { spec: TaskSpec::Election, ..Default::default() };
        // Report throughput in explored states.
        let states = explore(&proto, &inputs, &cfg).states as u64;
        g.throughput(Throughput::Elements(states));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(explore(&proto, &inputs, &cfg)));
        });
    }
    g.finish();
}

fn bench_explore_label(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore_label");
    g.sample_size(10);
    for (n, k) in [(2usize, 3usize), (2, 4), (3, 4)] {
        let proto = LabelElection::new(n, k).unwrap();
        let inputs = proto.pid_inputs();
        let cfg = ExploreConfig { spec: TaskSpec::Election, ..Default::default() };
        let states = explore(&proto, &inputs, &cfg).states as u64;
        g.throughput(Throughput::Elements(states));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &k,
            |b, _| b.iter(|| black_box(explore(&proto, &inputs, &cfg))),
        );
    }
    g.finish();
}

fn bench_refuter(c: &mut Criterion) {
    use bso::hierarchy::candidates::TasThreeEagerCandidate;
    use bso::objects::Value;
    use bso::sim::refute::refute_consensus;
    let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
    c.bench_function("refute_tas_three_eager", |b| {
        b.iter(|| black_box(refute_consensus(&TasThreeEagerCandidate, &inputs, 1_000_000)))
    });
}

criterion_group! {
    name = benches;
    config = bso_bench::quick();
    targets = bench_explore_cas_only, bench_explore_label, bench_refuter
}
criterion_main!(benches);
