//! The exhaustive model checker: states per second and full-instance
//! verification cost for the protocols the experiments rely on.
//!
//! Besides the live engine, this bench carries [`seed_baseline`] — a
//! faithful compact replica of the original recursive single-threaded
//! explorer (full-state `HashMap` memo under the std `SipHash` hasher,
//! separate gray set, per-successor clone) — so every run measures the
//! current engine's speedup over it on identical instances. The run's
//! states/sec records and the per-instance speedups are written to
//! `BENCH_explore.json` at the workspace root.

use bso::sim::{DedupMode, Explorer, ProtocolExt, TaskSpec};
use bso::{CasOnlyElection, LabelElection};
use bso_bench::{BenchmarkId, Criterion, Measurement, Throughput};
use bso_telemetry::json::Json;
use std::hint::black_box;

/// A compact replica of the pre-rewrite explorer, kept verbatim in
/// algorithm and data-structure choices: recursive DFS, a
/// `HashMap<full state, bounds>` memo and a `HashSet` gray set (both
/// SipHash-keyed), one state clone per generated successor plus one
/// per gray insertion. Only the leader-election specification is
/// implemented — that is all the baseline instances need.
mod seed_baseline {
    use std::collections::{HashMap, HashSet};
    use std::hash::Hash;

    use bso::objects::Value;
    use bso::sim::{Action, Pid, Protocol, SharedMemory};

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct StateKey<S> {
        mem: SharedMemory,
        states: Vec<S>,
        decisions: Vec<Option<Value>>,
        stepped: u64,
    }

    struct Explorer<'p, P: Protocol> {
        proto: &'p P,
        memo: HashMap<StateKey<P::State>, Vec<usize>>,
        gray: HashSet<StateKey<P::State>>,
        terminals: usize,
    }

    impl<P: Protocol> Explorer<'_, P>
    where
        P::State: Hash + Eq,
    {
        fn successor(&self, key: &StateKey<P::State>, pid: Pid) -> StateKey<P::State> {
            let mut next = key.clone();
            match self.proto.next_action(&next.states[pid]) {
                Action::Invoke(op) => {
                    let resp = next.mem.apply(pid, &op).expect("legal op");
                    self.proto.on_response(&mut next.states[pid], resp);
                    next.stepped |= 1 << pid;
                }
                Action::Decide(v) => {
                    next.stepped |= 1 << pid;
                    let ok = v.as_pid().is_some_and(|w| next.stepped >> w & 1 == 1)
                        && next.decisions.iter().flatten().all(|w| *w == v);
                    assert!(ok, "baseline instances are verified elections");
                    next.decisions[pid] = Some(v);
                }
            }
            next
        }

        fn dfs(&mut self, key: StateKey<P::State>) -> Vec<usize> {
            if let Some(hit) = self.memo.get(&key) {
                return hit.clone();
            }
            assert!(!self.gray.contains(&key), "baseline instances are acyclic");
            let enabled: Vec<Pid> = (0..key.decisions.len())
                .filter(|&p| key.decisions[p].is_none())
                .collect();
            if enabled.is_empty() {
                self.terminals += 1;
                let zeros = vec![0; key.decisions.len()];
                self.memo.insert(key, zeros.clone());
                return zeros;
            }
            self.gray.insert(key.clone());
            let mut best = vec![0usize; key.decisions.len()];
            for pid in enabled {
                let next = self.successor(&key, pid);
                for (p, r) in self.dfs(next).iter().enumerate() {
                    best[p] = best[p].max(r + usize::from(p == pid));
                }
            }
            self.gray.remove(&key);
            self.memo.insert(key, best.clone());
            best
        }
    }

    /// Explores all interleavings of a verified election protocol and
    /// returns (distinct states, terminals, max steps per process).
    pub fn explore_election<P: Protocol>(proto: &P, inputs: &[Value]) -> (usize, usize, Vec<usize>)
    where
        P::State: Hash + Eq,
    {
        let n = proto.processes();
        let init = StateKey {
            mem: SharedMemory::new(&proto.layout()),
            states: inputs
                .iter()
                .enumerate()
                .map(|(p, v)| proto.init(p, v))
                .collect(),
            decisions: vec![None; n],
            stepped: 0,
        };
        let mut ex = Explorer {
            proto,
            memo: HashMap::new(),
            gray: HashSet::new(),
            terminals: 0,
        };
        let bounds = ex.dfs(init);
        (ex.memo.len(), ex.terminals, bounds)
    }
}

/// The instances both the baseline and the live engine run: `k` CAS
/// symbols, `k − 1` processes. Throughput differences grow with `k` —
/// the baseline hashes and clones whole states per edge (Θ(n) work)
/// where the engine's incremental fingerprints are O(1).
const CAS_KS: [usize; 6] = [3, 4, 5, 6, 7, 8];

fn bench_explore_seed_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore_seed_baseline");
    g.sample_size(10);
    for k in CAS_KS {
        let proto = CasOnlyElection::new(k - 1, k).unwrap();
        let inputs = proto.pid_inputs();
        let (states, _, _) = seed_baseline::explore_election(&proto, &inputs);
        g.throughput(Throughput::Elements(states as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(seed_baseline::explore_election(&proto, &inputs)));
        });
    }
    g.finish();
}

fn bench_explore_cas_only(c: &mut Criterion) {
    // The engine's two serial key modes on the same instances the seed
    // baseline runs: exact (collision-free, like the seed) and
    // fingerprint (the memory-lean production mode).
    for (group, dedup) in [
        ("explore_cas_only", DedupMode::Exact),
        ("explore_cas_only_fp", DedupMode::Fingerprint),
    ] {
        let mut g = c.benchmark_group(group);
        g.sample_size(20);
        for k in CAS_KS {
            let proto = CasOnlyElection::new(k - 1, k).unwrap();
            let ex = Explorer::new(&proto)
                .inputs(&proto.pid_inputs())
                .spec(TaskSpec::Election)
                .dedup(dedup);
            // Report throughput in explored states.
            let states = ex.run().states as u64;
            g.throughput(Throughput::Elements(states));
            g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
                b.iter(|| black_box(ex.run()));
            });
        }
        g.finish();
    }
}

/// The same instance across every engine mode: serial/parallel ×
/// exact/fingerprint keys, plus symmetry reduction (whose throughput
/// is in *orbit representatives* — fewer states, same verdict).
fn bench_explore_modes(c: &mut Criterion) {
    let proto = CasOnlyElection::new(5, 6).unwrap();
    let inputs = proto.pid_inputs();
    let modes: [(&str, bool, DedupMode, bool); 5] = [
        ("serial_exact", false, DedupMode::Exact, false),
        ("serial_fingerprint", false, DedupMode::Fingerprint, false),
        ("parallel_exact", true, DedupMode::Exact, false),
        ("parallel_fingerprint", true, DedupMode::Fingerprint, false),
        ("serial_symmetric", false, DedupMode::Exact, true),
    ];
    let mut g = c.benchmark_group("explore_modes");
    g.sample_size(10);
    for (name, parallel, dedup, symmetric) in modes {
        let mut ex = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::Election)
            .dedup(dedup)
            .parallel(parallel)
            .symmetric(symmetric);
        if parallel {
            ex = ex.workers(4);
        }
        let states = ex.run().states;
        g.throughput(Throughput::Elements(states as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| black_box(ex.run()));
        });
    }
    g.finish();
}

/// The tentpole measurement: dynamic partial-order reduction on the
/// exact-keyed engine, same instances as `explore_cas_only`. The
/// interesting number is not the time but the *states* throughput
/// element count — DPOR visits Θ(n²) states where the unreduced graph
/// has Θ(3ⁿ) — which `emit_json` turns into per-instance cut ratios.
fn bench_explore_dpor(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore_dpor");
    g.sample_size(20);
    for k in CAS_KS {
        let proto = CasOnlyElection::new(k - 1, k).unwrap();
        let ex = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election)
            .dpor(true);
        let states = ex.run().states as u64;
        g.throughput(Throughput::Elements(states));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(ex.run()));
        });
    }
    g.finish();
}

fn bench_explore_label(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore_label");
    g.sample_size(10);
    for (n, k) in [(2usize, 3usize), (2, 4), (3, 4)] {
        let proto = LabelElection::new(n, k).unwrap();
        let ex = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election);
        let states = ex.run().states as u64;
        g.throughput(Throughput::Elements(states));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &k,
            |b, _| b.iter(|| black_box(ex.run())),
        );
    }
    g.finish();
}

/// The cost of structured event tracing on the fingerprint-mode
/// engine, same instance as `explore_cas_only_fp/6`: a disabled sink
/// must be free (the hot path checks one `Option` and never reads a
/// clock), and the enabled cost is recorded for reference.
fn bench_explore_tracing(c: &mut Criterion) {
    use bso_telemetry::TraceSink;
    let proto = CasOnlyElection::new(5, 6).unwrap();
    let inputs = proto.pid_inputs();
    let mut g = c.benchmark_group("explore_tracing");
    g.sample_size(20);
    for (name, sink) in [
        ("disabled", TraceSink::disabled()),
        ("enabled", TraceSink::with_capacity(256)),
    ] {
        let ex = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::Election)
            .dedup(DedupMode::Fingerprint)
            .trace(sink);
        let states = ex.run().states as u64;
        g.throughput(Throughput::Elements(states));
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| black_box(ex.run()));
        });
    }
    g.finish();
}

/// The cost of the crash-fault adversary on the fingerprint-mode
/// engine, same instance as `explore_cas_only_fp/7`: with faults
/// disabled (the default) the hot path must not pay for the machinery
/// — one branch on an empty fault budget — and the `f = 1` cost is
/// recorded for reference (it explores a strictly larger graph, so
/// its throughput is over more states, not the same ones). The k = 7
/// instance (up from k = 6) keeps the crash-free runtime well above
/// the sub-millisecond noise floor that made the smaller comparison
/// meaningless.
fn bench_explore_faults(c: &mut Criterion) {
    let proto = CasOnlyElection::new(6, 7).unwrap();
    let inputs = proto.pid_inputs();
    let mut g = c.benchmark_group("explore_faults");
    g.sample_size(20);
    for (name, faults) in [("disabled", 0usize), ("f1", 1)] {
        let ex = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::Election)
            .dedup(DedupMode::Fingerprint)
            .faults(faults);
        let states = ex.run().states as u64;
        g.throughput(Throughput::Elements(states));
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| black_box(ex.run()));
        });
    }
    g.finish();
}

fn bench_refuter(c: &mut Criterion) {
    use bso::hierarchy::candidates::TasThreeEagerCandidate;
    use bso::objects::Value;
    use bso::sim::refute::refute_consensus;
    let inputs = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
    c.bench_function("refute_tas_three_eager", |b| {
        b.iter(|| {
            black_box(refute_consensus(
                &TasThreeEagerCandidate,
                &inputs,
                1_000_000,
            ))
        })
    });
}

/// Serializes the run's measurements (and the per-instance speedup of
/// the current serial engine over the seed baseline) through the
/// workspace's shared JSON writer; every name is a bench id and every
/// number is finite.
fn emit_json(measurements: &[Measurement]) -> String {
    let ns = |d: std::time::Duration| Json::U64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    let records: Vec<Json> = measurements
        .iter()
        .map(|m| {
            Json::obj([
                ("name", Json::str(m.name.as_str())),
                ("median_ns", ns(m.median)),
                ("min_ns", ns(m.min)),
                ("states", m.elements.map_or(Json::Null, Json::U64)),
                (
                    "states_per_sec",
                    m.elements_per_sec().map_or(Json::Null, Json::F64),
                ),
            ])
        })
        .collect();
    let mut doc = vec![
        ("bench".to_string(), Json::str("explore")),
        ("records".to_string(), Json::Arr(records)),
    ];
    // Two speedup estimators per instance. The median ratio is the
    // everyday summary; the min-time ratio compares each side's
    // fastest observed sample, which rejects external scheduler noise
    // (a co-loaded box can only ever slow a sample down, never speed
    // it up) and is therefore the more faithful measure of the
    // algorithmic speedup on shared hardware.
    let find = |name: &str| measurements.iter().find(|m| m.name == name);
    for (field, use_min) in [
        ("speedup_vs_seed", false),
        ("speedup_vs_seed_min_time", true),
    ] {
        let mut pairs = Vec::new();
        for (label, group) in [
            ("cas_only", "explore_cas_only"),
            ("cas_only_fp", "explore_cas_only_fp"),
        ] {
            for k in CAS_KS {
                let (Some(new), Some(old)) = (
                    find(&format!("{group}/{k}")),
                    find(&format!("explore_seed_baseline/{k}")),
                ) else {
                    continue;
                };
                let ratio = if use_min {
                    old.min.as_secs_f64() / new.min.as_secs_f64()
                } else {
                    old.median.as_secs_f64() / new.median.as_secs_f64()
                };
                pairs.push((format!("{label}_k{k}"), Json::F64(ratio)));
            }
        }
        doc.push((field.to_string(), Json::Obj(pairs)));
    }
    // Tracing overhead on the fingerprint engine, min-time estimator
    // (same rationale as above). "disabled" runs the identical
    // instance as explore_cas_only_fp/6, so its overhead is the cost
    // of the instrumentation itself with no sink attached — the
    // quantity the ≤2% acceptance bound is about.
    if let (Some(disabled), Some(enabled), Some(base)) = (
        find("explore_tracing/disabled"),
        find("explore_tracing/enabled"),
        find("explore_cas_only_fp/6"),
    ) {
        let pct = |m: &Measurement| {
            Json::F64((m.min.as_secs_f64() / base.min.as_secs_f64() - 1.0) * 100.0)
        };
        doc.push((
            "tracing".to_string(),
            Json::obj([
                ("disabled_median_ns", ns(disabled.median)),
                ("enabled_median_ns", ns(enabled.median)),
                ("disabled_overhead_pct_min_time", pct(disabled)),
                ("enabled_overhead_pct_min_time", pct(enabled)),
            ]),
        ));
    }
    // Fault-adversary overhead, same estimator and baseline as the
    // tracing section. "disabled" is the identical instance to
    // explore_cas_only_fp/7 with an explicit zero fault budget, so its
    // overhead is what every crash-free caller pays for the adversary
    // existing at all; "f1" is raw cost on its (larger) crashy graph.
    if let (Some(disabled), Some(f1), Some(base)) = (
        find("explore_faults/disabled"),
        find("explore_faults/f1"),
        find("explore_cas_only_fp/7"),
    ) {
        doc.push((
            "faults".to_string(),
            Json::obj([
                ("disabled_median_ns", ns(disabled.median)),
                ("f1_median_ns", ns(f1.median)),
                (
                    "disabled_overhead_pct_min_time",
                    Json::F64((disabled.min.as_secs_f64() / base.min.as_secs_f64() - 1.0) * 100.0),
                ),
                (
                    "f1_states_per_sec",
                    f1.elements_per_sec().map_or(Json::Null, Json::F64),
                ),
            ]),
        ));
    }
    // DPOR state cuts per instance: the reduction's figure of merit is
    // states *not visited*, so this section compares element counts
    // (which are exact and noise-free), not times. `cut` is the factor
    // by which the explored graph shrank; the acceptance bar is ≥ 10
    // at k ≥ 6 (checked by `validate_telemetry --explore`).
    let mut cuts = Vec::new();
    for k in CAS_KS {
        let (Some(full), Some(dpor)) = (
            find(&format!("explore_cas_only/{k}")),
            find(&format!("explore_dpor/{k}")),
        ) else {
            continue;
        };
        let (Some(sf), Some(sd)) = (full.elements, dpor.elements) else {
            continue;
        };
        cuts.push((
            format!("k{k}"),
            Json::obj([
                ("states_full", Json::U64(sf)),
                ("states_dpor", Json::U64(sd)),
                ("cut", Json::F64(sf as f64 / sd as f64)),
            ]),
        ));
    }
    doc.push(("dpor".to_string(), Json::Obj(cuts)));
    Json::Obj(doc).render_pretty()
}

fn main() {
    // `--smoke` (CI) shrinks the measurement windows to a schema-level
    // sanity run: the emitted JSON has every group and every exact
    // state count, only the timings are noisy. The default windows are
    // longer than `quick()`: the emitted speedup-vs-seed ratios feed
    // acceptance checks, so per-run scheduler noise (this is often a
    // loaded single-core box) must be averaged down.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warm_ms, meas_ms, samples) = if smoke { (50, 200, 5) } else { (800, 4000, 20) };
    let mut c = bso_bench::quick()
        .warm_up_time(std::time::Duration::from_millis(warm_ms))
        .measurement_time(std::time::Duration::from_millis(meas_ms))
        .sample_size(samples);
    bench_explore_seed_baseline(&mut c);
    bench_explore_cas_only(&mut c);
    bench_explore_dpor(&mut c);
    bench_explore_modes(&mut c);
    bench_explore_tracing(&mut c);
    bench_explore_faults(&mut c);
    bench_explore_label(&mut c);
    bench_refuter(&mut c);
    let json = emit_json(c.measurements());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("\nwrote {path}");
    bso_bench::dump_telemetry();
}
