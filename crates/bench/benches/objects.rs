//! Object-layer performance: the bounded compare&swap on the model
//! backend (sequential specification) vs the hardware backend
//! (lock-free `AtomicU8`), uncontended and contended.

use bso::objects::atomic::{AtomicMemory, Memory};
use bso::objects::{spec::ObjectState, Layout, ObjectInit, Op, OpKind, Sym, Value};
use bso_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn cas_ops(k: usize) -> Vec<OpKind> {
    // A swap chain around the domain: every op alternates success/fail.
    let mut ops = Vec::new();
    for i in 0..k as u8 - 1 {
        ops.push(OpKind::Cas {
            expect: if i == 0 {
                Sym::BOTTOM.into()
            } else {
                Sym::new(i - 1).into()
            },
            new: Sym::new(i).into(),
        });
        ops.push(OpKind::Read);
    }
    ops
}

fn bench_model_cas(c: &mut Criterion) {
    let mut g = c.benchmark_group("cas_model");
    for k in [3usize, 8, 32, 128] {
        let ops = cas_ops(k);
        g.throughput(Throughput::Elements(ops.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut cas = ObjectState::from_init(&ObjectInit::CasK { k });
                for op in &ops {
                    black_box(cas.apply(0, op).unwrap());
                }
            });
        });
    }
    g.finish();
}

fn bench_hardware_cas(c: &mut Criterion) {
    let mut g = c.benchmark_group("cas_hardware");
    for k in [3usize, 8, 32, 128] {
        let ops = cas_ops(k);
        let mut layout = Layout::new();
        let id = layout.push(ObjectInit::CasK { k });
        g.throughput(Throughput::Elements(ops.len() as u64));
        g.bench_with_input(BenchmarkId::new("uncontended", k), &k, |b, _| {
            b.iter(|| {
                let mem = AtomicMemory::new(&layout);
                for op in &ops {
                    black_box(mem.apply(0, &Op::new(id, op.clone())).unwrap());
                }
            });
        });
    }
    g.finish();
}

fn bench_hardware_cas_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("cas_hardware_contended");
    g.sample_size(20);
    for threads in [2usize, 4, 8] {
        let mut layout = Layout::new();
        let id = layout.push(ObjectInit::CasK { k: 16 });
        g.throughput(Throughput::Elements((threads * 1000) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let mem = AtomicMemory::new(&layout);
                crossbeam_scope(&mem, id, t);
            });
        });
    }
    g.finish();
}

fn crossbeam_scope(mem: &AtomicMemory, id: bso::objects::ObjectId, threads: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                for i in 0..1000u32 {
                    let e = Sym::from_code((i % 16) as u8);
                    let n = Sym::from_code(((i + 1) % 16) as u8);
                    let _ = mem.apply(t, &Op::cas(id, e.into(), n.into())).unwrap();
                }
            });
        }
    });
}

fn bench_snapshot_object(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_object_scan");
    for slots in [4usize, 16, 64] {
        let mut layout = Layout::new();
        let id = layout.push(ObjectInit::Snapshot { slots });
        let mem = AtomicMemory::new(&layout);
        for s in 0..slots {
            mem.apply(
                s,
                &Op::new(id, OpKind::SnapshotUpdate(Value::Int(s as i64))),
            )
            .unwrap();
        }
        g.throughput(Throughput::Elements(slots as u64));
        g.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, _| {
            b.iter(|| black_box(mem.apply(0, &Op::new(id, OpKind::SnapshotScan)).unwrap()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = bso_bench::quick();
    targets = bench_model_cas, bench_hardware_cas, bench_hardware_cas_contended, bench_snapshot_object
}
criterion_main!(benches);
