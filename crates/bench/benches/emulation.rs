//! Experiment E1 performance series: the cost of the Theorem 1
//! reduction — emulating a compare&swap election on read/write memory
//! — as the emulator count and the emulated algorithm grow, plus the
//! cost of the Lemma 1.2 validation (linearizability replay).

use bso::{CasOnlyElection, LabelElection, Reduction};
use bso_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_reduction_emulators(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_emulators");
    g.sample_size(20);
    for m in [2usize, 3, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let a = LabelElection::new(6, 4).unwrap();
                black_box(Reduction::new(a, m).run_seeded(seed).unwrap())
            });
        });
    }
    g.finish();
}

fn bench_reduction_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_algorithm");
    g.sample_size(20);
    g.bench_function("cas_only_k5", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let a = CasOnlyElection::new(4, 5).unwrap();
            black_box(Reduction::new(a, 2).run_seeded(seed).unwrap())
        });
    });
    g.bench_function("label_k3", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let a = LabelElection::new(2, 3).unwrap();
            black_box(Reduction::new(a, 2).run_seeded(seed).unwrap())
        });
    });
    g.bench_function("label_k5_phi24", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let a = LabelElection::new(24, 5).unwrap();
            black_box(Reduction::new(a, 4).run_seeded(seed).unwrap())
        });
    });
    g.finish();
}

fn bench_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_validate");
    g.sample_size(20);
    let a = LabelElection::new(6, 4).unwrap();
    let report = Reduction::new(a, 3).run_seeded(11).unwrap();
    g.bench_function("lemma_1_2_replay", |b| {
        b.iter(|| black_box(report.validate().unwrap()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = bso_bench::quick();
    targets = bench_reduction_emulators, bench_reduction_algorithms, bench_validation
}
criterion_main!(benches);
