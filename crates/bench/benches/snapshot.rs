//! The register-based atomic snapshot (Afek et al.): cost of the
//! full exerciser as processes and update rounds grow — the O(n²)
//! scan cost made visible.

use bso::protocols::snapshot::SnapshotExerciser;
use bso_bench::run_once;
use bso_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_snapshot_processes(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_processes");
    for n in [2usize, 4, 8, 12] {
        let proto = SnapshotExerciser::new(n, 2);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_once(&proto, seed)
            });
        });
    }
    g.finish();
}

fn bench_snapshot_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_rounds");
    for rounds in [1usize, 2, 4, 8] {
        let proto = SnapshotExerciser::new(4, rounds);
        g.throughput(Throughput::Elements(rounds as u64));
        g.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_once(&proto, seed)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = bso_bench::quick();
    targets = bench_snapshot_processes, bench_snapshot_rounds
}
criterion_main!(benches);
