//! Experiment E7 performance series: the full PODC '94 emulation —
//! run cost and Lemma 1.2 legality-validation cost as Φ grows — plus
//! the universal construction.

use bso::emulation::pingpong::PingPong;
use bso::emulation::rich::{run_rich, RichConfig, RichEmulation};
use bso::objects::{ObjectInit, OpKind};
use bso::protocols::universal::UniversalExerciser;
use bso::sim::scheduler::RandomSched;
use bso_bench::run_once;
use bso_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn cfg() -> RichConfig {
    RichConfig {
        suspend_quota: 2,
        ..RichConfig::demo()
    }
}

fn bench_rich_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("rich_run");
    for phi in [8usize, 16, 32] {
        g.throughput(Throughput::Elements(phi as u64));
        g.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, &phi| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let a = PingPong::new(phi, 3, 2);
                let emu = RichEmulation::new(a, 2, cfg());
                black_box(run_rich(&emu, &mut RandomSched::new(seed), 400_000).unwrap())
            });
        });
    }
    g.finish();
}

fn bench_rich_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("rich_validate");
    g.sample_size(10);
    for phi in [8usize, 16, 32] {
        let a = PingPong::new(phi, 3, 2);
        let emu = RichEmulation::new(a, 2, cfg());
        let report = run_rich(&emu, &mut RandomSched::new(3), 400_000).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, _| {
            b.iter(|| black_box(report.validate().unwrap()));
        });
    }
    g.finish();
}

fn bench_universal(c: &mut Criterion) {
    let mut g = c.benchmark_group("universal_counter");
    for n in [2usize, 4, 8] {
        let scripts = vec![vec![OpKind::FetchAdd(1); 2]; n];
        let proto = UniversalExerciser::new(ObjectInit::FetchAdd(0), scripts);
        g.throughput(Throughput::Elements((2 * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_once(&proto, seed)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = bso_bench::quick();
    targets = bench_rich_run, bench_rich_validate, bench_universal
}
criterion_main!(benches);
