//! Benchmark harness for the `bso` workspace.
//!
//! Each bench file under `benches/` regenerates one experiment's
//! performance series (see EXPERIMENTS.md): election cost across
//! `(n, k)`, hardware vs model compare&swap throughput, snapshot scan
//! cost, the Lemma 1.1 game search, the exhaustive model checker, and
//! the emulation of Theorem 1.
//!
//! The workspace builds with no external crates, so this library also
//! hosts a small measurement harness exposing the subset of the
//! `criterion` API the bench files use ([`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], the
//! [`criterion_group!`]/[`criterion_main!`] macros). Timing is
//! wall-clock medians over fixed-duration samples — good enough to
//! compare shapes across parameters, which is all the experiments need.

#![forbid(unsafe_code)]

pub mod chaos;

use std::time::{Duration, Instant};

use bso::sim::{scheduler::RandomSched, Protocol, ProtocolExt, RunResult, Simulation};

/// Runs one seeded simulation of `proto` to quiescence and returns the
/// result (panics on protocol errors — benches must be green).
pub fn run_once<P: Protocol>(proto: &P, seed: u64) -> RunResult {
    let mut sim = Simulation::new(proto, &proto.pid_inputs());
    sim.run(&mut RandomSched::new(seed), 50_000_000)
        .expect("benched run must complete")
}

/// Writes the global observability artifacts named by the environment
/// (`BSO_TELEMETRY` snapshot, `BSO_TRACE` event trace), if set. Every
/// bench binary calls this once before exiting (the
/// [`criterion_main!`] expansion does it automatically), so
/// `BSO_TELEMETRY=path.json cargo bench` works for every bench.
/// Failures warn on stderr; they never fail the bench run.
pub fn dump_telemetry() {
    for (kind, path) in bso_telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
}

/// A harness configuration tuned so the whole workspace bench suite
/// completes in minutes: the experiments compare *shapes* across
/// parameters, which modest sample counts resolve fine.
pub fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1500))
        .sample_size(10)
}

/// Throughput annotation for a benchmark: how many elements one
/// iteration processes.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark's identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// One measured sample series for a benchmark.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full benchmark path (`group/id`).
    pub name: String,
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample's time per iteration.
    pub min: Duration,
    /// Slowest sample's time per iteration.
    pub max: Duration,
    /// Declared per-iteration element throughput, if any.
    pub elements: Option<u64>,
}

impl Measurement {
    /// Elements per second at the median, if a throughput was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 / self.median.as_secs_f64())
    }
}

/// The top-level harness: holds timing configuration and collects
/// measurements.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 20,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Sets the total time budget for the measured samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    /// Sets how many samples to take within the measurement budget.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Benchmarks a single standalone function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            samples: Vec::new(),
            plan: Some(Plan {
                warm_up: self.warm_up,
                measurement: self.measurement,
                sample_size: self.sample_size,
            }),
        };
        f(&mut b);
        let m = summarize(&name, &b.samples, None, self);
        report(&m);
        self.measurements.push(m);
        self
    }

    /// All measurements recorded so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        // The bencher's `iter` performs the actual warm-up + sampling
        // using the configuration captured here.
        let mut b = Bencher {
            samples: Vec::new(),
            plan: Some(Plan {
                warm_up: self.c.warm_up,
                measurement: self.c.measurement,
                sample_size: self.sample_size.unwrap_or(self.c.sample_size),
            }),
        };
        f(&mut b, input);
        let elements = self.throughput.map(|Throughput::Elements(e)| e);
        let m = summarize(&name, &b.samples, elements, self.c);
        report(&m);
        self.c.measurements.push(m);
        self
    }

    /// Runs one benchmark without a distinguishing input.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| f(b))
    }

    /// Ends the group (kept for API parity; measurements are recorded
    /// eagerly).
    pub fn finish(self) {}
}

#[derive(Clone, Copy)]
struct Plan {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    plan: Option<Plan>,
}

impl Bencher {
    /// Measures `f`, recording per-iteration times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let plan = self.plan.unwrap_or(Plan {
            warm_up: Duration::from_millis(400),
            measurement: Duration::from_millis(1500),
            sample_size: 10,
        });
        // Warm-up: run until the budget elapses, estimating cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < plan.warm_up || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size samples so all of them fit the measurement budget.
        let budget = plan.measurement.as_secs_f64() / plan.sample_size as f64;
        let iters_per_sample = ((budget / est.max(1e-9)) as u64).max(1);
        for _ in 0..plan.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }
}

fn summarize(
    name: &str,
    samples: &[Duration],
    elements: Option<u64>,
    _c: &Criterion,
) -> Measurement {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = if sorted.is_empty() {
        Duration::ZERO
    } else {
        sorted[sorted.len() / 2]
    };
    Measurement {
        name: name.to_string(),
        median,
        min: sorted.first().copied().unwrap_or(Duration::ZERO),
        max: sorted.last().copied().unwrap_or(Duration::ZERO),
        elements,
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(m: &Measurement) {
    match m.elements_per_sec() {
        Some(eps) => println!(
            "{:<44} time: [{} .. {} .. {}]  thrpt: {:.3} Kelem/s",
            m.name,
            fmt_duration(m.min),
            fmt_duration(m.median),
            fmt_duration(m.max),
            eps / 1e3,
        ),
        None => println!(
            "{:<44} time: [{} .. {} .. {}]",
            m.name,
            fmt_duration(m.min),
            fmt_duration(m.median),
            fmt_duration(m.max),
        ),
    }
}

/// Declares a group of benchmark functions and the configuration they
/// run under, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro of
/// the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::dump_telemetry();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3);
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(1), &1u32, |b, &x| {
            b.iter(|| (0..100u32).map(|i| i.wrapping_mul(x)).sum::<u32>())
        });
        g.finish();
        c.bench_function("smoke_fn", |b| b.iter(|| 2 + 2));
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements()[0].median > Duration::ZERO);
        assert_eq!(c.measurements()[0].elements, Some(100));
        assert!(c.measurements()[0].elements_per_sec().unwrap() > 0.0);
        assert!(c.measurements()[1].elements.is_none());
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
        assert_eq!(BenchmarkId::new("uncontended", 7).id, "uncontended/7");
    }
}
