//! Criterion benchmark harness for the `bso` workspace.
//!
//! Each bench file under `benches/` regenerates one experiment's
//! performance series (see EXPERIMENTS.md): election cost across
//! `(n, k)`, hardware vs model compare&swap throughput, snapshot scan
//! cost, the Lemma 1.1 game search, the exhaustive model checker, and
//! the emulation of Theorem 1.
//!
//! The library itself only hosts tiny shared helpers.

#![forbid(unsafe_code)]

use bso::sim::{scheduler::RandomSched, Protocol, ProtocolExt, RunResult, Simulation};

/// Runs one seeded simulation of `proto` to quiescence and returns the
/// result (panics on protocol errors — benches must be green).
pub fn run_once<P: Protocol>(proto: &P, seed: u64) -> RunResult {
    let mut sim = Simulation::new(proto, &proto.pid_inputs());
    sim.run(&mut RandomSched::new(seed), 50_000_000).expect("benched run must complete")
}

/// A criterion configuration tuned so the whole workspace bench suite
/// completes in minutes: the experiments compare *shapes* across
/// parameters, which modest sample counts resolve fine.
pub fn quick() -> criterion::Criterion {
    criterion::Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10)
}
