//! `bso-faultplan/v1`: deterministic fault plans and the in-process
//! chaos proxy that applies them.
//!
//! A [`FaultPlan`] is a pure function from `(seed, connection index,
//! direction)` to a finite, sorted list of [`Fault`]s triggered at
//! cumulative **byte offsets** of that connection's stream. Keying on
//! byte offsets rather than wall-clock or packet boundaries makes the
//! schedule independent of TCP chunking: however the kernel slices
//! the stream, fault *n* of connection *c* under seed *s* always lands
//! between the same two protocol bytes. Re-running a chaos experiment
//! with the same seed replays the same fault schedule — that is the
//! whole point.
//!
//! The [`ChaosProxy`] sits between real clients and a real
//! `bso-server` on loopback, forwarding bytes and injecting the plan:
//! connection resets, stalls, truncated writes (a partial frame
//! followed by a sever), response-byte corruption, and delayed
//! delivery. Scripts are finite, so every connection eventually runs
//! clean and well-behaved retrying clients always make progress.
//!
//! Used by `loadgen --chaos` (see the acceptance contract in
//! DESIGN.md §3.14) and the client crate's churn tests.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bso::objects::rng::SplitMix64;

/// Schema identifier for the plan, printed by harnesses so a run can
/// be tied back to its generator version.
pub const SCHEMA: &str = "bso-faultplan/v1";

/// One scheduled fault, triggered when the connection's cumulative
/// forwarded byte count in the scripted direction reaches `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Sever both directions at the offset, forwarding nothing more —
    /// a connection reset. Terminal for the script.
    Reset {
        /// Trigger offset in cumulative forwarded bytes.
        at: u64,
    },
    /// Forward everything up to and including the offset — typically
    /// mid-frame — then sever: a truncated write. Terminal.
    Truncate {
        /// Trigger offset in cumulative forwarded bytes.
        at: u64,
    },
    /// Pause forwarding for `ms` milliseconds at the offset, then
    /// continue — a stall long enough to trip aggressive deadlines but
    /// shorter than a client's read timeout.
    Stall {
        /// Trigger offset in cumulative forwarded bytes.
        at: u64,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// XOR the byte at the offset with `mask` (never zero, so the byte
    /// really changes) and keep forwarding — payload corruption the
    /// decoder on the receiving side must refuse in a typed way.
    Corrupt {
        /// Offset of the byte to flip.
        at: u64,
        /// Non-zero XOR mask applied to that byte.
        mask: u8,
    },
    /// Hold the chunk containing the offset for `ms` milliseconds
    /// before delivering it intact — delayed delivery.
    Delay {
        /// Trigger offset in cumulative forwarded bytes.
        at: u64,
        /// Added delivery delay in milliseconds.
        ms: u64,
    },
}

impl Fault {
    /// The cumulative byte offset at which the fault triggers.
    pub fn at(&self) -> u64 {
        match *self {
            Fault::Reset { at }
            | Fault::Truncate { at }
            | Fault::Stall { at, .. }
            | Fault::Corrupt { at, .. }
            | Fault::Delay { at, .. } => at,
        }
    }

    /// Whether the fault ends the connection (nothing after it in a
    /// script can trigger).
    pub fn terminal(&self) -> bool {
        matches!(self, Fault::Reset { .. } | Fault::Truncate { .. })
    }

    fn mix(&self, h: u64) -> u64 {
        let (tag, at, arg) = match *self {
            Fault::Reset { at } => (1u64, at, 0u64),
            Fault::Truncate { at } => (2, at, 0),
            Fault::Stall { at, ms } => (3, at, ms),
            Fault::Corrupt { at, mask } => (4, at, u64::from(mask)),
            Fault::Delay { at, ms } => (5, at, ms),
        };
        let mut x = h ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = x.rotate_left(23) ^ at.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x.rotate_left(17) ^ arg.wrapping_mul(0x94D0_49BB_1331_11EB)
    }
}

/// Which half of a proxied connection a script drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client-to-server bytes (requests).
    ClientToServer,
    /// Server-to-client bytes (responses).
    ServerToClient,
}

/// A seeded generator of per-connection fault scripts.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// A plan from a seed. Equal seeds generate byte-identical
    /// schedules forever.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault script for connection `conn` in `dir`, sorted by
    /// trigger offset, with at most one terminal fault (last).
    ///
    /// Request streams draw resets, truncations, and stalls; response
    /// streams draw corruption, delays, and resets. Offsets start past
    /// the handshake bytes (~64) so `Hello`/`Resume` complete — faults
    /// land on operation traffic, which is what retry logic must
    /// survive. Roughly 30% of request scripts are entirely clean, so
    /// churn never becomes a livelock: a retried op eventually rides a
    /// clean connection.
    pub fn script(&self, conn: u64, dir: Direction) -> Vec<Fault> {
        let dir_salt = match dir {
            Direction::ClientToServer => 0x0C25,
            Direction::ServerToClient => 0x52C0,
        };
        let mut rng =
            SplitMix64::new(self.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dir_salt);
        let mut faults = Vec::new();
        let mut at = 64 + rng.below(512);
        match dir {
            Direction::ClientToServer => {
                // 0–2 transient stalls, then (70%) a terminal sever.
                for _ in 0..rng.below(3) {
                    at += 256 + rng.below(4_096);
                    faults.push(Fault::Stall {
                        at,
                        ms: 2 + rng.below(20),
                    });
                }
                if rng.below(10) < 7 {
                    at += 1_024 + rng.below(16_384);
                    if rng.bool() {
                        faults.push(Fault::Reset { at });
                    } else {
                        faults.push(Fault::Truncate { at });
                    }
                }
            }
            Direction::ServerToClient => {
                for _ in 0..rng.below(3) {
                    at += 512 + rng.below(8_192);
                    match rng.below(3) {
                        0 => faults.push(Fault::Corrupt {
                            at,
                            mask: rng.range_u8(1, 255),
                        }),
                        1 => faults.push(Fault::Delay {
                            at,
                            ms: 1 + rng.below(10),
                        }),
                        _ => faults.push(Fault::Stall {
                            at,
                            ms: 2 + rng.below(15),
                        }),
                    }
                }
                if rng.below(10) < 2 {
                    at += 2_048 + rng.below(16_384);
                    faults.push(Fault::Reset { at });
                }
            }
        }
        faults
    }

    /// A stable digest of the first `conns` connections' scripts (both
    /// directions). Two runs printing the same fingerprint injected
    /// the same fault schedule — the replayability check harnesses
    /// print alongside their results.
    pub fn fingerprint(&self, conns: u64) -> u64 {
        let mut h = self.seed ^ 0xFA17_0001;
        for conn in 0..conns {
            for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                for f in self.script(conn, dir) {
                    h = f.mix(h);
                }
            }
        }
        h
    }
}

/// An in-process TCP proxy applying a [`FaultPlan`] between clients
/// and one upstream server. Connections are numbered in accept order;
/// dropping the proxy stops accepting (existing pairs die with their
/// sockets).
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts proxying to
    /// `upstream` under `plan`.
    ///
    /// # Errors
    ///
    /// Socket errors from binding the listener.
    pub fn spawn(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let stop2 = Arc::clone(&stop);
        let accepted2 = Arc::clone(&accepted);
        std::thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || {
                for inbound in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(client) = inbound else { break };
                    let conn = accepted2.fetch_add(1, Ordering::Relaxed);
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let c2 = match client.try_clone() {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                    let s2 = match server.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let req_script = plan.script(conn, Direction::ClientToServer);
                    let resp_script = plan.script(conn, Direction::ServerToClient);
                    std::thread::spawn(move || forward(client, server, req_script));
                    std::thread::spawn(move || forward(s2, c2, resp_script));
                }
            })
            .expect("spawn chaos accept loop");
        Ok(ChaosProxy {
            addr,
            stop,
            accepted,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far (also the next connection's script
    /// index).
    pub fn connections(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Pumps `from` into `to`, applying `script` at cumulative byte
/// offsets. Runs until either side closes or a terminal fault fires.
fn forward(mut from: TcpStream, mut to: TcpStream, script: Vec<Fault>) {
    let mut pending = script.into_iter().peekable();
    // Absolute stream offset of the first undelivered byte.
    let mut offset: u64 = 0;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        // First undelivered byte within `chunk`.
        let mut start = 0usize;
        // Apply every fault whose trigger lands inside this chunk, in
        // offset order, delivering around each trigger.
        while let Some(&f) = pending.peek() {
            let remaining = (chunk.len() - start) as u64;
            if f.at() >= offset + remaining {
                break;
            }
            let split = start + (f.at() - offset) as usize;
            match f {
                Fault::Reset { .. } => {
                    // Deliver up to the trigger, then sever hard.
                    let _ = to.write_all(&chunk[start..split]);
                    sever(&from, &to);
                    return;
                }
                Fault::Truncate { .. } => {
                    // Deliver one byte past the trigger — a partial
                    // frame on the receiver — then sever.
                    let keep = (split + 1).min(chunk.len());
                    let _ = to.write_all(&chunk[start..keep]);
                    sever(&from, &to);
                    return;
                }
                Fault::Stall { ms, .. } => {
                    if to.write_all(&chunk[start..split]).is_err() {
                        sever(&from, &to);
                        return;
                    }
                    offset += (split - start) as u64;
                    start = split;
                    std::thread::sleep(Duration::from_millis(ms));
                    pending.next();
                }
                Fault::Corrupt { mask, .. } => {
                    chunk[split] ^= mask;
                    pending.next();
                }
                Fault::Delay { ms, .. } => {
                    std::thread::sleep(Duration::from_millis(ms));
                    pending.next();
                }
            }
        }
        if to.write_all(&chunk[start..]).is_err() {
            break;
        }
        offset += (chunk.len() - start) as u64;
    }
    sever(&from, &to);
}

fn sever(from: &TcpStream, to: &TcpStream) {
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(0xBEEF);
        let b = FaultPlan::new(0xBEEF);
        for conn in 0..32 {
            for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                assert_eq!(a.script(conn, dir), b.script(conn, dir));
            }
        }
        assert_eq!(a.fingerprint(64), b.fingerprint(64));
    }

    #[test]
    fn different_seeds_differ_and_scripts_are_well_formed() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        assert_ne!(a.fingerprint(64), b.fingerprint(64));
        let mut total_faults = 0usize;
        for conn in 0..64 {
            for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                let script = a.script(conn, dir);
                total_faults += script.len();
                // Sorted triggers, terminal faults only in last place.
                for w in script.windows(2) {
                    assert!(w[0].at() <= w[1].at());
                    assert!(!w[0].terminal(), "terminal fault mid-script");
                }
                // Nothing fires inside the handshake bytes.
                if let Some(first) = script.first() {
                    assert!(first.at() >= 64);
                }
            }
        }
        assert!(total_faults > 32, "a 64-connection plan should be eventful");
    }

    #[test]
    fn clean_scripts_exist_so_retries_converge() {
        let plan = FaultPlan::new(0x5AFE);
        let clean = (0..100)
            .filter(|&c| {
                !plan
                    .script(c, Direction::ClientToServer)
                    .iter()
                    .any(Fault::terminal)
            })
            .count();
        assert!(
            clean >= 10,
            "only {clean}/100 request scripts are sever-free"
        );
    }

    #[test]
    fn proxy_passes_bytes_through_clean_connections() {
        // An upstream echo server.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        // Find a connection index whose scripts are fault-free under
        // this seed, and burn the earlier indices on throwaway
        // connections so the echo check rides the clean one.
        let plan = FaultPlan::new(0x0_EC0);
        let proxy = ChaosProxy::spawn(upstream, plan).unwrap();
        let clean = (0..200)
            .find(|&c| {
                plan.script(c, Direction::ClientToServer).is_empty()
                    && plan.script(c, Direction::ServerToClient).is_empty()
            })
            .expect("some connection is fault-free");
        let mut keep_alive = Vec::new();
        for _ in 0..clean {
            keep_alive.push(TcpStream::connect(proxy.addr()).unwrap());
        }
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        let msg = b"exactly once, please";
        s.write_all(msg).unwrap();
        let mut got = [0u8; 20];
        s.read_exact(&mut got).unwrap();
        assert_eq!(&got, msg);
        assert_eq!(proxy.connections(), clean + 1);
    }
}
