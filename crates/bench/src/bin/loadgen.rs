//! `loadgen` — load generator for the `bso-wire/v2` shared-object
//! service, built on the event-driven client [`Swarm`].
//!
//! Starts an in-process `bso-server` on an ephemeral loopback port and
//! drives it with hundreds-to-thousands of concurrent connections
//! multiplexed on one client thread.
//!
//! Two modes:
//!
//! * **`--smoke`** (CI): a short recorded run over a few pipelined
//!   [`Connection`]s. Every successful operation is logged through the
//!   shared [`HistoryRecorder`] clock and the whole history must pass
//!   the Wing–Gong linearizability checker; the election round must
//!   agree across threads; a swarm ledger pass must balance; shutdown
//!   must drain (requests == responses). Exit code 0 is the contract.
//! * **default**: a timed throughput run writing `BENCH_serve.json`
//!   (`bso-serve-bench/v2`) at the workspace root. First a closed-loop
//!   swarm measures peak throughput, then an open-loop ladder offers
//!   fixed fractions of that peak and reports the latency-under-load
//!   curve (p50/p99/p999 vs offered rate), with round trips timed from
//!   each op's *scheduled* arrival so queueing delay is charged to the
//!   distribution rather than hidden (no coordinated omission).
//!
//! ```text
//! loadgen [--smoke] [--conns N] [--pipeline N] [--ops N] [--k K]
//!         [--shards N] [--queue N] [--threads N] [--curve-points N]
//!         [--backend auto|epoll|poll]
//! ```
//!
//! Exactly one latency sample is recorded per successful op — the
//! emitted `latency.count` always equals `ops_ok`, and
//! `validate_telemetry --serve` re-checks that invariant on the file.
//!
//! `BSO_TELEMETRY=path.json` additionally dumps the `server.*`
//! counters, queue-depth gauges, and latency histograms (validated in
//! CI by `validate_telemetry --serve`). `BSO_TRACE=path.json` turns
//! the swarm's ops into `TracedApply` frames and exports their
//! `client.apply` spans — inject a server-side sink (or scrape the
//! flight recorder) and join the two with `trace_merge` to see both
//! halves of each request on one timeline.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bso::client::{
    ClientError, Connection, HistoryRecorder, ResilientClient, RetryPolicy, Swarm, SwarmReport,
};
use bso::cluster::{Cluster, ClusterClient};
use bso::objects::rng::SplitMix64;
use bso::objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso::server::poll::PollBackend;
use bso::server::{ErrorCode, Server, ServerHandle, ServerStats};
use bso_bench::chaos::{ChaosProxy, FaultPlan};
use bso_telemetry::json::{self, Json};
use bso_telemetry::trace::TraceSink;
use bso_telemetry::Registry;

/// Everything a run is parameterized by.
struct Config {
    smoke: bool,
    conns: usize,
    pipeline: usize,
    ops: u64,
    k: u8,
    shards: usize,
    queue_capacity: usize,
    threads: usize,
    curve_points: usize,
    backend: PollBackend,
    chaos: bool,
    chaos_seed: u64,
    /// `> 0` switches to the cluster bench: that many sharded members
    /// under one routing table, with a live migration mid-run.
    cluster: usize,
}

impl Config {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Config, String> {
        fn num(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{flag}: {e}"))
        }
        let mut cfg = Config {
            smoke: false,
            conns: 200,
            pipeline: 64,
            ops: 300_000,
            k: 6,
            shards: 0, // 0 = one per CPU (the server's own default)
            queue_capacity: 128,
            threads: 4,
            curve_points: 7,
            backend: PollBackend::Auto,
            chaos: false,
            chaos_seed: 0xFA17,
            cluster: 0,
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    cfg.smoke = true;
                    cfg.conns = 64;
                    cfg.ops = 8_000;
                }
                "--conns" => cfg.conns = num(&mut args, &arg)?.max(1),
                "--pipeline" => cfg.pipeline = num(&mut args, &arg)?.max(1),
                "--ops" => cfg.ops = num(&mut args, &arg)?.max(1) as u64,
                "--k" => {
                    cfg.k = u8::try_from(num(&mut args, &arg)?)
                        .ok()
                        .filter(|k| (3..=255).contains(k))
                        .ok_or("--k must be in 3..=255")?
                }
                "--shards" => cfg.shards = num(&mut args, &arg)?,
                "--queue" => cfg.queue_capacity = num(&mut args, &arg)?.max(1),
                "--threads" => cfg.threads = num(&mut args, &arg)?.max(1),
                "--curve-points" => cfg.curve_points = num(&mut args, &arg)?.clamp(1, CURVE.len()),
                "--backend" => {
                    let v = args.next().ok_or("--backend needs a value")?;
                    cfg.backend =
                        PollBackend::parse(&v).ok_or(format!("--backend: unknown {v:?}"))?;
                }
                "--chaos" => cfg.chaos = true,
                "--chaos-seed" => cfg.chaos_seed = num(&mut args, &arg)? as u64,
                "--cluster" => {
                    cfg.cluster = num(&mut args, &arg)?;
                    if cfg.cluster < 2 {
                        return Err("--cluster needs at least 2 members".into());
                    }
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument {other}\n{USAGE}")),
            }
        }
        Ok(cfg)
    }

    /// The served universe: one CAS-(k), a contended counter, a
    /// snapshot, and a pool of registers the traffic spreads over.
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: self.k as usize });
        l.push(ObjectInit::FetchAdd(0));
        l.push(ObjectInit::Snapshot {
            slots: self.threads,
        });
        for _ in 0..REGISTERS {
            l.push(ObjectInit::Register(Value::Nil));
        }
        l
    }

    fn serve(&self, registry: &Registry) -> Result<ServerHandle, String> {
        let mut builder = Server::builder()
            .queue_capacity(self.queue_capacity)
            .backend(self.backend)
            .registry(registry.clone());
        if self.shards > 0 {
            builder = builder.shards(self.shards);
        }
        builder
            .bind("127.0.0.1:0", &self.layout())
            .map_err(|e| format!("bind: {e}"))
    }
}

const USAGE: &str = "usage: loadgen [--smoke] [--chaos] [--chaos-seed N] [--cluster N] \
[--conns N] [--pipeline N] [--ops N] [--k K] [--shards N] [--queue N] [--threads N] \
[--curve-points N] [--backend auto|epoll|poll]";

const CAS: ObjectId = ObjectId(0);
const CTR: ObjectId = ObjectId(1);
const SNAP: ObjectId = ObjectId(2);
const REGISTERS: usize = 64;

/// Offered-load fractions of measured peak for the latency ladder; the
/// last point deliberately overdrives the server to show saturation.
const CURVE: [f64; 7] = [0.2, 0.4, 0.6, 0.8, 0.9, 1.0, 1.2];

fn register_of(i: usize) -> ObjectId {
    ObjectId(3 + (i % REGISTERS))
}

/// The swarm's traffic mix, deterministic in the global op sequence
/// number (no snapshots: their scan payloads would measure value
/// shipping, not serving).
fn mixed_op(rng: &mut SplitMix64, k: u8, seq: u64) -> Op {
    match rng.usize_below(10) {
        0..=2 => Op::cas(
            CAS,
            Value::Sym(Sym::BOTTOM),
            Value::Sym(Sym::new(rng.range_u8(0, k - 2))),
        ),
        3 => Op::cas(
            CAS,
            Value::Sym(Sym::new(rng.range_u8(0, k - 2))),
            Value::Sym(Sym::BOTTOM),
        ),
        4..=5 => Op::new(CTR, OpKind::FetchAdd(1)),
        6 => Op::read(CAS),
        7..=8 => Op::read(register_of(rng.usize_below(REGISTERS))),
        _ => Op::write(
            register_of(rng.usize_below(REGISTERS)),
            Value::Int(seq as i64),
        ),
    }
}

/// One closed- or open-loop swarm pass of `ops` operations.
fn swarm_pass(
    cfg: &Config,
    addr: std::net::SocketAddr,
    ops: u64,
    rate: Option<f64>,
    seed: u64,
) -> Result<SwarmReport, String> {
    let mut rng = SplitMix64::new(seed);
    Swarm::builder()
        .connections(cfg.conns)
        .pipeline(cfg.pipeline)
        .backend(cfg.backend)
        .rate(rate)
        // Inert unless `BSO_TRACE` is set; then every op crosses the
        // wire as a `TracedApply` and lands a `client.apply` span.
        .trace(TraceSink::global().worker("loadgen-swarm"))
        .run(addr, |_conn, seq| {
            (seq < ops).then(|| (0usize, mixed_op(&mut rng, cfg.k, seq)))
        })
        .map_err(|e| format!("swarm: {e}"))
}

/// Sorted-sample quantile: the ladder and the peak report both read
/// percentiles straight off the raw per-op samples.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct CurvePoint {
    offered: f64,
    achieved: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    count: u64,
}

/// One election session, every participant on its own connection; all
/// must agree on the leader.
fn election_round(cfg: &Config, addr: std::net::SocketAddr) -> Result<Vec<usize>, String> {
    let participants = cfg.threads.min(cfg.k as usize - 1);
    let session = Connection::builder()
        .connect(addr)
        .and_then(|mut c| c.open_election(cfg.k as u32))
        .map_err(|e| format!("open election: {e}"))?;
    let winners: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..participants)
            .map(|pid| {
                s.spawn(move || {
                    Connection::builder()
                        .connect(addr)?
                        .elect(session, pid as u32)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("elector thread panicked"))
            .collect::<Result<_, ClientError>>()
    })
    .map_err(|e| format!("election: {e}"))?;
    if winners.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!("election disagreement: {winners:?}"));
    }
    Ok(winners)
}

/// The smoke contract: recorded linearizable history over pipelined
/// connections, an agreeing election, and a balanced swarm ledger.
fn run_smoke(cfg: &Config, registry: &Registry) -> Result<(), String> {
    let layout = cfg.layout();
    let handle = cfg.serve(registry)?;
    let addr = handle.local_addr();
    let recorder = Arc::new(HistoryRecorder::new());
    let ops_per_thread = 400usize;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|pid| {
                let rec = Arc::clone(&recorder);
                let latency = registry.histogram("client.rtt_ns");
                s.spawn(move || -> Result<(), ClientError> {
                    let mut conn = Connection::builder()
                        .recorder(rec)
                        .latency_histogram(latency)
                        .connect(addr)?;
                    let mut rng = SplitMix64::new(0x10AD_0000 + pid as u64);
                    for i in 0..ops_per_thread {
                        let op = match rng.usize_below(10) {
                            0..=6 => mixed_op(&mut rng, cfg.k, i as u64),
                            _ => {
                                if rng.usize_below(4) == 0 {
                                    Op::new(SNAP, OpKind::SnapshotScan)
                                } else {
                                    Op::new(SNAP, OpKind::SnapshotUpdate(Value::Int(i as i64)))
                                }
                            }
                        };
                        conn.apply(pid, op)?;
                    }
                    // A pipelined fetch&add burst: overlapping recorded
                    // intervals exercise the checker's concurrency
                    // handling, unique responses keep it linear.
                    let ids: Vec<u64> = (0..8)
                        .map(|_| conn.send(pid, Op::new(CTR, OpKind::FetchAdd(1))))
                        .collect::<Result<_, _>>()?;
                    for id in ids {
                        match conn.wait(id)? {
                            bso::server::Response::Ok(_) => {}
                            other => {
                                return Err(ClientError::Protocol(format!("unexpected {other:?}")))
                            }
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .try_for_each(|h| h.join().expect("client thread panicked"))
    })
    .map_err(|e| format!("client error: {e}"))?;

    let log = recorder.take_log();
    bso::sim::check_history(&layout, &log).map_err(|e| format!("NOT LINEARIZABLE\n{e}"))?;
    println!(
        "smoke: recorded history of {} ops is linearizable ✓",
        log.len()
    );
    let tail: Vec<_> = log.iter().rev().take(12).rev().cloned().collect();
    print!("{}", bso::sim::viz::history_timeline(&tail, cfg.threads));

    let winners = election_round(cfg, addr)?;
    println!(
        "election: {} participants all chose p{}",
        winners.len(),
        winners[0]
    );

    // Swarm ledger pass over the event-driven path.
    let report = swarm_pass(cfg, addr, cfg.ops, None, 0x5AFE)?;
    if report.ops_total() != cfg.ops || report.ops_err != 0 {
        return Err(format!(
            "swarm ledger: {} ok + {} busy + {} err of {} issued",
            report.ops_ok, report.ops_busy, report.ops_err, cfg.ops
        ));
    }
    if report.rtt_ns.len() as u64 != report.ops_ok {
        return Err(format!(
            "swarm recorded {} latency samples for {} successes",
            report.rtt_ns.len(),
            report.ops_ok
        ));
    }
    let rtt = registry.histogram("client.rtt_ns");
    for &v in &report.rtt_ns {
        rtt.record(v);
    }
    println!(
        "smoke: swarm of {} conns ({} backend): {} ok + {} busy at {:.0} ops/s ✓",
        cfg.conns,
        cfg.backend,
        report.ops_ok,
        report.ops_busy,
        report.ops_per_sec(),
    );

    let stats = handle.shutdown();
    check_drained(&stats)
}

/// Reads the contended counter's current value straight off the
/// server (not through any proxy) — the exactness ledger.
fn read_counter(addr: std::net::SocketAddr) -> Result<i64, String> {
    Connection::builder()
        .connect(addr)
        .and_then(|mut c| c.apply(0, Op::new(CTR, OpKind::FetchAdd(0))))
        .map_err(|e| format!("ledger read: {e}"))?
        .as_int()
        .ok_or_else(|| "ledger read returned a non-integer".into())
}

/// The chaos contract (DESIGN.md §3.14): a seeded `bso-faultplan/v1`
/// proxy injects resets, truncations, stalls, corruption, and delays
/// between resilient clients and the server, and the run must still
/// deliver every effect exactly once — the FetchAdd ledger balances to
/// the acked increments, the recorded history passes the Wing–Gong
/// checker, elections agree, zero-budget ops shed with typed
/// `Expired`, and the fault schedule is replayable from the seed
/// (printed as the plan fingerprint).
fn run_chaos(cfg: &Config, registry: &Registry) -> Result<(), String> {
    let layout = cfg.layout();
    let handle = cfg.serve(registry)?;
    let plan = FaultPlan::new(cfg.chaos_seed);
    println!(
        "chaos: {} seed {:#x} fingerprint {:#018x}",
        bso_bench::chaos::SCHEMA,
        plan.seed(),
        plan.fingerprint(64),
    );
    let proxy = ChaosProxy::spawn(handle.local_addr(), plan).map_err(|e| format!("proxy: {e}"))?;
    let paddr = proxy.addr();
    let policy = RetryPolicy {
        max_attempts: 40,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(20),
        read_timeout: Some(Duration::from_secs(5)),
    };

    // Phase 1: recorded resilient clients, one per thread. Every 251st
    // op is a zero-budget DeadlineApply that MUST shed; everything
    // else is the usual mix, with CTR increments tallied for the
    // ledger.
    let total_ops = cfg.ops.max(10_000);
    let per_thread = (total_ops / 2) / cfg.threads as u64;
    let recorder = Arc::new(HistoryRecorder::new());
    let increments = Arc::new(AtomicU64::new(0));
    let sheds = Arc::new(AtomicU64::new(0));
    let ctr_start = read_counter(handle.local_addr())?;
    let (mut reconnects, mut retries) = (0u64, 0u64);
    let outcomes = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|pid| {
                let rec = Arc::clone(&recorder);
                let incr = Arc::clone(&increments);
                let shed = Arc::clone(&sheds);
                let policy = policy.clone();
                s.spawn(move || -> Result<(u64, u64), ClientError> {
                    let mut client = ResilientClient::builder()
                        .token(cfg.chaos_seed.wrapping_mul(0x0001_0001) + pid as u64)
                        .seed(cfg.chaos_seed ^ pid as u64)
                        .policy(policy)
                        .recorder(rec)
                        .connect(paddr)?;
                    let mut rng = SplitMix64::new(cfg.chaos_seed ^ (0x00C1_1E00 + pid as u64));
                    for i in 0..per_thread {
                        if i % 251 == 250 {
                            let reg = register_of(rng.usize_below(REGISTERS));
                            match client.apply_within(
                                pid,
                                Op::write(reg, Value::Int(-1)),
                                Duration::ZERO,
                            ) {
                                Err(e) if e.code() == Some(ErrorCode::Expired) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(_) => {
                                    return Err(ClientError::Protocol(
                                        "zero-budget op applied instead of shedding".into(),
                                    ))
                                }
                                Err(e) => return Err(e),
                            }
                            continue;
                        }
                        let op = mixed_op(&mut rng, cfg.k, i);
                        let is_incr = op.obj == CTR && matches!(op.kind, OpKind::FetchAdd(1));
                        client.apply(pid, op)?;
                        if is_incr {
                            incr.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Ok((client.reconnects(), client.retries()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client thread panicked"))
            .collect::<Result<Vec<_>, ClientError>>()
    })
    .map_err(|e| format!("chaos client: {e}"))?;
    for (r, t) in outcomes {
        reconnects += r;
        retries += t;
    }
    let ctr_after_clients = read_counter(handle.local_addr())?;
    let acked = increments.load(Ordering::Relaxed);
    if (ctr_after_clients - ctr_start) != acked as i64 {
        return Err(format!(
            "LEDGER VIOLATION: counter moved {} for {} acked increments",
            ctr_after_clients - ctr_start,
            acked
        ));
    }
    let log = recorder.take_log();
    bso::sim::check_history(&layout, &log)
        .map_err(|e| format!("NOT LINEARIZABLE UNDER CHAOS\n{e}"))?;
    println!(
        "chaos: {} recorded ops linearizable, ledger exact at {} increments, \
         {} sheds typed Expired ✓",
        log.len(),
        acked,
        sheds.load(Ordering::Relaxed),
    );

    // Phase 2: a resilient swarm rides the same proxy; every issued op
    // must be acked exactly once despite the churn.
    let swarm_ops = total_ops - total_ops / 2;
    let mut rng = SplitMix64::new(cfg.chaos_seed ^ 0x5AFE);
    let mut swarm_incrs = 0u64;
    let report = Swarm::builder()
        .connections(cfg.conns.min(32))
        .pipeline(cfg.pipeline.min(16))
        .backend(cfg.backend)
        .resilient(true)
        .session_base(cfg.chaos_seed.wrapping_mul(0x0002_0003))
        .retry_seed(cfg.chaos_seed)
        .run(paddr, |_conn, seq| {
            (seq < swarm_ops).then(|| {
                let op = mixed_op(&mut rng, cfg.k, seq);
                if op.obj == CTR && matches!(op.kind, OpKind::FetchAdd(1)) {
                    swarm_incrs += 1;
                }
                (0usize, op)
            })
        })
        .map_err(|e| format!("chaos swarm: {e}"))?;
    if report.ops_ok != swarm_ops || report.ops_err != 0 || report.ops_busy != 0 {
        return Err(format!(
            "chaos swarm: {} ok + {} busy + {} err of {} issued",
            report.ops_ok, report.ops_busy, report.ops_err, swarm_ops
        ));
    }
    if report.rtt_ns.len() as u64 != report.ops_ok {
        return Err(format!(
            "chaos swarm recorded {} latency samples for {} successes",
            report.rtt_ns.len(),
            report.ops_ok
        ));
    }
    let ctr_after_swarm = read_counter(handle.local_addr())?;
    if (ctr_after_swarm - ctr_after_clients) != swarm_incrs as i64 {
        return Err(format!(
            "SWARM LEDGER VIOLATION: counter moved {} for {} issued increments",
            ctr_after_swarm - ctr_after_clients,
            swarm_incrs
        ));
    }
    println!(
        "chaos: swarm {} ok at {:.0} ops/s across {} reconnects, ledger exact ✓",
        report.ops_ok,
        report.ops_per_sec(),
        report.reconnects,
    );

    // Election through the chaos proxy: winners must still be unique.
    let participants = cfg.threads.min(cfg.k as usize - 1);
    let elect_base = cfg.chaos_seed.wrapping_mul(0x0003_0005);
    let session = ResilientClient::builder()
        .token(elect_base)
        .policy(policy.clone())
        .connect(paddr)
        .and_then(|mut c| c.open_election(cfg.k as u32))
        .map_err(|e| format!("chaos open election: {e}"))?;
    let winners: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..participants)
            .map(|pid| {
                let policy = policy.clone();
                s.spawn(move || {
                    ResilientClient::builder()
                        .token(elect_base + 1 + pid as u64)
                        .policy(policy)
                        .connect(paddr)?
                        .elect(session, pid as u32)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos elector panicked"))
            .collect::<Result<_, ClientError>>()
    })
    .map_err(|e| format!("chaos election: {e}"))?;
    if winners.windows(2).any(|w| w[0] != w[1]) {
        return Err(format!("election disagreement under chaos: {winners:?}"));
    }
    println!(
        "chaos: election of {} participants agreed on p{} ✓",
        winners.len(),
        winners[0]
    );

    let total_reconnects = reconnects + report.reconnects;
    if total_reconnects < 5 {
        return Err(format!(
            "chaos was too gentle: only {total_reconnects} reconnects (need >= 5); \
             raise --ops or change --chaos-seed"
        ));
    }
    if sheds.load(Ordering::Relaxed) == 0 {
        return Err("no zero-budget op was shed".into());
    }

    drop(proxy);
    let stats = handle.shutdown();
    println!(
        "chaos: server saw {} requests / {} responses, {} resumes, {} replays, \
         {} shed, {} malformed; clients made {} reconnects and {} retries",
        stats.requests,
        stats.responses,
        stats.resumes,
        stats.replays,
        stats.shed,
        stats.malformed,
        total_reconnects,
        retries,
    );
    if stats.responses > stats.requests {
        return Err(format!(
            "server answered {} responses to {} requests",
            stats.responses, stats.requests
        ));
    }
    if stats.version_rejects != 0 {
        return Err(format!(
            "{} version rejects under chaos",
            stats.version_rejects
        ));
    }
    if stats.shed < sheds.load(Ordering::Relaxed) {
        return Err(format!(
            "server counted {} sheds, clients observed {}",
            stats.shed,
            sheds.load(Ordering::Relaxed)
        ));
    }
    if stats.resumes < cfg.threads as u64 + total_reconnects {
        return Err(format!(
            "server counted {} resumes for {} sessions + {} reconnects",
            stats.resumes, cfg.threads, total_reconnects
        ));
    }
    Ok(())
}

/// Peak measurement plus the offered-load ladder.
fn run_bench(cfg: &Config, registry: &Registry) -> Result<(String, f64), String> {
    let handle = cfg.serve(registry)?;
    let addr = handle.local_addr();

    let started = Instant::now();
    let peak = swarm_pass(cfg, addr, cfg.ops, None, 0xBE5C)?;
    let peak_elapsed = started.elapsed();
    if peak.rtt_ns.len() as u64 != peak.ops_ok {
        return Err(format!(
            "peak pass recorded {} latency samples for {} successes",
            peak.rtt_ns.len(),
            peak.ops_ok
        ));
    }
    let peak_rate = peak.ops_per_sec();
    println!(
        "peak ({} conns × pipeline {}): {} ok + {} busy in {:.1} ms ({:.0} ops/s)",
        cfg.conns,
        cfg.pipeline,
        peak.ops_ok,
        peak.ops_busy,
        peak_elapsed.as_secs_f64() * 1e3,
        peak_rate,
    );
    let rtt_hist = registry.histogram("client.rtt_ns");
    for &v in &peak.rtt_ns {
        rtt_hist.record(v);
    }
    let mut peak_sorted = peak.rtt_ns.clone();
    peak_sorted.sort_unstable();
    println!(
        "peak latency: p50 {:.1} us, p99 {:.1} us, p999 {:.1} us",
        quantile(&peak_sorted, 0.50) as f64 / 1e3,
        quantile(&peak_sorted, 0.99) as f64 / 1e3,
        quantile(&peak_sorted, 0.999) as f64 / 1e3,
    );

    // The ladder: fixed fractions of measured peak, about 400 ms of
    // offered traffic per point, latency timed from scheduled arrival.
    let mut curve = Vec::new();
    println!("offered_ops_s  achieved_ops_s    p50_us    p99_us   p999_us");
    for (i, frac) in CURVE.iter().take(cfg.curve_points).enumerate() {
        let offered = peak_rate * frac;
        let ops = ((offered * 0.4) as u64).clamp(2_000, cfg.ops);
        let report = swarm_pass(cfg, addr, ops, Some(offered), 0xC0DE + i as u64)?;
        if report.rtt_ns.len() as u64 != report.ops_ok {
            return Err(format!(
                "curve point {i} recorded {} latency samples for {} successes",
                report.rtt_ns.len(),
                report.ops_ok
            ));
        }
        let mut sorted = report.rtt_ns.clone();
        sorted.sort_unstable();
        let point = CurvePoint {
            offered,
            achieved: report.ops_per_sec(),
            p50_ns: quantile(&sorted, 0.50),
            p99_ns: quantile(&sorted, 0.99),
            p999_ns: quantile(&sorted, 0.999),
            count: report.ops_ok,
        };
        println!(
            "{:>13.0}  {:>14.0}  {:>8.1}  {:>8.1}  {:>8.1}",
            point.offered,
            point.achieved,
            point.p50_ns as f64 / 1e3,
            point.p99_ns as f64 / 1e3,
            point.p999_ns as f64 / 1e3,
        );
        curve.push(point);
    }

    let winners = election_round(cfg, addr)?;
    println!(
        "election: {} participants all chose p{}",
        winners.len(),
        winners[0]
    );

    let stats = handle.shutdown();
    check_drained(&stats)?;

    let json = emit_bench_json(cfg, &peak, peak_elapsed, &peak_sorted, &curve, &stats);
    Ok((json, peak_rate))
}

/// The server must have answered exactly what was asked — the swarm
/// passes, the election traffic, and nothing twice.
fn check_drained(stats: &ServerStats) -> Result<(), String> {
    if stats.requests != stats.responses {
        return Err(format!(
            "server answered {} of {} requests",
            stats.responses, stats.requests
        ));
    }
    if stats.malformed != 0 || stats.version_rejects != 0 {
        return Err(format!(
            "{} malformed frames, {} version rejects on a clean run",
            stats.malformed, stats.version_rejects
        ));
    }
    Ok(())
}

fn emit_bench_json(
    cfg: &Config,
    peak: &SwarmReport,
    peak_elapsed: std::time::Duration,
    peak_sorted: &[u64],
    curve: &[CurvePoint],
    stats: &ServerStats,
) -> String {
    let latency = Json::obj([
        ("p50_ns", Json::U64(quantile(peak_sorted, 0.50))),
        ("p90_ns", Json::U64(quantile(peak_sorted, 0.90))),
        ("p99_ns", Json::U64(quantile(peak_sorted, 0.99))),
        ("p999_ns", Json::U64(quantile(peak_sorted, 0.999))),
        (
            "min_ns",
            Json::U64(peak_sorted.first().copied().unwrap_or(0)),
        ),
        (
            "max_ns",
            Json::U64(peak_sorted.last().copied().unwrap_or(0)),
        ),
        ("count", Json::U64(peak_sorted.len() as u64)),
    ]);
    let curve_json: Vec<Json> = curve
        .iter()
        .map(|p| {
            Json::obj([
                ("offered_ops_per_sec", Json::F64(p.offered)),
                ("achieved_ops_per_sec", Json::F64(p.achieved)),
                ("p50_ns", Json::U64(p.p50_ns)),
                ("p99_ns", Json::U64(p.p99_ns)),
                ("p999_ns", Json::U64(p.p999_ns)),
                ("count", Json::U64(p.count)),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::Str("bso-serve-bench/v2".into())),
        (
            "config",
            Json::obj([
                ("conns", Json::U64(cfg.conns as u64)),
                ("pipeline", Json::U64(cfg.pipeline as u64)),
                ("ops", Json::U64(cfg.ops)),
                ("k", Json::U64(cfg.k as u64)),
                (
                    "shards",
                    Json::U64(if cfg.shards == 0 {
                        bso::server::poll::num_cpus() as u64
                    } else {
                        cfg.shards as u64
                    }),
                ),
                ("queue_capacity", Json::U64(cfg.queue_capacity as u64)),
                ("backend", Json::Str(cfg.backend.to_string())),
            ]),
        ),
        (
            "peak",
            Json::obj([
                ("ops_per_sec", Json::F64(peak.ops_per_sec())),
                ("ops_ok", Json::U64(peak.ops_ok)),
                ("ops_busy", Json::U64(peak.ops_busy)),
                ("elapsed_ms", Json::F64(peak_elapsed.as_secs_f64() * 1e3)),
                ("latency", latency),
            ]),
        ),
        ("curve", Json::Arr(curve_json)),
        (
            "server",
            Json::obj([
                ("connections", Json::U64(stats.connections)),
                ("requests", Json::U64(stats.requests)),
                ("responses", Json::U64(stats.responses)),
                ("busy", Json::U64(stats.busy)),
                ("malformed", Json::U64(stats.malformed)),
                ("version_rejects", Json::U64(stats.version_rejects)),
            ]),
        ),
    ])
    .render_pretty()
}

/// The cluster bench: `--cluster N` members under one routing table,
/// `--threads` routing-aware clients hammering FetchAdd counters while
/// the coordinator live-migrates two slices mid-run. Reports aggregate
/// throughput plus the redirect/failover traffic the migrations cost,
/// checks the ledgers exactly, and merges a `bso-cluster-bench/v1`
/// section into `BENCH_serve.json`.
fn run_cluster_bench(cfg: &Config) -> Result<(String, f64), String> {
    const COBJECTS: usize = 12;
    let mut layout = Layout::new();
    for _ in 0..COBJECTS {
        layout.push(ObjectInit::FetchAdd(0));
    }
    let mut cluster =
        Cluster::launch(cfg.cluster, &layout).map_err(|e| format!("cluster launch: {e}"))?;
    let seeds: Vec<String> = (0..cfg.cluster)
        .map(|i| cluster.addr(i).to_string())
        .collect();
    // Printed so a live `bsotop --cluster` can be pointed at the run.
    println!("cluster: members at {}", seeds.join(","));
    let epoch_initial = cluster.epoch();

    let per_thread = (cfg.ops / cfg.threads as u64).max(1);
    let total_ops = per_thread * cfg.threads as u64;
    let done = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let per_client = std::thread::scope(|s| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let seeds = seeds.clone();
                let done = Arc::clone(&done);
                s.spawn(move || -> Result<(u64, u64, Vec<i64>), String> {
                    let mut client = ClusterClient::connect(&seeds)
                        .map_err(|e| format!("cluster client {t}: {e}"))?;
                    let mut acked = vec![0i64; COBJECTS];
                    for seq in 0..per_thread {
                        let obj = (seq as usize + t) % COBJECTS;
                        client
                            .apply(t, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                            .map_err(|e| format!("cluster apply (client {t}): {e}"))?;
                        acked[obj] += 1;
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok((client.redirects(), client.failovers(), acked))
                })
            })
            .collect();
        // Coordinator: two live migrations, paced by traffic progress
        // so they always land mid-run.
        let mut migrations = 0u64;
        for (i, (from, to)) in [(0usize, 1usize), (1, 2)].into_iter().enumerate() {
            let gate = total_ops * (i as u64 + 1) / 3;
            while done.load(Ordering::Relaxed) < gate {
                std::thread::sleep(Duration::from_millis(1));
            }
            let ranges = cluster.owned_ranges(from);
            if !ranges.is_empty() {
                cluster
                    .migrate(from, to % cfg.cluster, &ranges)
                    .map_err(|e| format!("migration {from}->{to}: {e}"))?;
                migrations += 1;
            }
        }
        let outcomes = workers
            .into_iter()
            .map(|w| w.join().expect("cluster bench client panicked"))
            .collect::<Result<Vec<_>, String>>()?;
        Ok::<_, String>((outcomes, migrations))
    })?;
    let (outcomes, migrations) = per_client;
    let elapsed = started.elapsed();

    let mut redirects = 0u64;
    let mut failovers = 0u64;
    let mut acked = [0i64; COBJECTS];
    for (r, f, per_obj) in outcomes {
        redirects += r;
        failovers += f;
        for (a, v) in acked.iter_mut().zip(per_obj) {
            *a += v;
        }
    }
    // Exactness is part of the bench contract: every acked increment
    // landed exactly once, across both migrations.
    for (obj, &expect) in acked.iter().enumerate() {
        let got = cluster
            .admin(
                (0..cfg.cluster)
                    .find(|&i| {
                        cluster
                            .owned_ranges(i)
                            .iter()
                            .any(|&(lo, hi)| lo <= obj as u64 && obj as u64 <= hi)
                    })
                    .ok_or_else(|| format!("object {obj} has no owner"))?,
            )
            .and_then(|mut c| c.apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(0))))
            .map_err(|e| format!("ledger read {obj}: {e}"))?
            .as_int()
            .ok_or("non-integer ledger")?;
        if got != expect {
            return Err(format!(
                "CLUSTER LEDGER VIOLATION: object {obj} holds {got} for {expect} acked increments"
            ));
        }
    }
    let epoch_final = cluster.epoch();
    let rate = total_ops as f64 / elapsed.as_secs_f64();
    println!(
        "cluster: {} members, {} clients, {} ops at {:.0} ops/s; {} migrations \
         (epoch {} -> {}), {} redirects, {} failovers, ledgers exact ✓",
        cfg.cluster,
        cfg.threads,
        total_ops,
        rate,
        migrations,
        epoch_initial,
        epoch_final,
        redirects,
        failovers,
    );
    cluster.shutdown();

    let section = Json::obj([
        ("schema", Json::Str("bso-cluster-bench/v1".into())),
        ("members", Json::U64(cfg.cluster as u64)),
        ("threads", Json::U64(cfg.threads as u64)),
        ("objects", Json::U64(COBJECTS as u64)),
        ("ops", Json::U64(total_ops)),
        ("ops_per_sec", Json::F64(rate)),
        ("elapsed_ms", Json::F64(elapsed.as_secs_f64() * 1e3)),
        ("migrations", Json::U64(migrations)),
        ("epoch_initial", Json::U64(epoch_initial)),
        ("epoch_final", Json::U64(epoch_final)),
        ("redirects", Json::U64(redirects)),
        ("failovers", Json::U64(failovers)),
    ]);
    // Merge the section into the serve-bench artifact (replacing any
    // previous cluster section) rather than clobbering the file.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let merged = match std::fs::read_to_string(path) {
        Ok(text) => match json::parse(&text).map_err(|e| format!("{path}: {e}"))? {
            Json::Obj(mut pairs) => {
                pairs.retain(|(k, _)| k != "cluster");
                pairs.push(("cluster".into(), section));
                Json::Obj(pairs)
            }
            _ => return Err(format!("{path}: not a JSON object")),
        },
        Err(_) => Json::obj([
            ("schema", Json::Str("bso-serve-bench/v2".into())),
            ("cluster", section),
        ]),
    };
    Ok((merged.render_pretty(), rate))
}

fn main() -> ExitCode {
    let cfg = match Config::parse(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Prefer the global registry so `BSO_TELEMETRY=path.json` captures
    // the server metrics; fall back to a private live one so the
    // emitted latency quantiles are real either way.
    let registry = if Registry::global().is_enabled() {
        Registry::default()
    } else {
        Registry::enabled()
    };

    let outcome = if cfg.chaos {
        run_chaos(&cfg, &registry).map(|()| None)
    } else if cfg.cluster > 0 {
        run_cluster_bench(&cfg).map(Some)
    } else if cfg.smoke {
        run_smoke(&cfg, &registry).map(|()| None)
    } else {
        run_bench(&cfg, &registry).map(Some)
    };
    match outcome {
        Ok(None) => {}
        Ok(Some((json, _))) => {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("loadgen: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    }
    bso_bench::dump_telemetry();
    ExitCode::SUCCESS
}
