//! `loadgen` — mixed-traffic load generator for the `bso-wire/v1`
//! shared-object service.
//!
//! Starts an in-process `bso-server` on an ephemeral loopback port and
//! drives it with N client threads of mixed compare&swap-(k) /
//! register / counter / snapshot / election traffic.
//!
//! Two modes:
//!
//! * **`--smoke`** (CI): a short recorded run. Every successful
//!   operation is logged through the shared [`HistoryRecorder`] clock
//!   and the whole history must pass the Wing–Gong linearizability
//!   checker; the election round must agree across threads; shutdown
//!   must drain (requests == responses). Exit code 0 is the contract.
//! * **default**: a timed throughput run writing `BENCH_serve.json`
//!   (ops/s, p50/p90/p99 latency) at the workspace root, alongside
//!   `BENCH_explore.json`.
//!
//! ```text
//! loadgen [--smoke] [--threads N] [--ops N] [--k K] [--shards N]
//!         [--queue N] [--pipeline N]
//! ```
//!
//! `BSO_TELEMETRY=path.json` additionally dumps the `server.*`
//! counters, queue-depth gauges, and latency histograms (validated in
//! CI by `validate_telemetry --serve`).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use bso::client::{ClientError, Connection, HistoryRecorder};
use bso::objects::rng::SplitMix64;
use bso::objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso::server::{Server, ServerConfig, ServerStats};
use bso::sim::{check_history, viz};
use bso_telemetry::json::Json;
use bso_telemetry::Registry;

/// Everything a run is parameterized by.
struct Config {
    smoke: bool,
    threads: usize,
    ops_per_thread: usize,
    k: u8,
    shards: usize,
    queue_capacity: usize,
    pipeline: usize,
}

impl Config {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Config, String> {
        fn num(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{flag}: {e}"))
        }
        let mut cfg = Config {
            smoke: false,
            threads: 4,
            ops_per_thread: 20_000,
            k: 6,
            shards: 4,
            queue_capacity: 128,
            pipeline: 16,
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => {
                    cfg.smoke = true;
                    cfg.ops_per_thread = 400;
                }
                "--threads" => cfg.threads = num(&mut args, &arg)?.max(1),
                "--ops" => cfg.ops_per_thread = num(&mut args, &arg)?.max(1),
                "--k" => {
                    cfg.k = u8::try_from(num(&mut args, &arg)?)
                        .ok()
                        .filter(|k| (3..=255).contains(k))
                        .ok_or("--k must be in 3..=255")?
                }
                "--shards" => cfg.shards = num(&mut args, &arg)?.max(1),
                "--queue" => cfg.queue_capacity = num(&mut args, &arg)?.max(1),
                "--pipeline" => cfg.pipeline = num(&mut args, &arg)?.max(1),
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument {other}\n{USAGE}")),
            }
        }
        Ok(cfg)
    }

    /// The served universe: one CAS-(k), per-thread registers (so
    /// traffic spreads across shards), a contended counter, and a
    /// snapshot with one slot per thread.
    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: self.k as usize });
        l.push(ObjectInit::FetchAdd(0));
        l.push(ObjectInit::Snapshot {
            slots: self.threads,
        });
        for _ in 0..self.threads {
            l.push(ObjectInit::Register(Value::Nil));
        }
        l
    }
}

const USAGE: &str = "usage: loadgen [--smoke] [--threads N] [--ops N] [--k K] \
[--shards N] [--queue N] [--pipeline N]";

const CAS: ObjectId = ObjectId(0);
const CTR: ObjectId = ObjectId(1);
const SNAP: ObjectId = ObjectId(2);

fn register_of(thread: usize) -> ObjectId {
    ObjectId(3 + thread)
}

/// One thread's traffic mix. In smoke mode ops round-trip one at a
/// time (tight intervals keep the checker's search shallow) with a
/// pipelined fetch&add burst at the end; in bench mode a window of
/// `pipeline` requests is kept in flight throughout.
fn run_thread(
    addr: std::net::SocketAddr,
    cfg: &Config,
    pid: usize,
    recorder: Option<Arc<HistoryRecorder>>,
    latency: bso_telemetry::Histogram,
) -> Result<(u64, u64), ClientError> {
    let mut conn = Connection::connect(addr)?.with_latency_histogram(latency);
    if let Some(rec) = recorder {
        conn = conn.with_recorder(rec);
    }
    let mut rng = SplitMix64::new(0x10AD_0000 + pid as u64);
    let mut ok = 0u64;
    let mut busy = 0u64;
    let mut in_flight: Vec<u64> = Vec::new();
    let window = if cfg.smoke { 1 } else { cfg.pipeline };
    for i in 0..cfg.ops_per_thread {
        let op = match rng.usize_below(10) {
            0..=2 => Op::cas(
                CAS,
                Value::Sym(Sym::BOTTOM),
                Value::Sym(Sym::new(rng.range_u8(0, cfg.k - 2))),
            ),
            3 => Op::cas(
                CAS,
                Value::Sym(Sym::new(rng.range_u8(0, cfg.k - 2))),
                Value::Sym(Sym::BOTTOM),
            ),
            4..=5 => Op::new(CTR, OpKind::FetchAdd(1)),
            6 => Op::read(CAS),
            7 => Op::write(register_of(pid), Value::Int(i as i64)),
            8 => Op::read(register_of(rng.usize_below(cfg.threads))),
            _ => {
                if rng.usize_below(4) == 0 {
                    Op::new(SNAP, OpKind::SnapshotScan)
                } else {
                    Op::new(SNAP, OpKind::SnapshotUpdate(Value::Int(i as i64)))
                }
            }
        };
        in_flight.push(conn.send(pid, op)?);
        while in_flight.len() >= window {
            match conn.wait(in_flight.remove(0)) {
                Ok(bso::server::Response::Ok(_)) => ok += 1,
                Ok(bso::server::Response::Err { code, message }) => {
                    if code == bso::server::ErrorCode::Busy {
                        busy += 1;
                    } else {
                        return Err(ClientError::Server { code, message });
                    }
                }
                Ok(other) => return Err(ClientError::Protocol(format!("unexpected {other:?}"))),
                Err(e) => return Err(e),
            }
        }
    }
    // A pipelined burst of fetch&adds even in smoke mode: overlapping
    // recorded intervals exercise the checker's concurrency handling,
    // and the unique counter responses keep its search linear.
    let ids: Vec<u64> = (0..8)
        .map(|_| conn.send(pid, Op::new(CTR, OpKind::FetchAdd(1))))
        .collect::<Result<_, _>>()?;
    in_flight.extend(ids);
    for id in in_flight {
        match conn.wait(id)? {
            bso::server::Response::Ok(_) => ok += 1,
            bso::server::Response::Err {
                code: bso::server::ErrorCode::Busy,
                ..
            } => busy += 1,
            other => return Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }
    Ok((ok, busy))
}

struct RunOutcome {
    ok: u64,
    busy: u64,
    elapsed: std::time::Duration,
    stats: ServerStats,
    winners: Vec<usize>,
    log: Vec<bso::sim::RecordedOp>,
    registry: Registry,
}

fn run(cfg: &Config) -> Result<RunOutcome, String> {
    let layout = cfg.layout();
    // Prefer the global registry so `BSO_TELEMETRY=path.json` captures
    // the server metrics; fall back to a private live one so the
    // emitted latency quantiles are real either way.
    let registry = if Registry::global().is_enabled() {
        Registry::default()
    } else {
        Registry::enabled()
    };
    let server_cfg = ServerConfig {
        shards: cfg.shards,
        queue_capacity: cfg.queue_capacity,
        registry: registry.clone(),
    };
    let handle =
        Server::bind("127.0.0.1:0", &layout, server_cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr();
    let recorder = cfg.smoke.then(|| Arc::new(HistoryRecorder::new()));

    let started = Instant::now();
    let totals: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|pid| {
                let recorder = recorder.clone();
                let latency = registry.histogram("client.rtt_ns");
                s.spawn(move || run_thread(addr, cfg, pid, recorder, latency))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<_, _>>()
    })
    .map_err(|e| format!("client error: {e}"))?;
    let elapsed = started.elapsed();

    // One election session, every thread a participant (the session's
    // protocol hosts k−1 of them).
    let participants = cfg.threads.min(cfg.k as usize - 1);
    let session = Connection::connect(addr)
        .and_then(|mut c| {
            c.open_election(cfg.k as u32)
                .map_err(|e| std::io::Error::other(e.to_string()))
        })
        .map_err(|e| format!("open election: {e}"))?;
    let winners: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..participants)
            .map(|pid| {
                s.spawn(move || {
                    Connection::connect(addr)
                        .map_err(ClientError::Io)?
                        .elect(session, pid as u32)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("elector thread panicked"))
            .collect::<Result<_, _>>()
    })
    .map_err(|e| format!("election: {e}"))?;

    let stats = handle.shutdown();
    let log = recorder.map(|r| r.take_log()).unwrap_or_default();
    let (ok, busy) = totals
        .iter()
        .fold((0, 0), |(o, b), (to, tb)| (o + to, b + tb));
    Ok(RunOutcome {
        ok,
        busy,
        elapsed,
        stats,
        winners,
        log,
        registry,
    })
}

fn emit_bench_json(cfg: &Config, out: &RunOutcome, registry: &Registry) -> String {
    let rtt = registry
        .snapshot()
        .histograms
        .get("client.rtt_ns")
        .map(|h| {
            Json::obj([
                ("p50_ns", Json::U64(h.p50())),
                ("p90_ns", Json::U64(h.p90())),
                ("p99_ns", Json::U64(h.p99())),
                ("min_ns", Json::U64(h.min)),
                ("max_ns", Json::U64(h.max)),
                ("count", Json::U64(h.count)),
            ])
        });
    let total = out.ok + out.busy;
    Json::obj([
        ("schema", Json::Str("bso-serve-bench/v1".into())),
        (
            "config",
            Json::obj([
                ("threads", Json::U64(cfg.threads as u64)),
                ("ops_per_thread", Json::U64(cfg.ops_per_thread as u64)),
                ("k", Json::U64(cfg.k as u64)),
                ("shards", Json::U64(cfg.shards as u64)),
                ("queue_capacity", Json::U64(cfg.queue_capacity as u64)),
                ("pipeline", Json::U64(cfg.pipeline as u64)),
            ]),
        ),
        ("elapsed_ms", Json::F64(out.elapsed.as_secs_f64() * 1e3)),
        (
            "ops_per_sec",
            Json::F64(total as f64 / out.elapsed.as_secs_f64()),
        ),
        ("ops_ok", Json::U64(out.ok)),
        ("ops_busy", Json::U64(out.busy)),
        ("latency", rtt.unwrap_or(Json::Null)),
        (
            "server",
            Json::obj([
                ("connections", Json::U64(out.stats.connections)),
                ("requests", Json::U64(out.stats.requests)),
                ("responses", Json::U64(out.stats.responses)),
                ("busy", Json::U64(out.stats.busy)),
                ("malformed", Json::U64(out.stats.malformed)),
            ]),
        ),
    ])
    .render_pretty()
}

fn main() -> ExitCode {
    let cfg = match Config::parse(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let out = match run(&cfg) {
        Ok(out) => out,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let total = out.ok + out.busy;
    println!(
        "{} threads × {} ops (k={}, {} shards): {} ok + {} busy in {:.1} ms ({:.0} ops/s)",
        cfg.threads,
        cfg.ops_per_thread,
        cfg.k,
        cfg.shards,
        out.ok,
        out.busy,
        out.elapsed.as_secs_f64() * 1e3,
        total as f64 / out.elapsed.as_secs_f64(),
    );

    // The server must have answered exactly what was asked: the mixed
    // traffic, the election traffic, and nothing twice.
    if out.stats.requests != out.stats.responses {
        eprintln!(
            "loadgen: server answered {} of {} requests",
            out.stats.responses, out.stats.requests
        );
        return ExitCode::FAILURE;
    }
    if out.winners.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("loadgen: election disagreement: {:?}", out.winners);
        return ExitCode::FAILURE;
    }
    println!(
        "election: {} participants all chose p{}",
        out.winners.len(),
        out.winners[0]
    );

    if cfg.smoke {
        // End-to-end linearizability: the recorded wire history checks
        // out against the same sequential specs the simulator uses.
        let layout = cfg.layout();
        if let Err(e) = check_history(&layout, &out.log) {
            eprintln!("loadgen: NOT LINEARIZABLE\n{e}");
            return ExitCode::FAILURE;
        }
        println!(
            "smoke: recorded history of {} ops is linearizable ✓",
            out.log.len()
        );
        // A taste of the history for humans (last few ticks).
        let tail: Vec<_> = out.log.iter().rev().take(12).rev().cloned().collect();
        print!("{}", viz::history_timeline(&tail, cfg.threads));
    } else {
        let json = emit_bench_json(&cfg, &out, &out.registry);
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("loadgen: write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    bso_bench::dump_telemetry();
    ExitCode::SUCCESS
}
