//! `trace_merge` — joins a client-side and a server-side `bso-trace/v1`
//! export into one Chrome-trace timeline per request.
//!
//! ```text
//! trace_merge <client.json> <server.json> [merged.json]
//! ```
//!
//! The inputs are the files a tracing run writes on each side
//! (`BSO_TRACE=client.json` for the client process, the server's
//! injected [`TraceSink`] export for the other). Requests carry their
//! `trace_id` across the wire, so the merger can align the two
//! independent clocks on the spans both sides recorded for the same
//! request; see [`bso_telemetry::trace::merge_traces`] for the exact
//! alignment rule. The merged file loads in any Chrome-trace viewer
//! (`chrome://tracing`, Perfetto) with client and server tracks
//! side by side, and its `"merged"` object reports how many requests
//! matched. Without an output path the merged document goes to stdout
//! and the summary to stderr.
//!
//! [`TraceSink`]: bso_telemetry::trace::TraceSink

use std::process::ExitCode;

use bso_telemetry::json::{self, Json};
use bso_telemetry::trace::merge_traces;

const USAGE: &str = "usage: trace_merge <client.json> <server.json> [merged.json]";

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let (Some(client), Some(server)) = (args.next(), args.next()) else {
        return Err(USAGE.to_string());
    };
    let out = args.next();
    if args.next().is_some() {
        return Err(USAGE.to_string());
    }

    let merged = merge_traces(&load(&client)?, &load(&server)?)?;
    let stats = merged.get("merged").ok_or("merger emitted no summary")?;
    let field = |key: &str| stats.get(key).and_then(Json::as_u64).unwrap_or(0);
    let summary = format!(
        "merged {} requests ({} client-only, {} server-only spans)",
        field("matched"),
        field("client_only"),
        field("server_only"),
    );

    let text = merged.render_pretty();
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
            println!("{summary} → {path}");
        }
        None => {
            println!("{text}");
            eprintln!("{summary}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_merge: {e}");
            ExitCode::FAILURE
        }
    }
}
