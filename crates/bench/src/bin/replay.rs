//! Creates and re-executes replayable counterexample artifacts.
//!
//! ```text
//! replay make <out.json> [protocol]   # refute a candidate, save the schedule
//! replay run <artifact.json>          # re-execute it and render the run
//! replay checkpoint <cp.json>         # inspect a checkpoint and resume it
//! ```
//!
//! `make` explores a known-refutable candidate protocol until the
//! checker finds a violating run, then serializes the exact
//! interleaving as a `bso-schedule/v1` artifact. `run` loads such an
//! artifact, replays it deterministically (crash events included),
//! asserts the recorded violation reproduces, and renders the run as a
//! timeline plus register histories. `checkpoint` loads a
//! `bso-checkpoint/v1` file written by an interrupted run (see the
//! `BSO_DEADLINE_MS` / `BSO_CHECKPOINT` escape hatches), prints its
//! summary, and resumes the exploration to a final verdict. Known
//! protocol ids:
//!
//! * `rw-election` (default) — 2-process election over registers only
//! * `tas3-eager` — 3-process consensus from one test&set, eager losers
//! * `faa3-eager` — 3-process consensus from one fetch&add
//! * `queue3` — 3-process consensus from one pre-loaded queue
//! * `lock-election` — 2-process lock-based election (non-wait-free)
//! * `label-election-2-3` — the quickstart `LabelElection` instance
//!
//! Exits nonzero if exploration fails to refute, the artifact does not
//! parse, the replayed run does not reproduce the recorded violation,
//! or a resumed checkpoint ends without a verdict.

use std::process::ExitCode;

use bso::hierarchy::candidates::{
    FaaThreeEagerCandidate, QueueThreeCandidate, RwElection, TasThreeEagerCandidate,
};
use bso::objects::{ObjectInit, Value};
use bso::protocols::{LabelElection, LockElection};
use bso::sim::{
    verify_replay, viz, Checkpoint, ExploreOutcome, Explorer, Protocol, ScheduleArtifact, TaskSpec,
};

const USAGE: &str = "usage: replay make <out.json> [protocol] | replay run <artifact.json> \
                     | replay checkpoint <cp.json>";

/// The known protocols, their stable ids, and the spec each violates.
fn consensus3() -> TaskSpec {
    TaskSpec::Consensus(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("make") => {
            let out = args.get(1).map(String::as_str).ok_or(USAGE.to_string());
            let protocol = args.get(2).map(String::as_str).unwrap_or("rw-election");
            out.and_then(|out| make(out, protocol))
        }
        Some("run") => {
            let path = args.get(1).map(String::as_str).ok_or(USAGE.to_string());
            path.and_then(run)
        }
        Some("checkpoint") => {
            let path = args.get(1).map(String::as_str).ok_or(USAGE.to_string());
            path.and_then(checkpoint)
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Explores `proto` until `spec` is violated and saves the schedule.
fn make_with<P>(proto: &P, id: &str, spec: TaskSpec, out: &str) -> Result<String, String>
where
    P: Protocol,
    P::State: Clone + std::hash::Hash + Eq,
{
    let explorer = Explorer::new(proto)
        .protocol_id(id)
        .spec(spec)
        .max_states(10_000_000);
    let report = explorer.run();
    let ExploreOutcome::Violated(v) = &report.outcome else {
        return Err(format!(
            "{id}: expected a violation, exploration returned {:?}",
            report.outcome
        ));
    };
    let artifact = explorer.artifact_for(v);
    artifact.save(out).map_err(|e| format!("{out}: {e}"))?;
    Ok(format!(
        "{out}: {id} refuted ({:?} after {} steps, {} states explored)",
        v.kind,
        v.schedule.len(),
        report.states
    ))
}

fn make(out: &str, protocol: &str) -> Result<String, String> {
    match protocol {
        "rw-election" => make_with(&RwElection, "rw-election", TaskSpec::Election, out),
        "tas3-eager" => make_with(&TasThreeEagerCandidate, "tas3-eager", consensus3(), out),
        "faa3-eager" => make_with(&FaaThreeEagerCandidate, "faa3-eager", consensus3(), out),
        "queue3" => make_with(&QueueThreeCandidate, "queue3", consensus3(), out),
        other => Err(format!("unknown protocol id {other:?} (see --help text)")),
    }
}

/// Replays `artifact` on `proto`, asserts the recorded violation
/// reproduces, and renders the run.
fn run_with<P>(proto: &P, artifact: &ScheduleArtifact) -> Result<String, String>
where
    P: Protocol,
    P::State: Clone + std::hash::Hash + Eq,
{
    let explorer = Explorer::new(proto)
        .protocol_id(artifact.protocol.clone())
        .inputs(&artifact.inputs)
        .spec(artifact.spec.clone());
    let outcome = explorer.replay(artifact);
    let verdict = verify_replay(artifact, &outcome)?;
    let mut report = format!(
        "{}: {} ({} steps)\n",
        artifact.protocol,
        verdict,
        artifact.schedule.len()
    );
    if let Ok(res) = &outcome {
        report.push_str(&viz::timeline(&res.trace, proto.processes()));
        for (id, init) in proto.layout().iter() {
            let initial = match init {
                ObjectInit::Register(v) => v.clone(),
                _ => continue,
            };
            report.push_str(&format!(
                "{id}: {}\n",
                viz::register_history_string(&res.trace, id, initial)
            ));
        }
    }
    Ok(report)
}

fn run(path: &str) -> Result<String, String> {
    let artifact = ScheduleArtifact::load(path).map_err(|e| e.to_string())?;
    match artifact.protocol.as_str() {
        "rw-election" => run_with(&RwElection, &artifact),
        "tas3-eager" => run_with(&TasThreeEagerCandidate, &artifact),
        "faa3-eager" => run_with(&FaaThreeEagerCandidate, &artifact),
        "queue3" => run_with(&QueueThreeCandidate, &artifact),
        "lock-election" => run_with(&LockElection::new(2), &artifact),
        other => Err(format!(
            "unknown protocol id {other:?}: this binary can only replay \
             artifacts for its built-in candidates"
        )),
    }
}

/// Resumes `cp` on `proto` and renders the final verdict; a resumed run
/// that *still* ends without a verdict is an error.
fn resume_with<P>(proto: &P, cp: &Checkpoint) -> Result<String, String>
where
    P: Protocol + Sync,
    P::State: Clone + std::hash::Hash + Eq + Send,
{
    let report = Explorer::new(proto)
        .protocol_id(cp.protocol.clone())
        .inputs(&cp.inputs)
        .resume(cp);
    match &report.outcome {
        ExploreOutcome::Verified => Ok(format!(
            "resumed to a verdict: Verified ({} states total)",
            report.states
        )),
        ExploreOutcome::Violated(v) => Ok(format!(
            "resumed to a verdict: Violated ({:?} after {} steps and {} crash(es))",
            v.kind,
            v.schedule.len(),
            v.crashes.len()
        )),
        other => Err(format!("resumed run ended without a verdict: {other:?}")),
    }
}

fn checkpoint(path: &str) -> Result<String, String> {
    let cp = Checkpoint::load(path).map_err(|e| e.to_string())?;
    let summary = format!(
        "{path}: bso-checkpoint/v1 for {:?} ({} processes, f={}, step bound {:?})\n\
         interrupted by {} after {} states ({} terminals, deepest {}, {} dedup hits)\n\
         frontier: {} unexpanded state(s)\n",
        cp.protocol,
        cp.inputs.len(),
        cp.faults,
        cp.step_bound,
        cp.reason,
        cp.states,
        cp.terminals,
        cp.deepest,
        cp.dedup_hits,
        cp.frontier.len()
    );
    let verdict = match cp.protocol.as_str() {
        "rw-election" => resume_with(&RwElection, &cp),
        "tas3-eager" => resume_with(&TasThreeEagerCandidate, &cp),
        "faa3-eager" => resume_with(&FaaThreeEagerCandidate, &cp),
        "queue3" => resume_with(&QueueThreeCandidate, &cp),
        "lock-election" => resume_with(&LockElection::new(cp.inputs.len()), &cp),
        "label-election-2-3" => {
            resume_with(&LabelElection::new(2, 3).map_err(|e| e.to_string())?, &cp)
        }
        other => Err(format!(
            "unknown protocol id {other:?}: this binary can only resume \
             checkpoints for its built-in protocols"
        )),
    }?;
    Ok(summary + &verdict)
}
