//! Validates `bso-telemetry` observability artifacts.
//!
//! ```text
//! validate_telemetry <snapshot.json> [min_total] [prefix=N ...]
//! validate_telemetry --trace <trace.json> [min_events]
//! validate_telemetry --progress <progress.jsonl> [min_lines]
//! validate_telemetry --checkpoint <cp.json>
//! validate_telemetry --serve <snapshot.json> [BENCH_serve.json]
//! validate_telemetry --explore <BENCH_explore.json>
//! validate_telemetry --introspect
//! validate_telemetry --chaos
//! validate_telemetry --cluster
//! ```
//!
//! The default mode exits nonzero unless the file parses as a
//! `bso-telemetry/v1` document whose metrics all carry a known type,
//! holds at least `min_total` metrics (a bare number), and, for each
//! `prefix=N` argument, has at least `N` metrics whose names start
//! with `prefix`. `--trace` checks a `BSO_TRACE` export for Chrome
//! trace-event shape (phases, ids, timestamps) with at least
//! `min_events` data events; `--progress` checks a `BSO_PROGRESS`
//! stream for well-formed `bso-progress/v1` heartbeats; `--checkpoint`
//! checks that a `BSO_CHECKPOINT` file is a loadable, resumable
//! `bso-checkpoint/v1` document with a non-empty frontier; `--serve`
//! checks a snapshot captured from a live `bso-server` run for the
//! `server.*` metric contract (request accounting that balances,
//! per-shard queue-depth gauges, latency histograms with consistent
//! quantiles), and with an optional second file also checks a
//! `BENCH_serve.json` for the `bso-serve-bench/v2` shape — including
//! that the peak latency distribution holds exactly one sample per
//! successful op; `--explore` checks a `BENCH_explore.json` written by
//! the explore bench for record shape *and* for the partial-order
//! reduction acceptance bar (a ≥ 10× state cut at k ≥ 6), so a
//! reduction regression fails the build instead of silently eroding
//! the speedup; `--introspect` is self-contained — it starts a
//! loopback `bso-server`, scrapes the wire-level `Introspect` request
//! *while traffic is flowing*, and validates the `bso-introspect/v1`
//! snapshot (key presence, quantile ordering, exactly one per-shard
//! entry per configured shard — the DESIGN.md §3.13 contract);
//! `--chaos` is likewise self-contained — it starts a loopback
//! `bso-server` and drives the DESIGN.md §3.14 fault-recovery
//! contract deterministically over a raw wire connection: a `Resume`
//! session bind, a duplicate-`req_id` retry that must be *replayed*
//! from the reply cache (not re-applied), and a zero-budget
//! `DeadlineApply` that must be shed with a typed `Expired` — then
//! checks that the `Introspect` snapshot and shutdown stats account
//! for all three (`resumes`, `replays`, `sessions`, and aggregate
//! plus per-shard `shed`); `--cluster` is also self-contained — it
//! launches a three-member `bso-cluster`, serves recorded traffic
//! through one live shard migration and one evacuated-member kill,
//! and checks the DESIGN.md §3.15 contract: typed `WrongShard`
//! redirects observed, routing epochs monotone at every member,
//! per-object ledgers exactly balancing the acked increments, and
//! the merged multi-server history linearizable. CI runs all nine
//! over the artifacts the examples, the loadgen smoke job and the
//! smoke bench write.

use std::process::ExitCode;

use bso::sim::Checkpoint;
use bso_telemetry::json::{self, Json};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_telemetry: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: validate_telemetry <snapshot.json> [min_total] [prefix=N ...] \
     | --trace <trace.json> [min_events] | --progress <progress.jsonl> [min_lines] \
     | --checkpoint <cp.json> | --serve <snapshot.json> [BENCH_serve.json] \
     | --explore <BENCH_explore.json> | --introspect | --chaos | --cluster";

fn run() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let path = args.next().ok_or(USAGE)?;
    if path == "--trace" {
        let file = args.next().ok_or(USAGE)?;
        let min = parse_count(args.next())?;
        return validate_trace(&file, min);
    }
    if path == "--progress" {
        let file = args.next().ok_or(USAGE)?;
        let min = parse_count(args.next())?;
        return validate_progress(&file, min);
    }
    if path == "--checkpoint" {
        let file = args.next().ok_or(USAGE)?;
        return validate_checkpoint(&file);
    }
    if path == "--serve" {
        let file = args.next().ok_or(USAGE)?;
        let summary = validate_serve(&file)?;
        return match args.next() {
            Some(bench) => Ok(format!("{summary}\n{}", validate_serve_bench(&bench)?)),
            None => Ok(summary),
        };
    }
    if path == "--explore" {
        let file = args.next().ok_or(USAGE)?;
        return validate_explore(&file);
    }
    if path == "--introspect" {
        return validate_introspect();
    }
    if path == "--chaos" {
        return validate_chaos();
    }
    if path == "--cluster" {
        return validate_cluster();
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;

    if !matches!(doc.get("schema"), Some(Json::Str(s)) if s == "bso-telemetry/v1") {
        return Err(format!("{path}: missing or unknown \"schema\""));
    }
    let metrics = doc
        .get("metrics")
        .and_then(Json::entries)
        .ok_or_else(|| format!("{path}: \"metrics\" is missing or not an object"))?;
    for (name, m) in metrics {
        let known = matches!(
            m.get("type"),
            Some(Json::Str(t)) if t == "counter" || t == "gauge" || t == "histogram"
        );
        if !known {
            return Err(format!("{path}: metric {name:?} has no known \"type\""));
        }
    }

    for arg in args {
        match arg.split_once('=') {
            Some((prefix, n)) => {
                let want: usize = n
                    .parse()
                    .map_err(|_| format!("bad argument {arg:?}: expected prefix=N"))?;
                let got = metrics
                    .iter()
                    .filter(|(k, _)| k.starts_with(prefix))
                    .count();
                if got < want {
                    return Err(format!(
                        "{path}: {got} metrics match prefix {prefix:?}, need at least {want}"
                    ));
                }
            }
            None => {
                let want: usize = arg
                    .parse()
                    .map_err(|_| format!("bad argument {arg:?}: expected a count or prefix=N"))?;
                if metrics.len() < want {
                    return Err(format!(
                        "{path}: {} metrics in total, need at least {want}",
                        metrics.len()
                    ));
                }
            }
        }
    }
    Ok(format!("{path}: ok ({} metrics)", metrics.len()))
}

fn parse_count(arg: Option<String>) -> Result<usize, String> {
    match arg {
        None => Ok(1),
        Some(s) => s
            .parse()
            .map_err(|_| format!("bad count {s:?}: expected a number")),
    }
}

/// Checks a `BSO_TRACE` export for Chrome trace-event shape.
fn validate_trace(path: &str, min_events: usize) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if !matches!(doc.get("schema"), Some(Json::Str(s)) if s == "bso-trace/v1") {
        return Err(format!("{path}: missing or unknown \"schema\""));
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::items)
        .ok_or_else(|| format!("{path}: \"traceEvents\" is missing or not an array"))?;
    let mut data_events = 0;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: event #{i} has no \"ph\""))?;
        if !matches!(ph, "X" | "i" | "M" | "B" | "E") {
            return Err(format!("{path}: event #{i} has unknown phase {ph:?}"));
        }
        if e.get("name")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("{path}: event #{i} has no \"name\""));
        }
        for key in ["pid", "tid"] {
            if e.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("{path}: event #{i} has no integer {key:?}"));
            }
        }
        if ph == "M" {
            continue; // metadata records carry no timestamp
        }
        data_events += 1;
        if e.get("ts").and_then(Json::as_f64).is_none() {
            return Err(format!("{path}: event #{i} has no numeric \"ts\""));
        }
        if ph == "X" && e.get("dur").and_then(Json::as_f64).is_none() {
            return Err(format!("{path}: complete event #{i} has no \"dur\""));
        }
    }
    if data_events < min_events {
        return Err(format!(
            "{path}: {data_events} data events, need at least {min_events}"
        ));
    }
    Ok(format!(
        "{path}: ok ({data_events} data events, {} records)",
        events.len()
    ))
}

/// Checks a `BSO_CHECKPOINT` file: it must load through the same
/// typed path `Explorer::resume` uses, and describe something a
/// resume could actually continue (a non-empty frontier).
fn validate_checkpoint(path: &str) -> Result<String, String> {
    let cp = Checkpoint::load(path).map_err(|e| e.to_string())?;
    if cp.frontier.is_empty() {
        return Err(format!("{path}: checkpoint has an empty frontier"));
    }
    for (i, entry) in cp.frontier.iter().enumerate() {
        for c in &entry.crashes {
            if c.at > entry.schedule.len() {
                return Err(format!(
                    "{path}: frontier entry #{i} crashes p{} after step {} of a \
                     {}-step schedule",
                    c.pid,
                    c.at,
                    entry.schedule.len()
                ));
            }
        }
    }
    Ok(format!(
        "{path}: ok ({:?} interrupted by {} at {} states, {} frontier entries)",
        cp.protocol,
        cp.reason,
        cp.states,
        cp.frontier.len()
    ))
}

/// Checks a snapshot from a live `bso-server` run for the `server.*`
/// metric contract.
fn validate_serve(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if !matches!(doc.get("schema"), Some(Json::Str(s)) if s == "bso-telemetry/v1") {
        return Err(format!("{path}: missing or unknown \"schema\""));
    }
    let metrics = doc
        .get("metrics")
        .and_then(Json::entries)
        .ok_or_else(|| format!("{path}: \"metrics\" is missing or not an object"))?;
    let counter = |name: &str| -> Result<u64, String> {
        let m = metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("{path}: missing counter {name:?}"))?;
        if !matches!(m.get("type"), Some(Json::Str(t)) if t == "counter") {
            return Err(format!("{path}: {name:?} is not a counter"));
        }
        m.get("value")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}: {name:?} has no integer value"))
    };

    // The request ledger must balance: everything decoded was either
    // answered or refused, and refusals are answered too — so the
    // server can never owe more responses than it got requests.
    let requests = counter("server.requests")?;
    let responses = counter("server.responses")?;
    let busy = counter("server.busy")?;
    if requests == 0 {
        return Err(format!(
            "{path}: server.requests is 0 — no traffic captured"
        ));
    }
    if responses > requests {
        return Err(format!(
            "{path}: {responses} responses for {requests} requests"
        ));
    }
    if busy > requests {
        return Err(format!(
            "{path}: {busy} busy refusals for {requests} requests"
        ));
    }
    if counter("server.connections")? == 0 {
        return Err(format!("{path}: server.connections is 0"));
    }

    // Queue-depth gauges: one per shard, contiguously numbered from 0.
    let shards = metrics
        .iter()
        .filter(|(k, m)| {
            k.starts_with("server.shard")
                && k.ends_with(".queue_depth")
                && matches!(m.get("type"), Some(Json::Str(t)) if t == "gauge")
        })
        .count();
    if shards == 0 {
        return Err(format!("{path}: no server.shard<i>.queue_depth gauges"));
    }
    for i in 0..shards {
        let name = format!("server.shard{i}.queue_depth");
        if !metrics.iter().any(|(k, _)| *k == name) {
            return Err(format!(
                "{path}: shard gauges are not contiguous: no {name:?}"
            ));
        }
    }

    // Latency histograms: present, non-empty, quantiles ordered and
    // inside [min, max].
    let mut histograms = 0;
    for (name, m) in metrics {
        if !(name.starts_with("server.") || name.starts_with("client."))
            || !matches!(m.get("type"), Some(Json::Str(t)) if t == "histogram")
        {
            continue;
        }
        histograms += 1;
        let field = |key: &str| -> Result<u64, String> {
            m.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: histogram {name:?} has no integer {key:?}"))
        };
        let (count, min, max) = (field("count")?, field("min")?, field("max")?);
        let (p50, p90, p99) = (field("p50")?, field("p90")?, field("p99")?);
        if count == 0 {
            return Err(format!("{path}: histogram {name:?} is empty"));
        }
        if !(min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max) {
            return Err(format!(
                "{path}: histogram {name:?} has disordered quantiles \
                 (min {min}, p50 {p50}, p90 {p90}, p99 {p99}, max {max})"
            ));
        }
    }
    if histograms == 0 {
        return Err(format!("{path}: no server-side latency histograms"));
    }
    Ok(format!(
        "{path}: ok ({requests} requests over {shards} shards, {histograms} histograms)"
    ))
}

/// Checks a `BENCH_serve.json` written by the loadgen bench: the
/// `bso-serve-bench/v2` shape — a peak block whose latency histogram
/// counts *exactly* one sample per successful op, and a non-empty
/// latency-under-load curve with ordered quantiles per point.
fn validate_serve_bench(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if !matches!(doc.get("schema"), Some(Json::Str(s)) if s == "bso-serve-bench/v2") {
        return Err(format!("{path}: missing or unknown \"schema\""));
    }
    let peak = doc
        .get("peak")
        .ok_or_else(|| format!("{path}: no \"peak\" block"))?;
    let peak_u64 = |key: &str| -> Result<u64, String> {
        peak.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}: peak has no integer {key:?}"))
    };
    if peak
        .get("ops_per_sec")
        .and_then(Json::as_f64)
        .is_none_or(|r| r <= 0.0)
    {
        return Err(format!(
            "{path}: peak.ops_per_sec is missing or not positive"
        ));
    }
    let ops_ok = peak_u64("ops_ok")?;
    let latency = peak
        .get("latency")
        .ok_or_else(|| format!("{path}: peak has no \"latency\""))?;
    let lat = |key: &str| -> Result<u64, String> {
        latency
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{path}: peak.latency has no integer {key:?}"))
    };
    // The sampling contract: exactly one latency sample per successful
    // op — a histogram that over- or under-counts is lying about the
    // distribution it claims to summarize.
    let count = lat("count")?;
    if count != ops_ok {
        return Err(format!(
            "{path}: peak.latency.count is {count} but ops_ok is {ops_ok} — \
             the distribution must hold exactly one sample per successful op"
        ));
    }
    let (min, p50, p99, p999, max) = (
        lat("min_ns")?,
        lat("p50_ns")?,
        lat("p99_ns")?,
        lat("p999_ns")?,
        lat("max_ns")?,
    );
    if !(min <= p50 && p50 <= p99 && p99 <= p999 && p999 <= max) {
        return Err(format!(
            "{path}: peak latency quantiles are disordered \
             (min {min}, p50 {p50}, p99 {p99}, p999 {p999}, max {max})"
        ));
    }

    let curve = doc
        .get("curve")
        .and_then(Json::items)
        .ok_or_else(|| format!("{path}: \"curve\" is missing or not an array"))?;
    if curve.is_empty() {
        return Err(format!("{path}: the latency-under-load curve is empty"));
    }
    for (i, point) in curve.iter().enumerate() {
        for key in ["offered_ops_per_sec", "achieved_ops_per_sec"] {
            if point
                .get(key)
                .and_then(Json::as_f64)
                .is_none_or(|r| r <= 0.0)
            {
                return Err(format!("{path}: curve point #{i} has no positive {key:?}"));
            }
        }
        let q = |key: &str| -> Result<u64, String> {
            point
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: curve point #{i} has no integer {key:?}"))
        };
        let (p50, p99, p999) = (q("p50_ns")?, q("p99_ns")?, q("p999_ns")?);
        if !(p50 <= p99 && p99 <= p999) {
            return Err(format!(
                "{path}: curve point #{i} has disordered quantiles \
                 (p50 {p50}, p99 {p99}, p999 {p999})"
            ));
        }
        if q("count")? == 0 {
            return Err(format!("{path}: curve point #{i} sampled nothing"));
        }
    }
    // A cluster section (written by `loadgen --cluster N`) is
    // optional, but when present it must carry the
    // bso-cluster-bench/v1 shape: real members, real throughput, at
    // least one live migration, and a routing epoch that moved
    // forward to pay for it.
    let mut cluster_note = String::new();
    if let Some(cluster) = doc.get("cluster") {
        if !matches!(cluster.get("schema"), Some(Json::Str(s)) if s == "bso-cluster-bench/v1") {
            return Err(format!(
                "{path}: cluster section has missing or unknown \"schema\""
            ));
        }
        let cu = |key: &str| -> Result<u64, String> {
            cluster
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: cluster section has no integer {key:?}"))
        };
        let members = cu("members")?;
        if members < 2 {
            return Err(format!(
                "{path}: a {members}-member cluster is not a cluster"
            ));
        }
        if cu("ops")? == 0 {
            return Err(format!("{path}: cluster bench served no ops"));
        }
        if cluster
            .get("ops_per_sec")
            .and_then(Json::as_f64)
            .is_none_or(|r| r <= 0.0)
        {
            return Err(format!(
                "{path}: cluster.ops_per_sec is missing or not positive"
            ));
        }
        let migrations = cu("migrations")?;
        if migrations == 0 {
            return Err(format!("{path}: cluster bench performed no migration"));
        }
        let (e0, e1) = (cu("epoch_initial")?, cu("epoch_final")?);
        if e1 < e0 + migrations {
            return Err(format!(
                "{path}: routing epoch went {e0} -> {e1} across {migrations} migrations \
                 — each flip must bump it"
            ));
        }
        cluster_note = format!(", {members}-member cluster across {migrations} migrations");
    }
    Ok(format!(
        "{path}: ok ({ops_ok} sampled ops at peak, {}-point curve{cluster_note})",
        curve.len()
    ))
}

/// Checks a `BENCH_explore.json` written by the explore bench: record
/// shape, the groups the acceptance checks read, and the DPOR state
/// cuts (strictly fewer states everywhere it ran, ≥ 10× at k ≥ 6).
fn validate_explore(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if !matches!(doc.get("bench"), Some(Json::Str(s)) if s == "explore") {
        return Err(format!("{path}: missing or unknown \"bench\""));
    }
    let records = doc
        .get("records")
        .and_then(Json::items)
        .ok_or_else(|| format!("{path}: \"records\" is missing or not an array"))?;
    for (i, r) in records.iter().enumerate() {
        if r.get("name")
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            return Err(format!("{path}: record #{i} has no \"name\""));
        }
        for key in ["median_ns", "min_ns"] {
            if r.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("{path}: record #{i} has no integer {key:?}"));
            }
        }
    }
    let has = |name: &str| {
        records
            .iter()
            .any(|r| r.get("name").and_then(Json::as_str) == Some(name))
    };
    for group in [
        "explore_seed_baseline/6",
        "explore_cas_only/6",
        "explore_cas_only_fp/6",
        "explore_dpor/6",
        "explore_faults/disabled",
        "explore_faults/f1",
    ] {
        if !has(group) {
            return Err(format!("{path}: no record for {group:?}"));
        }
    }
    let cuts = doc
        .get("dpor")
        .and_then(Json::entries)
        .ok_or_else(|| format!("{path}: \"dpor\" is missing or not an object"))?;
    if cuts.is_empty() {
        return Err(format!("{path}: \"dpor\" has no per-instance cuts"));
    }
    let mut checked = 0;
    for (name, entry) in cuts {
        let k: u64 = name
            .strip_prefix('k')
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("{path}: dpor key {name:?} is not k<N>"))?;
        let field = |key: &str| -> Result<u64, String> {
            entry
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: dpor.{name} has no integer {key:?}"))
        };
        let (full, dpor) = (field("states_full")?, field("states_dpor")?);
        let cut = entry
            .get("cut")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{path}: dpor.{name} has no numeric \"cut\""))?;
        if dpor >= full {
            return Err(format!(
                "{path}: dpor.{name} explored {dpor} states of {full} — no reduction"
            ));
        }
        if k >= 6 && cut < 10.0 {
            return Err(format!(
                "{path}: dpor.{name} cut is {cut:.1}x, the acceptance bar is 10x at k >= 6"
            ));
        }
        checked += 1;
    }
    Ok(format!(
        "{path}: ok ({} records, {checked} dpor cuts)",
        records.len()
    ))
}

/// Checks a `BSO_PROGRESS` stream for well-formed heartbeats.
fn validate_progress(path: &str, min_lines: usize) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        if !matches!(doc.get("schema"), Some(Json::Str(s)) if s == "bso-progress/v1") {
            return Err(format!("{path}:{}: missing or unknown \"schema\"", i + 1));
        }
        for key in ["seq", "elapsed_ms", "states", "frontier"] {
            if doc.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("{path}:{}: no integer {key:?}", i + 1));
            }
        }
        lines += 1;
    }
    if lines < min_lines {
        return Err(format!(
            "{path}: {lines} heartbeat lines, need at least {min_lines}"
        ));
    }
    Ok(format!("{path}: ok ({lines} heartbeats)"))
}

/// The self-contained `Introspect` contract check: a loopback server
/// is scraped over the wire while traffic flows, and the snapshot
/// must match the `bso-introspect/v1` schema of DESIGN.md §3.13 —
/// key presence, ordered quantiles, and exactly one per-shard entry
/// per configured shard.
fn validate_introspect() -> Result<String, String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use bso::client::Connection;
    use bso::objects::{Layout, ObjectId, ObjectInit, Op, OpKind};
    use bso::server::Server;

    const SHARDS: usize = 2;
    // One counter per shard, so traffic exercises every event loop.
    let mut layout = Layout::new();
    for _ in 0..SHARDS {
        layout.push(ObjectInit::FetchAdd(0));
    }
    let handle = Server::builder()
        .shards(SHARDS)
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .map_err(|e| format!("bind: {e}"))?;
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let traffic = std::thread::spawn(move || -> Result<u64, String> {
        let mut conn = Connection::builder()
            .connect(addr)
            .map_err(|e| format!("traffic connect: {e}"))?;
        let mut sent = 0u64;
        while !flag.load(Ordering::Relaxed) {
            for obj in 0..SHARDS {
                conn.apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                    .map_err(|e| format!("traffic apply: {e}"))?;
                sent += 1;
            }
        }
        Ok(sent)
    });

    // Scrape from a second connection, mid-traffic.
    let scrape = (|| -> Result<String, String> {
        let mut conn = Connection::builder()
            .connect(addr)
            .map_err(|e| format!("connect: {e}"))?;
        std::thread::sleep(std::time::Duration::from_millis(50));
        conn.introspect().map_err(|e| format!("introspect: {e}"))
    })();
    stop.store(true, Ordering::Relaxed);
    let sent = traffic.join().expect("traffic thread panicked")?;
    let text = scrape?;

    let doc = json::parse(&text).map_err(|e| format!("introspect: {e}"))?;
    if !matches!(doc.get("schema"), Some(Json::Str(s)) if s == "bso-introspect/v1") {
        return Err("introspect: missing or unknown \"schema\"".to_string());
    }
    let config = doc.get("config").ok_or("introspect: no \"config\"")?;
    if config.get("shards").and_then(Json::as_u64) != Some(SHARDS as u64) {
        return Err(format!("introspect: config.shards != {SHARDS}"));
    }
    for key in ["backend", "pin_cores", "queue_capacity", "read_chunk"] {
        if config.get(key).is_none() {
            return Err(format!("introspect: config lacks {key:?}"));
        }
    }
    let server = doc.get("server").ok_or("introspect: no \"server\"")?;
    for key in ["crate", "uptime_ms", "version", "wire"] {
        if server.get(key).is_none() {
            return Err(format!("introspect: server lacks {key:?}"));
        }
    }
    let requests = doc
        .get("stats")
        .and_then(|s| s.get("requests"))
        .and_then(Json::as_u64)
        .ok_or("introspect: no integer stats.requests")?;
    if requests == 0 {
        return Err("introspect: stats.requests is 0 mid-traffic".to_string());
    }

    let shards = doc
        .get("shards")
        .and_then(Json::items)
        .ok_or("introspect: no \"shards\" array")?;
    if shards.len() != SHARDS {
        return Err(format!(
            "introspect: {} shard entries for {SHARDS} shards",
            shards.len()
        ));
    }
    let mut applies = 0u64;
    for (i, entry) in shards.iter().enumerate() {
        if entry.get("shard").and_then(Json::as_u64) != Some(i as u64) {
            return Err(format!("introspect: shard entry {i} misnumbered"));
        }
        for key in ["conns", "queue_depth", "wakeups"] {
            if entry.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("introspect: shard {i} lacks integer {key:?}"));
            }
        }
        for hist in ["apply_ns", "elect_ns", "flush_batch", "turn_ns"] {
            let h = entry
                .get(hist)
                .ok_or_else(|| format!("introspect: shard {i} lacks {hist:?}"))?;
            let field = |key: &str| {
                h.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("introspect: shard {i} {hist}.{key} missing"))
            };
            let count = field("count")?;
            field("sum")?;
            let (min, p50, p90, p99, max) = (
                field("min")?,
                field("p50")?,
                field("p90")?,
                field("p99")?,
                field("max")?,
            );
            if count > 0 && !(min <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max) {
                return Err(format!(
                    "introspect: shard {i} {hist} quantiles out of order: \
                     min {min}, p50 {p50}, p90 {p90}, p99 {p99}, max {max}"
                ));
            }
            if hist == "apply_ns" {
                applies += count;
            }
        }
        let flight = entry
            .get("flight")
            .ok_or_else(|| format!("introspect: shard {i} lacks \"flight\""))?;
        for key in ["seq", "slow_dropped", "threshold_ns"] {
            if flight.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!(
                    "introspect: shard {i} flight lacks integer {key:?}"
                ));
            }
        }
        for key in ["recent", "slow"] {
            if flight.get(key).and_then(Json::items).is_none() {
                return Err(format!("introspect: shard {i} flight lacks array {key:?}"));
            }
        }
    }
    if applies == 0 {
        return Err("introspect: no applies recorded on any shard mid-traffic".to_string());
    }

    let stats = handle.shutdown();
    if stats.requests != stats.responses {
        return Err(format!(
            "server answered {} of {} requests",
            stats.responses, stats.requests
        ));
    }
    Ok(format!(
        "introspect contract ok: {SHARDS} shards, {requests} requests in snapshot, \
         {sent} traffic ops drained"
    ))
}

/// The self-contained fault-recovery contract check (DESIGN.md
/// §3.14): every recovery path the chaos harness exercises
/// probabilistically is forced here *deterministically*, over a raw
/// wire connection, and the accounting is checked end to end — in
/// the live `Introspect` snapshot and in the shutdown stats.
///
/// The script: bind a session (`Resume`), apply an effectful op
/// under it, shed a zero-budget `DeadlineApply` with a typed
/// `Expired`, then "crash" (drop the socket), reconnect, resume, and
/// retry the effectful op with its original `req_id`. The retry must
/// be replayed from the per-session reply cache — the counter must
/// show exactly one application — and the server must report
/// `resumes`, `replays`, `sessions`, and `shed` (aggregate and
/// per-shard) for all of it.
fn validate_chaos() -> Result<String, String> {
    use std::io::Write;
    use std::net::TcpStream;

    use bso::objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
    use bso::server::{wire, ErrorCode, Request, Response, Server};

    fn send(c: &mut TcpStream, id: u64, req: &Request) -> Result<(), String> {
        let mut buf = Vec::new();
        wire::encode_request(id, req, &mut buf).map_err(|e| format!("chaos: encode: {e}"))?;
        c.write_all(&buf).map_err(|e| format!("chaos: send: {e}"))
    }
    fn recv(c: &mut TcpStream) -> Result<(u64, Response), String> {
        let mut body = Vec::new();
        if !wire::read_frame(c, &mut body).map_err(|e| format!("chaos: read: {e}"))? {
            return Err("chaos: unexpected EOF mid-conversation".to_string());
        }
        wire::decode_response(&body).map_err(|e| format!("chaos: decode: {e}"))
    }

    const SHARDS: usize = 2;
    let mut layout = Layout::new();
    for _ in 0..SHARDS {
        layout.push(ObjectInit::FetchAdd(0));
    }
    let handle = Server::builder()
        .shards(SHARDS)
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .map_err(|e| format!("chaos: bind: {e}"))?;
    let addr = handle.local_addr();

    let token = 0xC4A0_5EEDu64;
    let add = Request::Apply {
        pid: 0,
        op: Op::new(ObjectId(0), OpKind::FetchAdd(7)),
    };

    // Life 1: bind the session, apply one effectful op, and get one
    // zero-budget op shed.
    let mut c = TcpStream::connect(addr).map_err(|e| format!("chaos: connect: {e}"))?;
    send(
        &mut c,
        1,
        &Request::Resume {
            token,
            last_acked: 0,
        },
    )?;
    match recv(&mut c)? {
        (
            1,
            Response::Resumed {
                token: t,
                cached: 0,
            },
        ) if t == token => {}
        other => return Err(format!("chaos: fresh resume answered {other:?}")),
    }
    send(&mut c, 2, &add)?;
    if recv(&mut c)? != (2, Response::Ok(Value::Int(0))) {
        return Err("chaos: first application did not see pre-state 0".to_string());
    }
    send(
        &mut c,
        3,
        &Request::DeadlineApply {
            budget_us: 0,
            pid: 0,
            op: Op::new(ObjectId(0), OpKind::FetchAdd(1)),
        },
    )?;
    match recv(&mut c)? {
        (
            3,
            Response::Err {
                code: ErrorCode::Expired,
                ..
            },
        ) => {}
        other => {
            return Err(format!(
                "chaos: zero-budget op answered {other:?}, not Expired"
            ))
        }
    }
    // The "crash": the ack for req 2 was sent but (we pretend) never
    // processed, so the client comes back only sure of req 1.
    drop(c);

    // Life 2: resume the session and retry req 2 verbatim. The reply
    // cache must answer — the original pre-state, not a re-applied 7.
    let mut c2 = TcpStream::connect(addr).map_err(|e| format!("chaos: reconnect: {e}"))?;
    send(
        &mut c2,
        10,
        &Request::Resume {
            token,
            last_acked: 1,
        },
    )?;
    match recv(&mut c2)? {
        (
            10,
            Response::Resumed {
                token: t,
                cached: 1,
            },
        ) if t == token => {}
        other => return Err(format!("chaos: re-resume answered {other:?}")),
    }
    send(&mut c2, 2, &add)?;
    if recv(&mut c2)? != (2, Response::Ok(Value::Int(0))) {
        return Err("chaos: retry was not replayed from the cache".to_string());
    }
    send(
        &mut c2,
        11,
        &Request::Apply {
            pid: 0,
            op: Op::new(ObjectId(0), OpKind::FetchAdd(0)),
        },
    )?;
    if recv(&mut c2)? != (11, Response::Ok(Value::Int(7))) {
        return Err("chaos: duplicate retry was applied twice (exactly-once broken)".to_string());
    }

    // The introspection plane must account for all of the above.
    send(&mut c2, 12, &Request::Introspect)?;
    let text = match recv(&mut c2)? {
        (12, Response::Introspect(json)) => json,
        other => return Err(format!("chaos: introspect answered {other:?}")),
    };
    let doc = json::parse(&text).map_err(|e| format!("chaos: introspect: {e}"))?;
    let stats = doc
        .get("stats")
        .ok_or("chaos: introspect has no \"stats\"")?;
    let stat = |key: &str| {
        stats
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("chaos: no integer stats.{key}"))
    };
    for (key, want) in [("resumes", 2), ("replays", 1), ("sessions", 1), ("shed", 1)] {
        let got = stat(key)?;
        if got < want {
            return Err(format!("chaos: stats.{key} = {got}, expected >= {want}"));
        }
    }
    let shards = doc
        .get("shards")
        .and_then(Json::items)
        .ok_or("chaos: introspect has no \"shards\" array")?;
    let mut shard_shed = 0u64;
    for (i, entry) in shards.iter().enumerate() {
        shard_shed += entry
            .get("shed")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("chaos: shard {i} lacks integer \"shed\""))?;
    }
    if shard_shed != stat("shed")? {
        return Err(format!(
            "chaos: per-shard shed sums to {shard_shed}, stats.shed says {}",
            stat("shed")?
        ));
    }
    drop(c2);

    let stats = handle.shutdown();
    if stats.requests != stats.responses {
        return Err(format!(
            "chaos: server answered {} of {} requests",
            stats.responses, stats.requests
        ));
    }
    let checks = [
        ("resumes", stats.resumes, 2),
        ("replays", stats.replays, 1),
        ("shed", stats.shed, 1),
        ("malformed", stats.malformed, 0),
        ("version_rejects", stats.version_rejects, 0),
    ];
    for (name, got, want) in checks {
        if got != want {
            return Err(format!(
                "chaos: shutdown stats.{name} = {got}, expected {want}"
            ));
        }
    }
    Ok(format!(
        "chaos contract ok: {} requests all answered; resume bound, duplicate retry \
         replayed not re-applied, zero-budget op shed with Expired",
        stats.requests
    ))
}

/// The cluster contract (DESIGN.md §3.15), self-contained: a
/// three-member `bso-cluster` serves recorded traffic across one live
/// migration and one member kill; routing epochs must be monotone at
/// every member, stale clients must be redirected with typed
/// `WrongShard` (counted by the source), the merged multi-server
/// history must be linearizable, and the per-object ledgers must
/// balance to the acked increments exactly.
fn validate_cluster() -> Result<String, String> {
    use std::sync::Arc;

    use bso::client::HistoryRecorder;
    use bso::cluster::{Cluster, ClusterClient};
    use bso::objects::{Layout, ObjectId, ObjectInit, Op, OpKind};
    use bso::sim::check_history;

    const MEMBERS: usize = 3;
    const OBJECTS: usize = 6;
    const ROUNDS: usize = 40;
    const VICTIM: usize = 2;

    let mut layout = Layout::new();
    for _ in 0..OBJECTS {
        layout.push(ObjectInit::FetchAdd(0));
    }
    let mut cluster =
        Cluster::launch(MEMBERS, &layout).map_err(|e| format!("cluster: launch: {e}"))?;
    let seeds: Vec<String> = (0..MEMBERS).map(|i| cluster.addr(i).to_string()).collect();

    // Epoch monotonicity is checked at every member after every
    // table-changing step.
    let mut last_epochs = vec![0u64; MEMBERS];
    let check_epochs = |cluster: &Cluster, last: &mut Vec<u64>, step: &str| -> Result<(), String> {
        for (idx, seen) in last.iter_mut().enumerate() {
            if !cluster.live(idx) {
                continue;
            }
            let (epoch, _) = cluster
                .admin(idx)
                .and_then(|mut c| c.fetch_routing())
                .map_err(|e| format!("cluster: fetch_routing({idx}) after {step}: {e}"))?;
            if epoch < *seen {
                return Err(format!(
                    "cluster: member {idx} routing epoch went BACKWARD {seen} -> {epoch} \
                     after {step}"
                ));
            }
            *seen = epoch;
        }
        Ok(())
    };
    check_epochs(&cluster, &mut last_epochs, "launch")?;

    let rec = Arc::new(HistoryRecorder::new());
    let mut client = ClusterClient::connect(&seeds)
        .map_err(|e| format!("cluster: client connect: {e}"))?
        .with_recorder(Arc::clone(&rec));
    let mut acked = vec![0i64; OBJECTS];
    let pass = |client: &mut ClusterClient, acked: &mut Vec<i64>| -> Result<(), String> {
        for round in 0..ROUNDS {
            let obj = round % OBJECTS;
            client
                .apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                .map_err(|e| format!("cluster: apply: {e}"))?;
            acked[obj] += 1;
        }
        Ok(())
    };

    // Traffic against the launch table, then one live migration the
    // client only discovers through a WrongShard bounce.
    pass(&mut client, &mut acked)?;
    let slice = cluster.owned_ranges(0);
    cluster
        .migrate(0, 1, &slice)
        .map_err(|e| format!("cluster: migrate: {e}"))?;
    check_epochs(&cluster, &mut last_epochs, "migration")?;
    pass(&mut client, &mut acked)?;
    if client.redirects() == 0 {
        return Err("cluster: the stale client was never redirected".into());
    }

    // Planned member loss: evacuate, kill, keep serving.
    cluster
        .evacuate(VICTIM)
        .map_err(|e| format!("cluster: evacuate: {e}"))?;
    let stats = cluster.kill(VICTIM);
    if stats.wrong_shard == 0 && client.redirects() == 0 {
        return Err("cluster: no member ever counted a WrongShard refusal".into());
    }
    check_epochs(&cluster, &mut last_epochs, "kill")?;
    pass(&mut client, &mut acked)?;

    // Exact ledgers on the survivors.
    for (obj, &expect) in acked.iter().enumerate() {
        let owner = (0..MEMBERS)
            .find(|&i| {
                cluster.live(i)
                    && cluster
                        .owned_ranges(i)
                        .iter()
                        .any(|&(lo, hi)| lo <= obj as u64 && obj as u64 <= hi)
            })
            .ok_or_else(|| format!("cluster: object {obj} has no live owner"))?;
        let got = cluster
            .admin(owner)
            .and_then(|mut c| c.apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(0))))
            .map_err(|e| format!("cluster: ledger read {obj}: {e}"))?
            .as_int()
            .ok_or("cluster: non-integer ledger")?;
        if got != expect {
            return Err(format!(
                "cluster: LEDGER VIOLATION on object {obj}: {got} for {expect} acked"
            ));
        }
    }

    // The merged multi-server history is one linearizable whole.
    let log = rec.take_log();
    if log.len() != 3 * ROUNDS {
        return Err(format!(
            "cluster: recorded {} ops for {} acked",
            log.len(),
            3 * ROUNDS
        ));
    }
    check_history(&layout, &log).map_err(|e| format!("cluster: NOT LINEARIZABLE\n{e}"))?;
    let final_epoch = cluster.epoch();
    cluster.shutdown();
    Ok(format!(
        "cluster contract ok: {MEMBERS} members, 1 migration + 1 kill survived; \
         {} merged ops linearizable, ledgers exact, routing epochs monotone to {final_epoch}",
        3 * ROUNDS
    ))
}
