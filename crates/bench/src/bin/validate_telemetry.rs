//! Validates a `bso-telemetry` snapshot artifact.
//!
//! ```text
//! validate_telemetry <snapshot.json> [min_total] [prefix=N ...]
//! ```
//!
//! Exits nonzero unless the file parses as a `bso-telemetry/v1`
//! document whose metrics all carry a known type, holds at least
//! `min_total` metrics (a bare number), and, for each `prefix=N`
//! argument, has at least `N` metrics whose names start with `prefix`.
//! CI runs this over the snapshots the examples write under
//! `BSO_TELEMETRY=path.json`.

use std::process::ExitCode;

use bso_telemetry::json::{self, Json};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_telemetry: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .ok_or("usage: validate_telemetry <snapshot.json> [min_total] [prefix=N ...]")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;

    if !matches!(doc.get("schema"), Some(Json::Str(s)) if s == "bso-telemetry/v1") {
        return Err(format!("{path}: missing or unknown \"schema\""));
    }
    let metrics = doc
        .get("metrics")
        .and_then(Json::entries)
        .ok_or_else(|| format!("{path}: \"metrics\" is missing or not an object"))?;
    for (name, m) in metrics {
        let known = matches!(
            m.get("type"),
            Some(Json::Str(t)) if t == "counter" || t == "gauge" || t == "histogram"
        );
        if !known {
            return Err(format!("{path}: metric {name:?} has no known \"type\""));
        }
    }

    for arg in args {
        match arg.split_once('=') {
            Some((prefix, n)) => {
                let want: usize = n
                    .parse()
                    .map_err(|_| format!("bad argument {arg:?}: expected prefix=N"))?;
                let got = metrics
                    .iter()
                    .filter(|(k, _)| k.starts_with(prefix))
                    .count();
                if got < want {
                    return Err(format!(
                        "{path}: {got} metrics match prefix {prefix:?}, need at least {want}"
                    ));
                }
            }
            None => {
                let want: usize = arg
                    .parse()
                    .map_err(|_| format!("bad argument {arg:?}: expected a count or prefix=N"))?;
                if metrics.len() < want {
                    return Err(format!(
                        "{path}: {} metrics in total, need at least {want}",
                        metrics.len()
                    ));
                }
            }
        }
    }
    Ok(format!("{path}: ok ({} metrics)", metrics.len()))
}
