//! `bsotop` — a live per-shard dashboard for a running `bso-server`.
//!
//! ```text
//! bsotop <addr> [--interval-ms N] [--frames N]
//! bsotop --tail <progress.jsonl> [--interval-ms N] [--frames N]
//! bsotop --cluster <addr1,addr2,...> [--interval-ms N] [--frames N]
//! ```
//!
//! The default mode opens one `bso-wire/v2` connection and polls the
//! server's `Introspect` request (see DESIGN.md §3.13), differencing
//! consecutive `bso-introspect/v1` snapshots into per-shard rates:
//! ops/s, busy rate, live connections, queue depth, apply-latency
//! p50/p99 and wakeups/s, deadline-shed ops/s (the faults column),
//! plus the flight recorder's slow-request counters; the header also
//! tracks the fault-recovery counters (session resumes and
//! exactly-once replays, DESIGN.md §3.14). `--tail` instead follows a `bso-progress/v1` heartbeat
//! file written by a server process running under
//! `BSO_PROGRESS=path.jsonl BSO_TELEMETRY=...` (the serving variant
//! fields), for servers one cannot or does not want to poll.
//!
//! `--cluster` polls `Introspect` across every comma-separated member
//! of a `bso-cluster` deployment and renders one table: per-member
//! routing epoch, owned object-id ranges, migration state (detach
//! count and enablement), request and wrong-shard redirect rates, and
//! shed/s. Dead members render as `down` rows and are re-dialed every
//! frame, so a kill-and-rebalance is visible live.
//!
//! Each frame redraws in place with ANSI clear codes; `--frames N`
//! exits after N frames (0, the default, runs until interrupted or,
//! in poll mode, until the server goes away).

use std::io::{Read, Seek, SeekFrom};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use bso::client::Connection;
use bso_telemetry::json::{self, Json};

const USAGE: &str = "usage: bsotop <addr> [--interval-ms N] [--frames N] \
     | --tail <progress.jsonl> ... | --cluster <addr1,addr2,...> ...";

struct Config {
    target: String,
    tail: bool,
    cluster: bool,
    interval: Duration,
    frames: u64,
}

impl Config {
    fn parse(mut args: impl Iterator<Item = String>) -> Result<Config, String> {
        let mut target = None;
        let mut tail = false;
        let mut cluster = false;
        let mut interval = Duration::from_millis(1000);
        let mut frames = 0u64;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--tail" => {
                    tail = true;
                    target = Some(args.next().ok_or("--tail needs a file")?);
                }
                "--cluster" => {
                    cluster = true;
                    target = Some(args.next().ok_or("--cluster needs addr1,addr2,...")?);
                }
                "--interval-ms" => {
                    let ms: u64 = args
                        .next()
                        .ok_or("--interval-ms needs a value")?
                        .parse()
                        .map_err(|e| format!("--interval-ms: {e}"))?;
                    interval = Duration::from_millis(ms.max(10));
                }
                "--frames" => {
                    frames = args
                        .next()
                        .ok_or("--frames needs a value")?
                        .parse()
                        .map_err(|e| format!("--frames: {e}"))?;
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other if target.is_none() && !other.starts_with('-') => {
                    target = Some(other.to_string());
                }
                other => return Err(format!("unknown argument {other}\n{USAGE}")),
            }
        }
        Ok(Config {
            target: target.ok_or(USAGE)?,
            tail,
            cluster,
            interval,
            frames,
        })
    }
}

/// One differentiable reading of a shard's cumulative counters.
#[derive(Clone, Default)]
struct ShardRow {
    ops: u64,
    conns: u64,
    queue: u64,
    wakeups: u64,
    p50_ns: u64,
    p99_ns: u64,
    shed: u64,
    slow: u64,
    threshold_ns: u64,
}

/// One differentiable reading of the whole snapshot.
#[derive(Clone, Default)]
struct Sample {
    requests: u64,
    responses: u64,
    busy: u64,
    resumes: u64,
    replays: u64,
    shed: u64,
    uptime_ms: u64,
    version: String,
    shards: Vec<ShardRow>,
}

fn u(doc: &Json, outer: &str, key: &str) -> u64 {
    doc.get(outer)
        .and_then(|o| o.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn parse_introspect(text: &str) -> Result<Sample, String> {
    let doc = json::parse(text).map_err(|e| format!("introspect response: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("bso-introspect/v1") => {}
        other => return Err(format!("unexpected introspect schema {other:?}")),
    }
    let shards = doc
        .get("shards")
        .and_then(Json::items)
        .ok_or("introspect response has no \"shards\" array")?
        .iter()
        .map(|s| {
            let hist = |name: &str, field: &str| u(s, name, field);
            ShardRow {
                ops: hist("apply_ns", "count") + hist("elect_ns", "count"),
                conns: s.get("conns").and_then(Json::as_u64).unwrap_or(0),
                queue: s.get("queue_depth").and_then(Json::as_u64).unwrap_or(0),
                wakeups: s.get("wakeups").and_then(Json::as_u64).unwrap_or(0),
                p50_ns: hist("apply_ns", "p50"),
                p99_ns: hist("apply_ns", "p99"),
                shed: s.get("shed").and_then(Json::as_u64).unwrap_or(0),
                slow: s
                    .get("flight")
                    .and_then(|f| f.get("slow"))
                    .and_then(Json::len)
                    .unwrap_or(0) as u64,
                threshold_ns: u(s, "flight", "threshold_ns"),
            }
        })
        .collect();
    Ok(Sample {
        requests: u(&doc, "stats", "requests"),
        responses: u(&doc, "stats", "responses"),
        busy: u(&doc, "stats", "busy"),
        resumes: u(&doc, "stats", "resumes"),
        replays: u(&doc, "stats", "replays"),
        shed: u(&doc, "stats", "shed"),
        uptime_ms: u(&doc, "server", "uptime_ms"),
        version: doc
            .get("server")
            .and_then(|s| s.get("version"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        shards,
    })
}

/// Cumulative-counter rate over the wall-clock gap between two frames.
fn rate(now: u64, then: u64, dt: Duration) -> f64 {
    let secs = dt.as_secs_f64();
    if secs <= 0.0 {
        return 0.0;
    }
    now.saturating_sub(then) as f64 / secs
}

fn clear_frame(first: bool) {
    // Clear + home on every redraw after the first, so the dashboard
    // repaints in place instead of scrolling.
    if !first {
        print!("\x1b[H\x1b[J");
    }
}

fn render(cfg: &Config, s: &Sample, prev: Option<&Sample>, dt: Duration, frame: u64) {
    clear_frame(frame == 0);
    let empty = Sample::default();
    let p = prev.unwrap_or(&empty);
    let req_rate = rate(s.requests, p.requests, dt);
    let busy_d = s.busy.saturating_sub(p.busy);
    let req_d = s.requests.saturating_sub(p.requests);
    let busy_pct = if req_d == 0 {
        0.0
    } else {
        100.0 * busy_d as f64 / req_d as f64
    };
    println!(
        "bso-server v{} @ {} — up {:.1}s — {} requests ({:.0}/s), {} in flight, busy {:.1}%",
        s.version,
        cfg.target,
        s.uptime_ms as f64 / 1e3,
        s.requests,
        req_rate,
        s.requests.saturating_sub(s.responses),
        busy_pct,
    );
    println!(
        "faults: {} resumes (+{}), {} replays (+{}), {} shed (+{})",
        s.resumes,
        s.resumes.saturating_sub(p.resumes),
        s.replays,
        s.replays.saturating_sub(p.replays),
        s.shed,
        s.shed.saturating_sub(p.shed),
    );
    println!(
        "shard    ops/s  conns  queue  p50(us)  p99(us)  wakeups/s  shed/s  slow(>{{thresh}})"
    );
    for (i, row) in s.shards.iter().enumerate() {
        let prev_row = p.shards.get(i).cloned().unwrap_or_default();
        println!(
            "{:>5}  {:>7.0}  {:>5}  {:>5}  {:>7.1}  {:>7.1}  {:>9.0}  {:>6.0}  {:>3} (>{:.0}us)",
            i,
            rate(row.ops, prev_row.ops, dt),
            row.conns,
            row.queue,
            row.p50_ns as f64 / 1e3,
            row.p99_ns as f64 / 1e3,
            rate(row.wakeups, prev_row.wakeups, dt),
            rate(row.shed, prev_row.shed, dt),
            row.slow,
            row.threshold_ns as f64 / 1e3,
        );
    }
}

fn run_poll(cfg: &Config) -> Result<(), String> {
    let mut conn = Connection::builder()
        .connect(&*cfg.target)
        .map_err(|e| format!("{}: {e}", cfg.target))?;
    let mut prev: Option<(Sample, Instant)> = None;
    let mut frame = 0u64;
    loop {
        let text = conn.introspect().map_err(|e| format!("introspect: {e}"))?;
        let now = Instant::now();
        let sample = parse_introspect(&text)?;
        let dt = prev
            .as_ref()
            .map_or(cfg.interval, |(_, at)| now.duration_since(*at));
        render(cfg, &sample, prev.as_ref().map(|(s, _)| s), dt, frame);
        prev = Some((sample, now));
        frame += 1;
        if cfg.frames != 0 && frame >= cfg.frames {
            return Ok(());
        }
        std::thread::sleep(cfg.interval);
    }
}

/// One differentiable reading of one cluster member: serving totals
/// plus the routing section (DESIGN.md §3.15).
#[derive(Clone, Default)]
struct MemberSample {
    up: bool,
    requests: u64,
    wrong_shard: u64,
    shed: u64,
    conns: u64,
    routing_enabled: bool,
    epoch: u64,
    detaches: u64,
    owned: Vec<(u64, u64)>,
}

fn parse_member(text: &str) -> Result<MemberSample, String> {
    let doc = json::parse(text).map_err(|e| format!("introspect response: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("bso-introspect/v1") => {}
        other => return Err(format!("unexpected introspect schema {other:?}")),
    }
    let conns = doc
        .get("shards")
        .and_then(Json::items)
        .map(|shards| {
            shards
                .iter()
                .filter_map(|s| s.get("conns").and_then(Json::as_u64))
                .sum()
        })
        .unwrap_or(0);
    let routing = doc.get("routing");
    let owned = routing
        .and_then(|r| r.get("owned"))
        .and_then(Json::items)
        .map(|ranges| {
            ranges
                .iter()
                .filter_map(|r| {
                    let pair = Json::items(r)?;
                    Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
                })
                .collect()
        })
        .unwrap_or_default();
    Ok(MemberSample {
        up: true,
        requests: u(&doc, "stats", "requests"),
        wrong_shard: u(&doc, "stats", "wrong_shard"),
        shed: u(&doc, "stats", "shed"),
        conns,
        routing_enabled: matches!(
            routing.and_then(|r| r.get("enabled")),
            Some(Json::Bool(true))
        ),
        epoch: routing
            .and_then(|r| r.get("epoch"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        detaches: routing
            .and_then(|r| r.get("detaches"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        owned,
    })
}

/// Renders `[(0,4),(9,u64::MAX)]` as `0-4,9-max`.
fn render_ranges(owned: &[(u64, u64)]) -> String {
    if owned.is_empty() {
        return "∅".into();
    }
    owned
        .iter()
        .map(|&(lo, hi)| {
            let hi = if hi == u64::MAX {
                "max".into()
            } else {
                hi.to_string()
            };
            format!("{lo}-{hi}")
        })
        .collect::<Vec<_>>()
        .join(",")
}

fn render_cluster(
    addrs: &[String],
    now: &[MemberSample],
    prev: &[MemberSample],
    dt: Duration,
    frame: u64,
) {
    clear_frame(frame == 0);
    let epochs: Vec<u64> = now.iter().filter(|m| m.up).map(|m| m.epoch).collect();
    let converged = epochs.windows(2).all(|w| w[0] == w[1]);
    println!(
        "bso-cluster — {} members, {} up, epoch {}{}",
        addrs.len(),
        epochs.len(),
        epochs.iter().max().copied().unwrap_or(0),
        if converged {
            ""
        } else {
            " (table propagating)"
        },
    );
    println!(
        "member                 state     epoch  detaches   req/s  wrongshard/s  shed/s  conns  owned"
    );
    for (i, addr) in addrs.iter().enumerate() {
        let m = &now[i];
        let p = prev.get(i).cloned().unwrap_or_default();
        if !m.up {
            println!("{addr:<22} down");
            continue;
        }
        println!(
            "{:<22} {:<9} {:>5}  {:>8}  {:>6.0}  {:>12.0}  {:>6.0}  {:>5}  {}",
            addr,
            if m.routing_enabled {
                "serving"
            } else {
                "unrouted"
            },
            m.epoch,
            m.detaches,
            rate(m.requests, p.requests, dt),
            rate(m.wrong_shard, p.wrong_shard, dt),
            rate(m.shed, p.shed, dt),
            m.conns,
            render_ranges(&m.owned),
        );
    }
}

fn run_cluster(cfg: &Config) -> Result<(), String> {
    let addrs: Vec<String> = cfg
        .target
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if addrs.len() < 2 {
        return Err("--cluster needs at least two comma-separated addresses".into());
    }
    // One connection slot per member, re-dialed whenever polling fails
    // — members may die and come back under us.
    let mut conns: Vec<Option<Connection>> = addrs.iter().map(|_| None).collect();
    let mut prev: Vec<MemberSample> = vec![MemberSample::default(); addrs.len()];
    let mut last_at: Option<Instant> = None;
    let mut frame = 0u64;
    loop {
        let mut samples = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            if conns[i].is_none() {
                conns[i] = Connection::builder().connect(addr.as_str()).ok();
            }
            let sample = conns[i]
                .as_mut()
                .and_then(|c| c.introspect().ok())
                .and_then(|text| parse_member(&text).ok());
            match sample {
                Some(s) => samples.push(s),
                None => {
                    conns[i] = None;
                    samples.push(MemberSample::default());
                }
            }
        }
        let now = Instant::now();
        let dt = last_at.map_or(cfg.interval, |at| now.duration_since(at));
        render_cluster(&addrs, &samples, &prev, dt, frame);
        prev = samples;
        last_at = Some(now);
        frame += 1;
        if cfg.frames != 0 && frame >= cfg.frames {
            return Ok(());
        }
        std::thread::sleep(cfg.interval);
    }
}

/// One parsed serving heartbeat (the `bso-progress/v1` serving
/// variant); lines without `serve_requests` are from a process that
/// hosts no server and are skipped.
struct Beat {
    elapsed_ms: u64,
    requests: u64,
    responses: u64,
    busy: u64,
    conns: u64,
    depths: Vec<u64>,
}

fn parse_beat(line: &str) -> Option<Beat> {
    let doc = json::parse(line).ok()?;
    Some(Beat {
        elapsed_ms: doc.get("elapsed_ms").and_then(Json::as_u64)?,
        requests: doc.get("serve_requests").and_then(Json::as_u64)?,
        responses: doc
            .get("serve_responses")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        busy: doc.get("serve_busy").and_then(Json::as_u64).unwrap_or(0),
        conns: doc.get("serve_conns").and_then(Json::as_u64).unwrap_or(0),
        depths: doc
            .get("serve_queue_depths")
            .and_then(Json::items)
            .map(|d| d.iter().filter_map(Json::as_u64).collect())
            .unwrap_or_default(),
    })
}

fn render_beat(cfg: &Config, b: &Beat, prev: Option<&Beat>, frame: u64) {
    clear_frame(frame == 0);
    let dt = Duration::from_millis(
        prev.map_or(0, |p| b.elapsed_ms.saturating_sub(p.elapsed_ms))
            .max(1),
    );
    let req_rate = prev.map_or(0.0, |p| rate(b.requests, p.requests, dt));
    println!(
        "heartbeat {} @ {:.1}s — {} requests ({:.0}/s), {} in flight, busy {}, conns {}",
        cfg.target,
        b.elapsed_ms as f64 / 1e3,
        b.requests,
        req_rate,
        b.requests.saturating_sub(b.responses),
        b.busy,
        b.conns,
    );
    println!("queue depths: {:?}", b.depths);
}

fn run_tail(cfg: &Config) -> Result<(), String> {
    let mut file = std::fs::File::open(&cfg.target).map_err(|e| format!("{}: {e}", cfg.target))?;
    let mut offset = 0u64;
    let mut carry = String::new();
    let mut prev: Option<Beat> = None;
    let mut frame = 0u64;
    loop {
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| format!("{}: {e}", cfg.target))?;
        let mut chunk = String::new();
        file.read_to_string(&mut chunk)
            .map_err(|e| format!("{}: {e}", cfg.target))?;
        offset += chunk.len() as u64;
        carry.push_str(&chunk);
        // Only complete lines parse; a trailing partial write waits
        // for the next tick.
        let complete = carry.rfind('\n').map_or(0, |i| i + 1);
        let latest = carry[..complete].lines().filter_map(parse_beat).next_back();
        carry.drain(..complete);
        if let Some(beat) = latest {
            render_beat(cfg, &beat, prev.as_ref(), frame);
            prev = Some(beat);
            frame += 1;
            if cfg.frames != 0 && frame >= cfg.frames {
                return Ok(());
            }
        }
        std::thread::sleep(cfg.interval);
    }
}

fn main() -> ExitCode {
    let cfg = match Config::parse(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if cfg.tail {
        run_tail(&cfg)
    } else if cfg.cluster {
        run_cluster(&cfg)
    } else {
        run_poll(&cfg)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bsotop: {e}");
            ExitCode::FAILURE
        }
    }
}
