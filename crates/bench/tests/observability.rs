//! End-to-end checks for the observability bins: `bsotop` polling a
//! live server (including the fault-recovery counters — resumes,
//! replays and deadline sheds), `bsotop --tail` following a heartbeat
//! file, and `trace_merge` joining two sink exports.
//!
//! The binaries run as real subprocesses (`CARGO_BIN_EXE_*`), so these
//! tests cover argument parsing and output shape, not just the
//! library plumbing underneath.

use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bso::client::Connection;
use bso::objects::{Layout, ObjectId, ObjectInit, Op, OpKind};
use bso::server::Server;
use bso_telemetry::json::{self, Json};
use bso_telemetry::trace::{TraceArg, TraceSink};

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn bsotop_renders_two_frames_from_a_live_server() {
    let mut layout = Layout::new();
    layout.push(ObjectInit::FetchAdd(0));
    layout.push(ObjectInit::FetchAdd(0));
    let handle = Server::builder()
        .shards(2)
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .unwrap();
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let traffic = std::thread::spawn(move || {
        let mut conn = Connection::builder().connect(addr).unwrap();
        while !flag.load(Ordering::Relaxed) {
            for obj in 0..2 {
                conn.apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                    .unwrap();
            }
        }
    });

    let out = Command::new(env!("CARGO_BIN_EXE_bsotop"))
        .args([&addr.to_string(), "--frames", "2", "--interval-ms", "50"])
        .output()
        .expect("spawn bsotop");
    stop.store(true, Ordering::Relaxed);
    traffic.join().unwrap();

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "bsotop failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("bso-server"), "no header in {stdout:?}");
    assert!(stdout.contains("shard"), "no shard table in {stdout:?}");
    // One row per shard per frame.
    assert_eq!(stdout.matches("requests").count(), 2, "two frames rendered");
    handle.shutdown();
}

#[test]
fn bsotop_tails_a_serving_heartbeat_file() {
    let path = tmp("bsotop_tail.jsonl");
    std::fs::write(
        &path,
        concat!(
            r#"{"schema": "bso-progress/v1", "seq": 0, "elapsed_ms": 200, "states": 0, "#,
            r#""frontier": 0, "serve_requests": 100, "serve_responses": 90, "#,
            r#""serve_busy": 0, "serve_conns": 8, "serve_queue_depths": [1, 2]}"#,
            "\n",
            r#"{"schema": "bso-progress/v1", "seq": 1, "elapsed_ms": 400, "states": 0, "#,
            r#""frontier": 0, "serve_requests": 300, "serve_responses": 290, "#,
            r#""serve_busy": 0, "serve_conns": 8, "serve_queue_depths": [0, 3]}"#,
            "\n",
        ),
    )
    .unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_bsotop"))
        .args([
            "--tail",
            path.to_str().unwrap(),
            "--frames",
            "1",
            "--interval-ms",
            "20",
        ])
        .output()
        .expect("spawn bsotop");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "bsotop --tail failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("300 requests"),
        "latest beat wins: {stdout:?}"
    );
    assert!(
        stdout.contains("[0, 3]"),
        "queue depths rendered: {stdout:?}"
    );
}

#[test]
fn trace_merge_joins_two_exports() {
    // Two sinks with skewed clocks, sharing two trace_ids.
    let client = TraceSink::enabled();
    let server = TraceSink::enabled();
    let cw = client.worker("conn0");
    let sw = server.worker("server-loop0");
    for id in [7u64, 9] {
        let t = cw.now_ns();
        cw.event_at(
            t,
            Some(2_000),
            "client.apply",
            [("trace_id", TraceArg::U64(id))],
        );
        let t = sw.now_ns() + 500_000;
        sw.event_at(
            t,
            Some(1_000),
            "server.apply",
            [("trace_id", TraceArg::U64(id))],
        );
    }

    let c_path = tmp("trace_merge_client.json");
    let s_path = tmp("trace_merge_server.json");
    let out_path = tmp("trace_merge_out.json");
    std::fs::write(&c_path, client.export_string()).unwrap();
    std::fs::write(&s_path, server.export_string()).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_trace_merge"))
        .args([&c_path, &s_path, &out_path].map(|p| p.to_str().unwrap().to_string()))
        .output()
        .expect("spawn trace_merge");
    assert!(
        out.status.success(),
        "trace_merge failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("merged 2 requests"),
        "summary line"
    );

    let merged = json::parse(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
    assert_eq!(
        merged.get("schema").and_then(Json::as_str),
        Some("bso-trace/v1"),
        "merged doc keeps the schema"
    );
    assert_eq!(
        merged
            .get("merged")
            .and_then(|m| m.get("matched"))
            .and_then(Json::as_u64),
        Some(2)
    );
}

#[test]
fn bsotop_reports_fault_recovery_counters() {
    use std::io::Write;
    use std::net::TcpStream;

    use bso::objects::Value;
    use bso::server::{wire, ErrorCode, Request, Response};

    fn send(c: &mut TcpStream, id: u64, req: &Request) {
        let mut buf = Vec::new();
        wire::encode_request(id, req, &mut buf).unwrap();
        c.write_all(&buf).unwrap();
    }
    fn recv(c: &mut TcpStream) -> (u64, Response) {
        let mut body = Vec::new();
        assert!(wire::read_frame(c, &mut body).unwrap(), "unexpected EOF");
        wire::decode_response(&body).unwrap()
    }

    let mut layout = Layout::new();
    layout.push(ObjectInit::FetchAdd(0));
    layout.push(ObjectInit::FetchAdd(0));
    let handle = Server::builder()
        .shards(2)
        .pin_cores(false)
        .bind("127.0.0.1:0", &layout)
        .unwrap();
    let addr = handle.local_addr();

    // Force one of each recovery event: a session resume, a shed
    // zero-budget op, and (after a simulated crash) a duplicate-retry
    // replay — then the dashboard must surface all three.
    let token = 0x70_u64;
    let add = Request::Apply {
        pid: 0,
        op: Op::new(ObjectId(0), OpKind::FetchAdd(3)),
    };
    let mut c = TcpStream::connect(addr).unwrap();
    send(
        &mut c,
        1,
        &Request::Resume {
            token,
            last_acked: 0,
        },
    );
    recv(&mut c);
    send(&mut c, 2, &add);
    assert_eq!(recv(&mut c), (2, Response::Ok(Value::Int(0))));
    send(
        &mut c,
        3,
        &Request::DeadlineApply {
            budget_us: 0,
            pid: 0,
            op: Op::new(ObjectId(0), OpKind::FetchAdd(1)),
        },
    );
    assert!(matches!(
        recv(&mut c).1,
        Response::Err {
            code: ErrorCode::Expired,
            ..
        }
    ));
    drop(c);
    let mut c2 = TcpStream::connect(addr).unwrap();
    send(
        &mut c2,
        10,
        &Request::Resume {
            token,
            last_acked: 1,
        },
    );
    recv(&mut c2);
    send(&mut c2, 2, &add);
    assert_eq!(recv(&mut c2), (2, Response::Ok(Value::Int(0))), "replayed");

    let out = Command::new(env!("CARGO_BIN_EXE_bsotop"))
        .args([&addr.to_string(), "--frames", "1"])
        .output()
        .expect("spawn bsotop");
    drop(c2);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "bsotop failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("faults: 2 resumes (+2), 1 replays (+1), 1 shed (+1)"),
        "fault counters rendered: {stdout:?}"
    );
    assert!(stdout.contains("shed/s"), "per-shard column: {stdout:?}");

    let stats = handle.shutdown();
    assert_eq!((stats.resumes, stats.replays, stats.shed), (2, 1, 1));
    assert_eq!(stats.requests, stats.responses);
}
