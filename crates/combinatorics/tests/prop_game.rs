//! Property tests for the Lemma 1.1 game and its potential argument.
//!
//! Seeded random-input loops (no external property-testing crate): each
//! case is reproducible from the fixed seed.

use bso_combinatorics::game::{audit_potential, Game, GameAction};
use bso_objects::rng::SplitMix64;

/// Plays a random legal run and returns it.
fn random_run(k: usize, starts: &[usize], choices: &[u32]) -> Vec<GameAction> {
    let mut g = Game::new(k, starts);
    let mut run = Vec::new();
    for &c in choices {
        let actions = g.legal_actions();
        if actions.is_empty() {
            break;
        }
        let a = actions[c as usize % actions.len()];
        g.act(a).unwrap();
        run.push(a);
    }
    run
}

fn random_choices(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<u32> {
    (0..rng.range_usize(lo, hi))
        .map(|_| rng.next_u64() as u32)
        .collect()
}

/// The lemma's accounting, audited move by move on random runs: with
/// levels fixed from the final graph, every Move strictly decreases the
/// potential (m ≥ 2), and the initial potential is at most
/// m·m^(k−1) = m^k.
#[test]
fn potential_decreases_on_every_move() {
    let mut rng = SplitMix64::new(11);
    for case in 0..200 {
        let k = rng.range_usize(2, 5);
        let m = rng.range_usize(2, 4);
        let choices = random_choices(&mut rng, 1, 100);
        let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
        let run = random_run(k, &starts, &choices);
        let pots = audit_potential(k, &starts, &run);

        // Recompute the final levels for the initial potential.
        let mut g = Game::new(k, &starts);
        for &a in &run {
            g.act(a).unwrap();
        }
        let levels = g.levels();
        let initial = Game::new(k, &starts).potential(&levels);
        assert!(initial <= (m as u128).pow(k as u32), "case {case}");

        let mut prev = initial;
        for (i, &a) in run.iter().enumerate() {
            if matches!(a, GameAction::Move { .. }) {
                assert!(
                    pots[i] < prev,
                    "case {case}: move {i} did not decrease the potential ({} → {})",
                    prev,
                    pots[i]
                );
            }
            prev = pots[i];
        }
    }
}

/// Freshness is conserved: at any point, an agent's jump targets are
/// exactly the nodes that received a move by another agent since the
/// agent's last visit.
#[test]
fn freshness_bookkeeping() {
    let mut rng = SplitMix64::new(22);
    for case in 0..200 {
        let k = rng.range_usize(2, 5);
        let m = rng.range_usize(2, 4);
        let choices = random_choices(&mut rng, 1, 80);
        let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
        let mut g = Game::new(k, &starts);
        // Shadow bookkeeping.
        let mut fresh = vec![vec![false; k]; m];
        for &c in &choices {
            let actions = g.legal_actions();
            if actions.is_empty() {
                break;
            }
            let a = actions[c as usize % actions.len()];
            g.act(a).unwrap();
            match a {
                GameAction::Move { agent, to } => {
                    for (b, row) in fresh.iter_mut().enumerate() {
                        row[to] = b != agent;
                    }
                }
                GameAction::Jump { agent, to } => {
                    fresh[agent][to] = false;
                }
            }
            for (b, row) in fresh.iter().enumerate() {
                for (u, &f) in row.iter().enumerate() {
                    assert_eq!(g.is_fresh(b, u), f, "case {case}: agent {b} node {u}");
                }
            }
        }
    }
}

/// Moves never close a cycle: after any legal run the painted graph is
/// acyclic (checked via the level assignment).
#[test]
fn painted_graph_stays_acyclic() {
    let mut rng = SplitMix64::new(33);
    for case in 0..200 {
        let k = rng.range_usize(2, 6);
        let m = rng.range_usize(1, 4);
        let choices = random_choices(&mut rng, 1, 100);
        let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
        let run = random_run(k, &starts, &choices);
        let mut g = Game::new(k, &starts);
        for &a in &run {
            g.act(a).unwrap();
        }
        let levels = g.levels();
        for u in 0..k {
            for v in 0..k {
                if u != v && g.is_painted(u, v) {
                    assert!(levels[u] > levels[v], "case {case}: edge {u}→{v}");
                }
            }
        }
    }
}
