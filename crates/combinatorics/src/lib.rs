//! Combinatorial machinery of the reproduction of Afek & Stupp
//! (PODC 1994).
//!
//! Three pieces live here:
//!
//! * [`perm`] — permutations in factorial-number-system (Lehmer)
//!   encoding. The paper's *labels* are the orders in which fresh
//!   values first enter the `compare&swap-(k)` history — permutation
//!   prefixes of the k−1 non-⊥ symbols; the `LabelElection` protocol
//!   of `bso-protocols` uses the pid ↔ permutation bijection directly.
//! * [`game`] — the move/jump agent game of **Lemma 1.1** (due to Noga
//!   Alon): `m` agents on a complete directed graph of `k` nodes can
//!   make at most `m^k` *moves* before the painted edges contain a
//!   cycle. [`game::audit_potential`] audits the lemma's potential function,
//!   [`search`] finds exact maxima exhaustively for small instances.
//! * [`bounds`] — the bound landscape of `n_k` (the maximum number of
//!   processes that can elect a leader with one `compare&swap-(k)` and
//!   unbounded read/write memory): the Burns–Cruz–Loui floor `k−1`,
//!   the algorithmic `(k−1)!`, the paper's ceiling `O(k^(k²+3))`, and
//!   the conjecture Θ(k!).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod game;
pub mod perm;
pub mod search;
