//! The bound landscape of `n_k`.
//!
//! `n_k` is the maximum number of processes that can wait-freely elect
//! a leader in a system with one `compare&swap-(k)` register and
//! unbounded read/write memory. The paper (with its companions)
//! brackets it:
//!
//! | bound | source |
//! |---|---|
//! | `n_k = k − 1` with the compare&swap **alone** | Burns–Cruz–Loui \[5\] |
//! | `n_k ≥ (k−1)! = Θ(k!)` | Afek–Stupp FOCS '93 \[1\] (here: `LabelElection`) |
//! | `n_k ≤ O(k^(k²+3))` | **this paper, Theorem 1** |
//! | `n_k = Θ(k!)` | the paper's closing conjecture |
//!
//! The functions here make the landscape printable (`examples/
//! bounds_table.rs` regenerates the comparison) and give the exact
//! parameters the other crates use (`labels(k)` emulator groups, etc.).

use crate::perm::factorial;

/// The Burns–Cruz–Loui bound: a `compare&swap-(k)` with **no**
/// read/write registers elects at most `k − 1` processes.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn burns_bound(k: usize) -> usize {
    assert!(k >= 2, "compare&swap-(k) needs k >= 2");
    k - 1
}

/// The number of distinct *labels* — permutations of the `k−1` non-⊥
/// symbols, all histories starting with ⊥: `(k−1)!`.
///
/// This is both the number of emulator groups in the reduction (and
/// hence the set-consensus parameter) and the process count of the
/// `LabelElection` algorithm.
pub fn labels(k: usize) -> u128 {
    assert!(k >= 2, "compare&swap-(k) needs k >= 2");
    factorial(k - 1)
}

/// The algorithmic lower bound on `n_k` realized in this repository:
/// `(k−1)!` processes elect with one `compare&swap-(k)` plus
/// read/write registers (`bso-protocols::LabelElection`).
pub fn nk_algorithmic(k: usize) -> u128 {
    labels(k)
}

/// The paper's upper bound `k^(k²+3)` as an exact `u128`, or `None`
/// when it overflows (use [`nk_upper_log2`] then).
pub fn nk_upper(k: usize) -> Option<u128> {
    let exp = k.checked_mul(k)?.checked_add(3)?;
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(k as u128)?;
    }
    Some(acc)
}

/// `log₂` of the paper's upper bound `k^(k²+3)`.
pub fn nk_upper_log2(k: usize) -> f64 {
    ((k * k + 3) as f64) * (k as f64).log2()
}

/// The paper's conjectured truth `n_k = Θ(k!)` — the `k!` reference
/// curve.
pub fn conjecture(k: usize) -> u128 {
    factorial(k)
}

/// One row of the bound landscape for a given `k`.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundsRow {
    /// Domain size of the compare&swap register.
    pub k: usize,
    /// `k − 1`: compare&swap alone (Burns–Cruz–Loui).
    pub cas_alone: usize,
    /// `(k−1)!`: achieved with read/write registers added
    /// (`LabelElection`).
    pub with_registers: u128,
    /// `k!`: the conjectured order of `n_k`.
    pub conjectured: u128,
    /// `k^(k²+3)` exactly, when it fits in a `u128`.
    pub upper: Option<u128>,
    /// `log₂ k^(k²+3)` (always available).
    pub upper_log2: f64,
}

/// The landscape for `k = 3 ..= k_max`.
///
/// # Example
///
/// ```
/// use bso_combinatorics::bounds::landscape;
/// let rows = landscape(5);
/// assert_eq!(rows[0].k, 3);
/// assert_eq!(rows[1].cas_alone, 3);        // k=4: 3 processes
/// assert_eq!(rows[1].with_registers, 6);   // k=4: 3! = 6 processes
/// ```
pub fn landscape(k_max: usize) -> Vec<BoundsRow> {
    (3..=k_max)
        .map(|k| BoundsRow {
            k,
            cas_alone: burns_bound(k),
            with_registers: nk_algorithmic(k),
            conjectured: conjecture(k),
            upper: nk_upper(k),
            upper_log2: nk_upper_log2(k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(burns_bound(3), 2);
        assert_eq!(labels(3), 2);
        assert_eq!(labels(4), 6);
        assert_eq!(nk_algorithmic(5), 24);
        assert_eq!(conjecture(4), 24);
        assert_eq!(nk_upper(2), Some(1 << 7)); // 2^(4+3)
        assert_eq!(nk_upper(3), Some(3u128.pow(12)));
    }

    #[test]
    fn upper_bound_overflows_gracefully() {
        // 6^39 ≈ 2^100.8 still fits a u128; 7^52 ≈ 2^145.9 does not —
        // past there only the log is available.
        assert!(nk_upper(6).is_some());
        assert!(nk_upper(7).is_none());
        assert!(nk_upper_log2(7) > 128.0);
    }

    #[test]
    fn the_paper_ordering_holds() {
        // k−1 < (k−1)! ≤ k! ≤ k^(k²+3) for every k ≥ 4 (and the first
        // inequality is weak at k=3 where both are 2).
        for row in landscape(7) {
            assert!(row.cas_alone as u128 <= row.with_registers);
            assert!(row.with_registers <= row.conjectured);
            if let Some(u) = row.upper {
                assert!(row.conjectured <= u);
            }
            if row.k >= 4 {
                assert!((row.cas_alone as u128) < row.with_registers);
            }
        }
    }

    #[test]
    fn log_matches_exact_when_available() {
        for k in 3..=6 {
            let exact = nk_upper(k).unwrap() as f64;
            let log = nk_upper_log2(k);
            assert!((exact.log2() - log).abs() < 1e-9);
        }
    }
}
