//! The move/jump agent game of Lemma 1.1.
//!
//! > *Consider the following process in a complete directed graph on
//! > `k` nodes with `m` agents that are initially placed in the nodes
//! > of the graph. In the process each agent can repeatedly do one of
//! > the following two actions:*
//! >
//! > 1. **Move**: an agent moves from its current node `v` to some
//! >    other node `u`, painting the `v → u` edge.
//! > 2. **Jump**: an agent relocates itself to a node `u`. This step
//! >    is possible only if, since the last time the agent visited `u`
//! >    (or if it never visited `u`), another agent has *moved* to
//! >    `u`.
//! >
//! > *What is the maximum number of moves the agents can do before the
//! > painted edges contain a cycle?* — **Lemma 1.1** (proof due to
//! > Noga Alon): `m^k`.
//!
//! The lemma is the counting heart of the paper's key invariant (each
//! tree node can always reach its ancestors through high-excess edges),
//! and its potential-function proof fixes a topological sort of the
//! *final* painted graph, assigns weight `m^level` to an agent at a
//! node of that level, and observes that every move costs the mover at
//! least `m^j(m−1)` while enabling at most `m−1` jumps that gain less
//! than `m^j` each — a net decrease of at least `m−1` ≥ 1.
//!
//! **A degenerate case the extended abstract glosses over:** for
//! `m = 1` there are no other agents to enable jumps and the net-
//! decrease argument degenerates (`m−1 = 0`); a single agent can walk
//! any acyclic path, achieving exactly `k−1` moves, which exceeds
//! `1^k = 1`. The lemma therefore implicitly assumes `m ≥ 2` — which
//! always holds in the emulation, where `m = (k−1)!+1 ≥ 2`. Our
//! exhaustive search ([`crate::search`]) verifies `max_moves ≤ m^k`
//! for all small instances with `m ≥ 2` and `max_moves = k−1` for
//! `m = 1`.

use std::fmt;

/// A node of the complete directed graph.
pub type Node = usize;

/// An agent index.
pub type Agent = usize;

/// One action of the game.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GameAction {
    /// Move `agent` from its current node to `to`, painting the edge.
    Move {
        /// The acting agent.
        agent: Agent,
        /// Destination node.
        to: Node,
    },
    /// Relocate `agent` to `to` without painting (freshness required).
    Jump {
        /// The acting agent.
        agent: Agent,
        /// Destination node.
        to: Node,
    },
}

/// Why an action was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GameError {
    /// Moving to the node the agent already occupies.
    SelfMove,
    /// The move would close a cycle in the painted edges (game over
    /// condition — such moves are not playable).
    WouldClose,
    /// Jump target is not fresh for this agent (no move into it since
    /// the agent's last visit).
    NotFresh,
    /// Agent or node index out of range.
    OutOfRange,
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GameError::SelfMove => "agent cannot move to its own node",
            GameError::WouldClose => "move would close a painted cycle",
            GameError::NotFresh => "jump target not fresh for this agent",
            GameError::OutOfRange => "agent or node out of range",
        };
        f.write_str(s)
    }
}

impl std::error::Error for GameError {}

/// The game state: agent positions, painted edges, per-agent freshness.
///
/// # Example
///
/// ```
/// use bso_combinatorics::game::{Game, GameAction};
///
/// let mut g = Game::new(3, &[0, 0]); // k = 3 nodes, 2 agents at node 0
/// g.act(GameAction::Move { agent: 0, to: 1 }).unwrap();
/// // node 1 received a move: agent 1 may jump there.
/// g.act(GameAction::Jump { agent: 1, to: 1 }).unwrap();
/// assert_eq!(g.moves(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Game {
    k: usize,
    positions: Vec<Node>,
    /// painted[u * k + v] — edge u → v painted.
    painted: Vec<bool>,
    /// fresh[a * k + u] — agent `a` may jump to `u`.
    fresh: Vec<bool>,
    moves: usize,
}

impl Game {
    /// A fresh game on `k` nodes with agents at the given start nodes.
    ///
    /// A jump to `u` always requires that *another agent has moved to
    /// `u`* — the lemma's parenthetical "(or if the agent has never
    /// visited node `u`)" only relaxes the reference point of "since
    /// the last visit", it does not waive the required move. Freshness
    /// therefore starts `false` everywhere. (Reading it the permissive
    /// way — unvisited nodes jumpable for free — breaks the `m^k`
    /// bound already at `k = 4, m = 2`, where exhaustive search finds
    /// 22 > 16 moves; see `tests/` and EXPERIMENTS.md.)
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or a start node is out of range.
    pub fn new(k: usize, starts: &[Node]) -> Game {
        assert!(k >= 2, "the complete digraph needs at least 2 nodes");
        assert!(starts.iter().all(|&s| s < k), "start node out of range");
        let m = starts.len();
        Game {
            k,
            positions: starts.to_vec(),
            painted: vec![false; k * k],
            fresh: vec![false; m * k],
            moves: 0,
        }
    }

    /// Number of nodes `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of agents `m`.
    pub fn agents(&self) -> usize {
        self.positions.len()
    }

    /// Moves played so far.
    pub fn moves(&self) -> usize {
        self.moves
    }

    /// Current node of `agent`.
    pub fn position(&self, agent: Agent) -> Node {
        self.positions[agent]
    }

    /// Whether edge `u → v` is painted.
    pub fn is_painted(&self, u: Node, v: Node) -> bool {
        self.painted[u * self.k + v]
    }

    /// Whether `agent` may currently jump to `to`.
    pub fn is_fresh(&self, agent: Agent, to: Node) -> bool {
        self.fresh[agent * self.k + to]
    }

    /// Whether painting `u → v` would create a cycle (i.e. `u` is
    /// reachable from `v` along painted edges).
    #[allow(clippy::needless_range_loop)] // adjacency-matrix index walk
    pub fn would_close(&self, u: Node, v: Node) -> bool {
        if u == v {
            return true;
        }
        // DFS from v looking for u.
        let mut stack = vec![v];
        let mut seen = vec![false; self.k];
        seen[v] = true;
        while let Some(x) = stack.pop() {
            if x == u {
                return true;
            }
            for y in 0..self.k {
                if self.painted[x * self.k + y] && !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
        false
    }

    /// All actions legal in the current state.
    pub fn legal_actions(&self) -> Vec<GameAction> {
        let mut out = Vec::new();
        for a in 0..self.agents() {
            let from = self.positions[a];
            for to in 0..self.k {
                if to != from && !self.would_close(from, to) {
                    out.push(GameAction::Move { agent: a, to });
                }
                if to != from && self.fresh[a * self.k + to] {
                    out.push(GameAction::Jump { agent: a, to });
                }
            }
        }
        out
    }

    /// Plays one action.
    ///
    /// # Errors
    ///
    /// [`GameError`] if the action is illegal; the state is unchanged.
    pub fn act(&mut self, action: GameAction) -> Result<(), GameError> {
        match action {
            GameAction::Move { agent, to } => {
                if agent >= self.agents() || to >= self.k {
                    return Err(GameError::OutOfRange);
                }
                let from = self.positions[agent];
                if to == from {
                    return Err(GameError::SelfMove);
                }
                if self.would_close(from, to) {
                    return Err(GameError::WouldClose);
                }
                self.painted[from * self.k + to] = true;
                self.positions[agent] = to;
                self.moves += 1;
                // The move refreshes `to` for every *other* agent; the
                // mover itself is now visiting `to`.
                for b in 0..self.agents() {
                    self.fresh[b * self.k + to] = b != agent;
                }
                Ok(())
            }
            GameAction::Jump { agent, to } => {
                if agent >= self.agents() || to >= self.k {
                    return Err(GameError::OutOfRange);
                }
                if to == self.positions[agent] {
                    return Err(GameError::NotFresh);
                }
                if !self.fresh[agent * self.k + to] {
                    return Err(GameError::NotFresh);
                }
                self.positions[agent] = to;
                self.fresh[agent * self.k + to] = false;
                Ok(())
            }
        }
    }

    /// A topological level assignment of the painted (acyclic) graph:
    /// `level(v)` = length of the longest painted path starting at
    /// `v`, so every painted edge goes from a strictly higher to a
    /// strictly lower level — the sort the lemma's proof uses.
    pub fn levels(&self) -> Vec<usize> {
        let mut memo = vec![usize::MAX; self.k];
        fn go(g: &Game, v: Node, memo: &mut [usize]) -> usize {
            if memo[v] != usize::MAX {
                return memo[v];
            }
            memo[v] = 0; // acyclic by invariant; 0 placeholder is safe
            let mut best = 0;
            for u in 0..g.k {
                if g.painted[v * g.k + u] {
                    best = best.max(1 + go(g, u, memo));
                }
            }
            memo[v] = best;
            best
        }
        for v in 0..self.k {
            go(self, v, &mut memo);
        }
        memo
    }

    /// The lemma's potential: Σ over agents of `m^level(position)`,
    /// computed against the supplied level assignment (the proof fixes
    /// the levels of the *final* graph; pass [`Game::levels`] of the
    /// final state to audit a whole run).
    pub fn potential(&self, levels: &[usize]) -> u128 {
        let m = self.agents() as u128;
        self.positions
            .iter()
            .map(|&p| m.pow(levels[p] as u32))
            .sum()
    }
}

/// Replays a run and checks the lemma's accounting: with levels fixed
/// from the final state, every **move** strictly decreases the
/// potential (for `m ≥ 2`), jumps included in the interleaving.
///
/// Returns the potential after every action.
///
/// # Panics
///
/// Panics if an action in `run` is illegal.
pub fn audit_potential(k: usize, starts: &[Node], run: &[GameAction]) -> Vec<u128> {
    // First pass: find the final painted graph.
    let mut g = Game::new(k, starts);
    for &a in run {
        g.act(a)
            .unwrap_or_else(|e| panic!("illegal action {a:?}: {e}"));
    }
    let levels = g.levels();
    // Second pass: account.
    let mut g = Game::new(k, starts);
    let mut out = Vec::with_capacity(run.len());
    for &a in run {
        g.act(a).unwrap();
        out.push(g.potential(&levels));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_paint_and_cycles_are_blocked() {
        let mut g = Game::new(3, &[0]);
        g.act(GameAction::Move { agent: 0, to: 1 }).unwrap();
        g.act(GameAction::Move { agent: 0, to: 2 }).unwrap();
        assert!(g.is_painted(0, 1) && g.is_painted(1, 2));
        // 2 → 0 would close 0→1→2→0; 2 → 1 would close 1→2→1.
        assert_eq!(
            g.act(GameAction::Move { agent: 0, to: 0 }),
            Err(GameError::WouldClose)
        );
        assert_eq!(
            g.act(GameAction::Move { agent: 0, to: 1 }),
            Err(GameError::WouldClose)
        );
        assert_eq!(g.moves(), 2); // single agent, k=3: the k−1 maximum
    }

    #[test]
    fn jump_requires_a_move_into_the_target() {
        let mut g = Game::new(3, &[0, 1]);
        // No move into node 2 yet: no jump, even though agent 1 never
        // visited it.
        assert_eq!(
            g.act(GameAction::Jump { agent: 1, to: 2 }),
            Err(GameError::NotFresh)
        );
        g.act(GameAction::Move { agent: 0, to: 2 }).unwrap();
        // Node 2 is now fresh — for agent 1, not for the mover itself.
        assert!(g.is_fresh(1, 2));
        assert!(!g.is_fresh(0, 2));
        g.act(GameAction::Jump { agent: 1, to: 2 }).unwrap();
        // Freshness is consumed by the visit.
        assert!(!g.is_fresh(1, 2));
        assert_eq!(g.moves(), 1);
    }

    #[test]
    fn self_moves_rejected() {
        let mut g = Game::new(2, &[0]);
        assert_eq!(
            g.act(GameAction::Move { agent: 0, to: 0 }),
            Err(GameError::SelfMove)
        );
        assert_eq!(
            g.act(GameAction::Move { agent: 7, to: 0 }),
            Err(GameError::OutOfRange)
        );
    }

    #[test]
    fn levels_respect_painted_edges() {
        let mut g = Game::new(4, &[0]);
        g.act(GameAction::Move { agent: 0, to: 1 }).unwrap();
        g.act(GameAction::Move { agent: 0, to: 2 }).unwrap();
        let levels = g.levels();
        // 0 → 1 → 2 painted: level(0) > level(1) > level(2).
        assert!(levels[0] > levels[1] && levels[1] > levels[2]);
        assert_eq!(levels[2], 0);
    }

    #[test]
    fn potential_audit_decreases_on_moves_m2() {
        // Two agents, k = 3: a run mixing moves and jumps.
        let run = vec![
            GameAction::Move { agent: 0, to: 1 },
            GameAction::Jump { agent: 1, to: 1 },
            GameAction::Move { agent: 1, to: 2 },
            GameAction::Move { agent: 0, to: 2 },
        ];
        let starts = [0, 0];
        let pots = audit_potential(3, &starts, &run);
        // Recompute the initial potential for the final levels.
        let mut g = Game::new(3, &starts);
        for &a in &run {
            g.act(a).unwrap();
        }
        let levels = g.levels();
        let initial = Game::new(3, &starts).potential(&levels);
        // Every *move* must strictly decrease the potential (jumps may
        // raise it, but the net per move is still a decrease).
        let mut prev = initial;
        let mut moves_seen = 0;
        for (i, &a) in run.iter().enumerate() {
            if matches!(a, GameAction::Move { .. }) {
                // potential right after this move vs before the move
                assert!(pots[i] < prev, "move {i} did not decrease potential");
                moves_seen += 1;
            }
            prev = pots[i];
        }
        assert_eq!(moves_seen, 3);
        // m^k bound: 2^3 = 8 moves at most; we made 3.
        assert!(moves_seen <= 8);
    }

    #[test]
    fn legal_actions_enumeration_is_consistent() {
        let mut g = Game::new(3, &[0, 2]);
        for _ in 0..50 {
            let actions = g.legal_actions();
            if actions.is_empty() {
                break;
            }
            for &a in &actions {
                let mut copy = g.clone();
                copy.act(a).unwrap();
            }
            g.act(actions[0]).unwrap();
        }
    }
}
