//! Permutations in Lehmer (factorial-number-system) encoding.
//!
//! The paper's *labels* — the orders in which fresh values first enter
//! the `compare&swap-(k)` register — are permutations (or prefixes of
//! permutations) of the k−1 non-⊥ symbols, so there are at most
//! `(k−1)!` of them (Section 3.1). The `LabelElection` protocol needs
//! a bijection between process ids `0 .. (k−1)!` and those
//! permutations; this module provides it.

/// `n!` as a `u128`.
///
/// # Panics
///
/// Panics on overflow (`n > 34`).
pub fn factorial(n: usize) -> u128 {
    (1..=n as u128).product()
}

/// `n!` as a `usize`, or `None` if it does not fit.
pub fn factorial_usize(n: usize) -> Option<usize> {
    let f = factorial(n);
    usize::try_from(f).ok()
}

/// Decodes `rank` (0-based, `< m!`) into the permutation of
/// `0 .. m` with that lexicographic rank.
///
/// # Example
///
/// ```
/// use bso_combinatorics::perm::{nth_permutation, permutation_rank};
/// assert_eq!(nth_permutation(0, 3), vec![0, 1, 2]);
/// assert_eq!(nth_permutation(5, 3), vec![2, 1, 0]);
/// assert_eq!(permutation_rank(&[2, 1, 0]), 5);
/// ```
///
/// # Panics
///
/// Panics if `rank >= m!`.
pub fn nth_permutation(rank: u128, m: usize) -> Vec<u8> {
    assert!(rank < factorial(m), "rank {rank} out of range for m = {m}");
    assert!(
        m <= u8::MAX as usize + 1,
        "m = {m} too large for u8 elements"
    );
    let mut pool: Vec<u8> = (0..m as u8).collect();
    let mut out = Vec::with_capacity(m);
    let mut r = rank;
    for i in (1..=m).rev() {
        let f = factorial(i - 1);
        let idx = (r / f) as usize;
        r %= f;
        out.push(pool.remove(idx));
    }
    out
}

/// The lexicographic rank of a permutation of `0 .. perm.len()`
/// (inverse of [`nth_permutation`]).
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0 .. perm.len()`.
pub fn permutation_rank(perm: &[u8]) -> u128 {
    let m = perm.len();
    let mut seen = vec![false; m];
    for &x in perm {
        assert!(
            (x as usize) < m && !seen[x as usize],
            "not a permutation: {perm:?}"
        );
        seen[x as usize] = true;
    }
    let mut rank: u128 = 0;
    for (i, &x) in perm.iter().enumerate() {
        let smaller_unused = perm[i + 1..].iter().filter(|&&y| y < x).count() as u128;
        rank += smaller_unused * factorial(m - 1 - i);
    }
    rank
}

/// Whether `prefix` is a prefix of `perm`.
pub fn is_prefix(prefix: &[u8], perm: &[u8]) -> bool {
    prefix.len() <= perm.len() && perm[..prefix.len()] == *prefix
}

/// All permutations of `0 .. m`, in lexicographic order.
///
/// Intended for small `m` (tests and exhaustive experiments).
pub fn all_permutations(m: usize) -> Vec<Vec<u8>> {
    let total = factorial(m);
    (0..total).map(|r| nth_permutation(r, m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(1), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(20), 2_432_902_008_176_640_000);
        assert_eq!(factorial_usize(5), Some(120));
        assert_eq!(factorial_usize(30), None); // 30! > usize::MAX (64-bit)
    }

    #[test]
    fn rank_roundtrip_exhaustive() {
        for m in 0..=5 {
            for r in 0..factorial(m) {
                let p = nth_permutation(r, m);
                assert_eq!(permutation_rank(&p), r, "m={m} r={r} p={p:?}");
            }
        }
    }

    #[test]
    fn lexicographic_order() {
        let perms = all_permutations(4);
        assert_eq!(perms.len(), 24);
        for w in perms.windows(2) {
            assert!(w[0] < w[1], "not lexicographic: {:?} {:?}", w[0], w[1]);
        }
        assert_eq!(perms[0], vec![0, 1, 2, 3]);
        assert_eq!(perms[23], vec![3, 2, 1, 0]);
    }

    #[test]
    fn prefix_checks() {
        assert!(is_prefix(&[], &[1, 0]));
        assert!(is_prefix(&[1], &[1, 0]));
        assert!(is_prefix(&[1, 0], &[1, 0]));
        assert!(!is_prefix(&[0], &[1, 0]));
        assert!(!is_prefix(&[1, 0, 2], &[1, 0]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_bound_enforced() {
        let _ = nth_permutation(6, 3);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rank_rejects_non_permutations() {
        let _ = permutation_rank(&[0, 0]);
    }
}
