//! Exhaustive and heuristic strategy search for the Lemma 1.1 game.
//!
//! [`max_moves`] computes, by memoized exhaustive search over all
//! action sequences, the exact maximum number of moves `m` agents can
//! make on the complete `k`-node digraph before the painted edges
//! contain a cycle — the quantity Lemma 1.1 bounds by `m^k` (for
//! `m ≥ 2`; see the [`crate::game`] docs for the `m = 1` degeneracy).
//! State spaces grow quickly; exhaustive search is practical for
//! `k ≤ 4`, `m ≤ 2` and `k ≤ 3`, `m ≤ 3`.
//!
//! [`greedy_moves`] plays a cheap heuristic strategy (prefer moves,
//! then jumps that re-enable future moves) to produce lower-bound
//! witnesses on larger instances.

use std::collections::HashMap;

use crate::game::{Game, GameAction, Node};

/// The exact maximum number of moves from the given start position,
/// over all strategies, before any further move would close a painted
/// cycle.
///
/// # Example
///
/// ```
/// use bso_combinatorics::search::max_moves;
/// // One agent can walk one Hamiltonian path: k − 1 moves.
/// assert_eq!(max_moves(3, &[0]), 2);
/// ```
pub fn max_moves(k: usize, starts: &[Node]) -> usize {
    let mut memo: HashMap<Game, usize> = HashMap::new();
    fn go(g: &Game, memo: &mut HashMap<Game, usize>) -> usize {
        if let Some(&hit) = memo.get(g) {
            return hit;
        }
        let mut best = 0;
        for a in g.legal_actions() {
            let mut next = g.clone();
            next.act(a)
                .expect("legal_actions returned an illegal action");
            let gain = usize::from(matches!(a, GameAction::Move { .. }));
            best = best.max(gain + go(&next, memo));
        }
        memo.insert(g.clone(), best);
        best
    }
    let g = Game::new(k, starts);
    go(&g, &mut memo)
}

/// The exact maximum over *all* start placements of `m` agents.
///
/// By symmetry of the complete graph it suffices to fix agent 0 at
/// node 0 and enumerate non-decreasing placements of the rest.
pub fn max_moves_any_start(k: usize, m: usize) -> usize {
    assert!(m >= 1, "need at least one agent");
    let mut best = 0;
    let mut starts = vec![0usize; m];
    loop {
        best = best.max(max_moves(k, &starts));
        // next non-decreasing placement with starts[0] = 0
        let mut i = m;
        loop {
            if i == 1 {
                return best;
            }
            i -= 1;
            if starts[i] + 1 < k {
                starts[i] += 1;
                for j in i + 1..m {
                    starts[j] = starts[i];
                }
                break;
            }
        }
    }
}

/// Plays a greedy strategy and returns the number of moves achieved —
/// a lower-bound witness for instances too large to search.
///
/// The strategy: among legal actions prefer a move whose target has
/// the most outgoing unpainted non-closing edges; if no move is legal,
/// take any jump (jumps can re-enable moves); stop when nothing is
/// legal.
pub fn greedy_moves(k: usize, starts: &[Node], max_actions: usize) -> usize {
    let mut g = Game::new(k, starts);
    for _ in 0..max_actions {
        let actions = g.legal_actions();
        let mut best: Option<(usize, GameAction)> = None;
        for &a in &actions {
            if let GameAction::Move { to, .. } = a {
                let outdeg = (0..k)
                    .filter(|&w| w != to && !g.is_painted(to, w) && !g.would_close(to, w))
                    .count();
                if best.is_none_or(|(d, _)| outdeg > d) {
                    best = Some((outdeg, a));
                }
            }
        }
        let chosen = match best {
            Some((_, a)) => a,
            None => match actions
                .iter()
                .find(|a| matches!(a, GameAction::Jump { .. }))
            {
                Some(&a) => a,
                None => break,
            },
        };
        g.act(chosen).expect("legal action");
    }
    g.moves()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_agent_walks_a_hamiltonian_path() {
        // m = 1 degeneracy: exactly k − 1 moves (see game module docs).
        assert_eq!(max_moves(2, &[0]), 1);
        assert_eq!(max_moves(3, &[0]), 2);
        assert_eq!(max_moves(4, &[0]), 3);
    }

    #[test]
    fn lemma_bound_holds_for_two_agents() {
        // m = 2: Lemma 1.1 bounds moves by m^k.
        assert!(max_moves_any_start(2, 2) <= 4);
        assert!(max_moves_any_start(3, 2) <= 8);
        // Two agents beat one: jumps recycle positions.
        assert!(max_moves_any_start(3, 2) > max_moves(3, &[0]));
    }

    #[test]
    fn greedy_is_a_valid_lower_bound() {
        for k in 2..=5 {
            let g = greedy_moves(k, &[0, 1], 10_000);
            assert!(g >= 1);
            if k <= 3 {
                assert!(g <= max_moves_any_start(k, 2));
            }
            // Lemma bound with m = 2:
            assert!(g <= 2usize.pow(k as u32));
        }
    }

    #[test]
    fn start_placement_enumeration_terminates() {
        // smoke: k = 2, m = 3 — all placements enumerated.
        let v = max_moves_any_start(2, 3);
        assert!(v <= 9); // 3^2
    }
}
