//! Cluster chaos: seeded kill-proxies in front of every member, live
//! migrations racing real traffic, and the headline scenario — a
//! member killed mid-traffic while clients resume against the
//! rebalanced table. Ledgers must stay *exact* (no lost, no duplicated
//! increments) and the merged multi-server history must pass the
//! Wing–Gong linearizability checker. Both runs are reproducible from
//! the seed they print.

mod common;

use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use bso_client::{HistoryRecorder, RetryPolicy};
use bso_cluster::{Cluster, ClusterClient};
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind};
use bso_sim::check_history;
use common::KillProxy;

const OBJECTS: usize = 6;
const THREADS: usize = 3;

fn counters() -> Layout {
    let mut l = Layout::new();
    for _ in 0..OBJECTS {
        l.push(ObjectInit::FetchAdd(0));
    }
    l
}

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 20,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(20),
        read_timeout: Some(Duration::from_secs(2)),
    }
}

/// Launches `n` members with a seeded kill-proxy in front of each and
/// the proxies advertised in the routing table. Admin traffic (and the
/// client refresh path, via direct seeds) bypasses the chaos.
fn chaotic_cluster(n: usize, seed: u64) -> (Cluster, Vec<KillProxy>, Vec<String>) {
    let mut cluster = Cluster::launch(n, &counters()).unwrap();
    let mut proxies = Vec::with_capacity(n);
    for idx in 0..n {
        let proxy = KillProxy::spawn(cluster.addr(idx), seed ^ idx as u64, 2_000, 8_000);
        cluster.advertise(idx, proxy.addr.to_string()).unwrap();
        proxies.push(proxy);
    }
    let seeds = (0..n).map(|i| cluster.addr(i).to_string()).collect();
    (cluster, proxies, seeds)
}

/// Reads object `obj`'s ledger through a direct connection to its
/// current owner, per the coordinator's assignment.
fn read_ledger(cluster: &Cluster, obj: usize) -> i64 {
    let owner = (0..cluster.len())
        .find(|&i| {
            cluster
                .owned_ranges(i)
                .iter()
                .any(|&(lo, hi)| lo <= obj as u64 && obj as u64 <= hi)
        })
        .expect("every object has an owner");
    cluster
        .admin(owner)
        .unwrap()
        .apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(0)))
        .unwrap()
        .as_int()
        .unwrap()
}

/// Satellite: migrations race chaotic traffic and every acked
/// increment lands exactly once — the per-object ledgers equal the
/// per-object ack counts, to the op.
#[test]
fn migration_under_chaos_keeps_ledgers_exact() {
    const SEED: u64 = 0xC1A0_5EED;
    const OPS: u64 = 400;
    eprintln!("migration_under_chaos seed = {SEED:#x}");

    let (mut cluster, proxies, seeds) = chaotic_cluster(3, SEED);
    let acked = Arc::new(Mutex::new(vec![0i64; OBJECTS]));

    let start = Barrier::new(THREADS + 1);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let seeds = seeds.clone();
            let acked = Arc::clone(&acked);
            let start = &start;
            s.spawn(move || {
                let mut client = ClusterClient::connect(&seeds)
                    .unwrap()
                    .with_policy(chaos_policy());
                start.wait();
                let mut local = vec![0i64; OBJECTS];
                for seq in 0..OPS {
                    let obj = (seq as usize + t) % OBJECTS;
                    client
                        .apply(t, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                        .expect("cluster client rides out chaos and migration");
                    local[obj] += 1;
                }
                let mut acked = acked.lock().unwrap();
                for (a, l) in acked.iter_mut().zip(local) {
                    *a += l;
                }
            });
        }
        // Coordinator: three live migrations while the traffic flows.
        start.wait();
        let moves = [(0usize, 1usize), (1, 2), (2, 0)];
        for (from, to) in moves {
            std::thread::sleep(Duration::from_millis(15));
            let ranges = cluster.owned_ranges(from);
            if !ranges.is_empty() {
                cluster.migrate(from, to, &ranges).unwrap();
            }
        }
    });

    // 1 launch + 3 advertises + 3 migrations.
    assert_eq!(cluster.epoch(), 7);
    drop(proxies);
    let acked = acked.lock().unwrap();
    assert_eq!(acked.iter().sum::<i64>(), (THREADS as u64 * OPS) as i64);
    for obj in 0..OBJECTS {
        assert_eq!(
            read_ledger(&cluster, obj),
            acked[obj],
            "object {obj}: every acked increment exactly once, across \
             chaos and three migrations"
        );
    }
    cluster.shutdown();
}

/// Headline: a member dies mid-traffic. Its shards were migrated out
/// under chaos, clients with stale tables are redirected or fail over,
/// a replicated election homed on the victim re-elects the *same*
/// winner from the backup — and the merged multi-server history is
/// linearizable with exact ledgers.
#[test]
fn member_kill_mid_traffic_preserves_history_and_ledgers() {
    const SEED: u64 = 0x0B17_FA11;
    const OPS: u64 = 300;
    const VICTIM: usize = 2;
    eprintln!("member_kill seed = {SEED:#x}");

    let layout = counters();
    let (mut cluster, proxies, seeds) = chaotic_cluster(3, SEED);
    let rec = Arc::new(HistoryRecorder::new());
    let acked = Arc::new(Mutex::new(vec![0i64; OBJECTS]));

    // A replicated election homed on the member we are about to lose.
    let mut elector = ClusterClient::connect(&seeds)
        .unwrap()
        .with_policy(chaos_policy());
    let victim_addr = cluster.advertised(VICTIM).to_string();
    let session = loop {
        let sid = elector.open_election(4).unwrap();
        if elector.election_home(sid).unwrap().0 == victim_addr {
            break sid;
        }
    };
    let winner = elector.elect(session, 0).unwrap();
    assert_eq!(winner, 0, "sole participant so far wins its election");

    let start = Barrier::new(THREADS + 1);
    let (redirects, failovers) = std::thread::scope(|s| {
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let seeds = seeds.clone();
                let rec = Arc::clone(&rec);
                let acked = Arc::clone(&acked);
                let start = &start;
                s.spawn(move || {
                    let mut client = ClusterClient::connect(&seeds)
                        .unwrap()
                        .with_policy(chaos_policy())
                        .with_recorder(rec);
                    start.wait();
                    let mut local = vec![0i64; OBJECTS];
                    for seq in 0..OPS {
                        let obj = (seq as usize + t) % OBJECTS;
                        client
                            .apply(t, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                            .expect("cluster client survives the member kill");
                        local[obj] += 1;
                    }
                    let mut acked = acked.lock().unwrap();
                    for (a, l) in acked.iter_mut().zip(local) {
                        *a += l;
                    }
                    (client.redirects(), client.failovers())
                })
            })
            .collect();
        // Coordinator: one live rebalance, then the planned loss of the
        // victim — evacuate its shards, kill it, leave the stale
        // clients to discover the new table on their own.
        start.wait();
        std::thread::sleep(Duration::from_millis(20));
        let slice = cluster.owned_ranges(0);
        cluster.migrate(0, 1, &slice).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        cluster.evacuate(VICTIM).unwrap();
        assert!(cluster.owned_ranges(VICTIM).is_empty());
        cluster.kill(VICTIM);
        workers
            .into_iter()
            .map(|w| w.join().unwrap())
            .fold((0u64, 0u64), |(r, f), (wr, wf)| (r + wr, f + wf))
    });

    // The election survives its primary: late participants get the
    // same winner, served by the backup replica.
    assert_eq!(elector.elect(session, 1).unwrap(), winner);
    assert_eq!(elector.elect(session, 2).unwrap(), winner);
    assert!(
        elector.failovers() >= 1,
        "electing against a dead primary must fail over"
    );
    assert!(
        redirects + failovers >= 1,
        "stale worker tables had to be redirected (saw {redirects} \
         redirects, {failovers} failovers)"
    );

    // Exact ledgers on the survivors: every acked increment exactly
    // once across chaos, migration, and the kill.
    drop(proxies);
    let acked = acked.lock().unwrap();
    assert_eq!(acked.iter().sum::<i64>(), (THREADS as u64 * OPS) as i64);
    for obj in 0..OBJECTS {
        assert_eq!(
            read_ledger(&cluster, obj),
            acked[obj],
            "object {obj} ledger on the rebalanced cluster"
        );
    }

    // The merged history — one shared clock across every per-member
    // session of every client — is linearizable.
    let log = rec.take_log();
    assert_eq!(log.len() as u64, THREADS as u64 * OPS);
    check_history(&layout, &log).expect("merged multi-server history is linearizable");
    cluster.shutdown();
}
