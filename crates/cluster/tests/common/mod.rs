//! Shared chaos plumbing for the cluster integration tests: the same
//! seeded kill-proxy the single-server churn tests use, one instance
//! per cluster member.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use bso_objects::rng::SplitMix64;

/// A chaos proxy that forwards bytes between each client and one
/// upstream server, killing the pair after a seeded client->server
/// byte budget is spent. Budgets are drawn in accept order from one
/// seeded RNG, so a fixed seed fixes the kill schedule.
pub struct KillProxy {
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl KillProxy {
    pub fn spawn(upstream: SocketAddr, seed: u64, budget_lo: u64, budget_hi: u64) -> KillProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let rng = Arc::new(Mutex::new(SplitMix64::new(seed)));
        std::thread::spawn(move || {
            for inbound in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(client) = inbound else { break };
                let Ok(server) = TcpStream::connect(upstream) else {
                    // Upstream dead (killed member): refuse by closing,
                    // which clients see as an immediate Io error.
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                let budget = {
                    let mut r = rng.lock().unwrap();
                    budget_lo + r.below(budget_hi - budget_lo)
                };
                let c2 = client.try_clone().unwrap();
                let s2 = server.try_clone().unwrap();
                std::thread::spawn(move || {
                    forward(client, server, Some(budget));
                });
                std::thread::spawn(move || {
                    forward(s2, c2, None);
                });
            }
        });
        KillProxy { addr, stop }
    }
}

impl Drop for KillProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
    }
}

fn forward(mut from: TcpStream, mut to: TcpStream, mut budget: Option<u64>) {
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = &buf[..n];
        if let Some(b) = budget.as_mut() {
            if (chunk.len() as u64) >= *b {
                chunk = &chunk[..*b as usize];
                let _ = to.write_all(chunk);
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
            *b -= chunk.len() as u64;
        }
        if to.write_all(chunk).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
