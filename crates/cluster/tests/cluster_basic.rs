//! Cluster fundamentals without chaos: routed traffic lands on the
//! right members, a live migration redirects stale clients through
//! typed `WrongShard` refusals with exact ledgers, and a replicated
//! election survives the planned loss of its primary member.

use std::time::Duration;

use bso_client::{Connection, RetryPolicy};
use bso_cluster::{Cluster, ClusterClient};
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_server::RoutingTable;

fn counters(n: usize) -> Layout {
    let mut l = Layout::new();
    for _ in 0..n {
        l.push(ObjectInit::FetchAdd(0));
    }
    l
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(20),
        read_timeout: Some(Duration::from_secs(2)),
    }
}

/// Every member serves a routing table; owners match the launch
/// assignment; the table document round-trips through the parser.
#[test]
fn launch_installs_a_consistent_table_everywhere() {
    let cluster = Cluster::launch(3, &counters(9)).unwrap();
    assert_eq!(cluster.epoch(), 1);
    for idx in 0..3 {
        let (epoch, doc) = cluster.admin(idx).unwrap().fetch_routing().unwrap();
        assert_eq!(epoch, 1, "member {idx} serves the launch epoch");
        let table = RoutingTable::parse(&doc).unwrap();
        assert_eq!(table.epoch, 1);
        // 9 objects over 3 members: contiguous thirds, last one
        // stretched to cover the whole id space.
        assert_eq!(table.owner_of(0), Some(cluster.advertised(0)));
        assert_eq!(table.owner_of(4), Some(cluster.advertised(1)));
        assert_eq!(table.owner_of(8), Some(cluster.advertised(2)));
        assert_eq!(table.owner_of(u64::MAX), Some(cluster.advertised(2)));
    }
    cluster.shutdown();
}

/// Traffic keeps flowing across a live migration: the stale client is
/// bounced with `WrongShard`, refreshes, redirects, and every
/// increment lands exactly once.
#[test]
fn live_migration_redirects_stale_clients_with_exact_ledgers() {
    const OBJECTS: usize = 6;
    const ROUNDS: i64 = 10;
    let mut cluster = Cluster::launch(3, &counters(OBJECTS)).unwrap();
    let seeds: Vec<String> = (0..3).map(|i| cluster.addr(i).to_string()).collect();
    let mut client = ClusterClient::connect(&seeds)
        .unwrap()
        .with_policy(fast_policy());
    assert_eq!(client.epoch(), 1);

    // First half of the traffic against the launch placement.
    for round in 0..ROUNDS / 2 {
        for obj in 0..OBJECTS {
            let v = client
                .apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                .unwrap();
            assert_eq!(v, Value::Int(round), "prestate of object {obj}");
        }
    }

    // Move member 0's whole slice to member 1 while the client's table
    // still says epoch 1.
    let ranges = cluster.owned_ranges(0);
    assert!(!ranges.is_empty());
    cluster.migrate(0, 1, &ranges).unwrap();
    assert_eq!(cluster.epoch(), 2);

    // Second half: the first op against a moved object must bounce off
    // member 0, refresh, and land on member 1 — invisible up here
    // except for the redirect counter.
    for round in ROUNDS / 2..ROUNDS {
        for obj in 0..OBJECTS {
            let v = client
                .apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(1)))
                .unwrap();
            assert_eq!(v, Value::Int(round), "prestate of object {obj}");
        }
    }
    assert!(client.redirects() >= 1, "the stale table had to redirect");
    assert_eq!(client.epoch(), 2, "refresh adopted the flipped table");

    // Exact ledgers, read through the (fresh) table: migration moved
    // state, lost nothing, duplicated nothing.
    for obj in 0..OBJECTS {
        let v = client
            .apply(0, Op::new(ObjectId(obj), OpKind::FetchAdd(0)))
            .unwrap();
        assert_eq!(v, Value::Int(ROUNDS), "final ledger of object {obj}");
    }

    // The source really refused post-migration traffic (typed, counted)
    // and its exported copy stayed in place (retired, not deleted).
    let stats = cluster.kill(0);
    assert!(stats.wrong_shard >= 1, "member 0 counted its refusals");
    cluster.shutdown();
}

/// The detach barrier makes migration safe even when nobody ever told
/// the source's clients: a direct (table-oblivious) connection gets a
/// typed refusal carrying the epoch, not a wrong answer.
#[test]
fn detached_ranges_refuse_with_the_installed_epoch() {
    // 6 counters over 2 members: member 0 owns objects 0–2.
    let mut cluster = Cluster::launch(2, &counters(6)).unwrap();
    let mut direct = Connection::builder().connect(cluster.addr(0)).unwrap();
    direct
        .apply(0, Op::new(ObjectId(0), OpKind::FetchAdd(1)))
        .unwrap();

    cluster.migrate(0, 1, &[(0, 1)]).unwrap();
    let err = direct
        .apply(0, Op::new(ObjectId(0), OpKind::FetchAdd(1)))
        .unwrap_err();
    assert_eq!(err.wrong_shard_epoch(), Some(2), "refusal names the epoch");
    // Objects the member still owns keep serving on the same
    // connection.
    direct
        .apply(0, Op::new(ObjectId(2), OpKind::FetchAdd(1)))
        .unwrap();
    cluster.shutdown();
}

/// A replicated election outlives its primary: the winner decided
/// before the crash is the winner after it, served by the backup.
#[test]
fn replicated_election_survives_primary_loss() {
    let mut cluster = Cluster::launch(3, &counters(3)).unwrap();
    let seeds: Vec<String> = (0..3).map(|i| cluster.addr(i).to_string()).collect();
    let mut client = ClusterClient::connect(&seeds)
        .unwrap()
        .with_policy(fast_policy());

    let session = client.open_election(4).unwrap();
    let (primary, backup) = client.election_home(session).unwrap();
    assert_ne!(primary, backup, "replicas live on distinct members");
    let primary = primary.to_string();
    let victim = (0..3)
        .find(|&i| cluster.advertised(i) == primary)
        .expect("primary is a cluster member");

    // Decide the election at the primary; the decision is sealed onto
    // the backup.
    let winner = client.elect(session, 0).unwrap();
    assert_eq!(winner, 0, "sole participant so far wins its election");

    // Planned loss of the primary: evacuate its shards, then kill it.
    cluster.evacuate(victim).unwrap();
    assert!(cluster.owned_ranges(victim).is_empty());
    cluster.kill(victim);

    // Late participants still reach a decision — the same one —
    // through the backup replica.
    assert_eq!(client.elect(session, 1).unwrap(), winner);
    assert_eq!(client.elect(session, 2).unwrap(), winner);
    assert!(client.failovers() >= 1, "the backup had to take over");
    cluster.shutdown();
}
