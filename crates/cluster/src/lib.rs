//! `bso-cluster`: multi-server sharding for the `bso-wire/v2`
//! shared-object service.
//!
//! A cluster is a set of independent `bso-server` instances, each
//! bound over the *same* [`Layout`], plus a `bso-routing/v1`
//! [`RoutingTable`] that assigns each inclusive object-id range to
//! exactly one member. The table — not the layout — decides which copy
//! of an object is live: every member holds a (possibly stale)
//! materialization of the full layout, and the server-side
//! [`RouteControl`](bso_server::routing) enforcement refuses ops
//! outside a member's owned ranges with a typed `WrongShard` carrying
//! the table epoch.
//!
//! Two pieces live here:
//!
//! * [`Cluster`] — the coordination harness: launches members,
//!   installs and redistributes epoch-stamped tables, drives **live
//!   shard migration** (detach-barrier → state transfer → table flip)
//!   and member evacuation/kill. Production deployments would run this
//!   logic in an operator; tests and benches run it in-process.
//! * [`ClusterClient`] — the routing-aware client: caches the table,
//!   routes each op to its owner over a per-member
//!   [`ResilientClient`] session, refreshes-and-redirects on
//!   `WrongShard`, fails over to surviving members when an owner dies,
//!   and runs **replicated election sessions** (primary + backup
//!   member, re-sealed after every decision) that survive the loss of
//!   their home server.
//!
//! ## Exactly-once across migration
//!
//! The migration protocol keeps the single-server exactly-once
//! contract (DESIGN.md §3.14) intact:
//!
//! 1. [`Cluster::migrate`] first sends `DetachRanges` to the source.
//!    The server answers only once every apply on the detached ranges
//!    has completed or is refused — the routing read-lock held across
//!    each apply makes the detach a barrier.
//! 2. Object state is exported *after* the barrier, so it contains
//!    every completed apply, and installed on the target before any
//!    client is told about the move.
//! 3. The table flips to a higher epoch and is broadcast. Clients with
//!    stale tables get `WrongShard` (a guaranteed **not-applied**
//!    refusal), refresh, and redirect; retried ops whose effect landed
//!    *before* the barrier are still answered from the source's reply
//!    cache, because servers admit sessions before checking routing.
//!
//! The one unknowable: an op whose effect landed at a member that then
//! crashed *before the client consumed the reply and before any
//! migration*. That is the ordinary single-server crash case — no
//! routing table can recover an outcome that only the dead server
//! knew. The harness's [`Cluster::evacuate`]-then-[`Cluster::kill`]
//! discipline exists exactly so planned member loss never creates it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use bso_client::resilient::RetryPolicy;
use bso_client::{ClientError, Connection, HistoryRecorder, ResilientClient};
use bso_objects::spec::ObjectState;
use bso_objects::{Layout, ObjectInit, Op, Value};
use bso_server::{ErrorCode, RouteEntry, RoutingTable, Server, ServerHandle, ServerStats};

/// Session-id base for cluster-replicated elections. Server-minted
/// session ids count up from zero; cluster-chosen ids start far above
/// so the two allocators never collide on the same member.
static NEXT_SESSION: AtomicU32 = AtomicU32::new(1 << 20);

/// One cluster member: a live server handle (until killed) plus the
/// two addresses it is known by.
struct Member {
    /// `Some` while the member is alive.
    handle: Option<ServerHandle>,
    /// The direct address the coordinator dials for admin traffic.
    addr: SocketAddr,
    /// The address published in the routing table for clients — the
    /// direct address by default, a chaos proxy when tests interpose
    /// one via [`Cluster::advertise`].
    advertised: String,
}

/// An in-process cluster of `bso-server` members under one
/// epoch-stamped routing table. See the [module docs](self).
pub struct Cluster {
    members: Vec<Member>,
    /// Current table epoch; bumped by every placement or address
    /// change before it is broadcast.
    epoch: u64,
    /// `(lo, hi, member)` ownership triples covering the whole id
    /// space (the last launch chunk extends to `u64::MAX`).
    assignments: Vec<(u64, u64, usize)>,
    /// Objects materialized by the shared layout (migratable state).
    nobjects: usize,
}

impl Cluster {
    /// Launches `n` members over `layout`, assigns contiguous
    /// object-id chunks (the last chunk extends to `u64::MAX` so every
    /// id has an owner), and installs the epoch-1 table on every
    /// member before returning — no client can race the bootstrap.
    ///
    /// # Errors
    ///
    /// Bind failures as [`ClientError::Io`]; table-install failures in
    /// the classes of [`Connection::apply`].
    pub fn launch(n: usize, layout: &Layout) -> Result<Cluster, ClientError> {
        assert!(n >= 1, "a cluster needs at least one member");
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            let handle = Server::builder()
                .shards(2)
                .bind("127.0.0.1:0", layout)
                .map_err(ClientError::Io)?;
            let addr = handle.local_addr();
            members.push(Member {
                handle: Some(handle),
                addr,
                advertised: addr.to_string(),
            });
        }
        let nobjects = layout.objects().len().max(1);
        let chunk = nobjects.div_ceil(n) as u64;
        let mut assignments = Vec::with_capacity(n);
        for (i, _) in members.iter().enumerate() {
            let lo = i as u64 * chunk;
            let hi = if i == n - 1 {
                u64::MAX
            } else {
                (i as u64 + 1) * chunk - 1
            };
            if lo <= hi {
                assignments.push((lo, hi, i));
            }
        }
        let mut cluster = Cluster {
            members,
            epoch: 0,
            assignments,
            nobjects,
        };
        cluster.epoch = 1;
        cluster.broadcast()?;
        Ok(cluster)
    }

    /// Number of members (live and killed).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members (never true after
    /// [`Cluster::launch`]; present for `len` symmetry).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member `idx`'s direct (admin) address.
    pub fn addr(&self, idx: usize) -> SocketAddr {
        self.members[idx].addr
    }

    /// Member `idx`'s published client address.
    pub fn advertised(&self, idx: usize) -> &str {
        &self.members[idx].advertised
    }

    /// Whether member `idx` is still serving.
    pub fn live(&self, idx: usize) -> bool {
        self.members[idx].handle.is_some()
    }

    /// The current table epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current routing table, as clients should see it.
    pub fn table(&self) -> RoutingTable {
        RoutingTable {
            epoch: self.epoch,
            entries: self
                .assignments
                .iter()
                .map(|&(lo, hi, m)| RouteEntry {
                    lo,
                    hi,
                    addr: self.members[m].advertised.clone(),
                })
                .collect(),
        }
    }

    /// Publishes `addr` as member `idx`'s client-facing address (a
    /// chaos proxy in front of it, typically) and rebroadcasts the
    /// table under a bumped epoch.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`].
    pub fn advertise(&mut self, idx: usize, addr: impl Into<String>) -> Result<(), ClientError> {
        self.members[idx].advertised = addr.into();
        self.epoch += 1;
        self.broadcast()
    }

    /// A fresh admin connection to member `idx`'s direct address.
    ///
    /// # Errors
    ///
    /// Connect/handshake failures per [`Connection::builder`].
    pub fn admin(&self, idx: usize) -> Result<Connection, ClientError> {
        Connection::builder().connect(self.members[idx].addr)
    }

    /// Live-migrates `ranges` from member `from` to member `to`:
    /// detach barrier on the source, object-state transfer, table flip
    /// at a bumped epoch, broadcast. Traffic may keep flowing
    /// throughout — ops racing the barrier either complete before it
    /// (their effects travel with the export) or bounce `WrongShard`
    /// and redirect.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`]. On error the table is
    /// not flipped; the detached ranges stay dark on the source until
    /// a retry or a manual re-install.
    pub fn migrate(
        &mut self,
        from: usize,
        to: usize,
        ranges: &[(u64, u64)],
    ) -> Result<(), ClientError> {
        assert!(from != to, "migration source and target must differ");
        let next = self.epoch + 1;
        // 1. Barrier: when this returns, no apply on `ranges` is
        //    running or will run at the source.
        let mut src = self.admin(from)?;
        src.detach_ranges(next, ranges.to_vec())?;
        // 2. Transfer every materialized object the ranges cover. The
        //    export is post-barrier, so it sees every completed apply.
        let mut dst = self.admin(to)?;
        for &(lo, hi) in ranges {
            let hi = hi.min(self.nobjects as u64 - 1);
            for obj in lo..=hi {
                let state = src.export_object(obj as u32)?;
                dst.install_object(obj as u32, state)?;
            }
        }
        // 3. Flip and broadcast.
        carve(&mut self.assignments, ranges, to);
        self.epoch = next;
        self.broadcast()
    }

    /// Migrates everything member `idx` owns to the other live
    /// members, round-robin per range. Afterwards `idx` owns nothing —
    /// the precondition for a planned [`Cluster::kill`].
    ///
    /// # Errors
    ///
    /// Same classes as [`Cluster::migrate`].
    pub fn evacuate(&mut self, idx: usize) -> Result<(), ClientError> {
        let targets: Vec<usize> = (0..self.members.len())
            .filter(|&m| m != idx && self.live(m))
            .collect();
        assert!(!targets.is_empty(), "no live member to evacuate to");
        let owned: Vec<(u64, u64)> = self
            .assignments
            .iter()
            .filter(|&&(_, _, m)| m == idx)
            .map(|&(lo, hi, _)| (lo, hi))
            .collect();
        for (i, range) in owned.into_iter().enumerate() {
            self.migrate(idx, targets[i % targets.len()], &[range])?;
        }
        Ok(())
    }

    /// Shuts member `idx` down and returns its lifetime stats. The
    /// routing table is *not* changed: callers evacuate first (planned
    /// loss) or leave the stale entries for clients to discover
    /// (simulated unplanned loss).
    ///
    /// # Panics
    ///
    /// If the member was already killed.
    pub fn kill(&mut self, idx: usize) -> ServerStats {
        self.members[idx]
            .handle
            .take()
            .expect("member already killed")
            .shutdown()
    }

    /// Shuts every surviving member down.
    pub fn shutdown(mut self) -> Vec<ServerStats> {
        let mut stats = Vec::new();
        for m in &mut self.members {
            if let Some(h) = m.handle.take() {
                stats.push(h.shutdown());
            }
        }
        stats
    }

    /// Ranges member `idx` currently owns.
    pub fn owned_ranges(&self, idx: usize) -> Vec<(u64, u64)> {
        self.assignments
            .iter()
            .filter(|&&(_, _, m)| m == idx)
            .map(|&(lo, hi, _)| (lo, hi))
            .collect()
    }

    /// Installs the current table on every live member under the
    /// current epoch.
    fn broadcast(&mut self) -> Result<(), ClientError> {
        let doc = self.table().to_json();
        for idx in 0..self.members.len() {
            if !self.live(idx) {
                continue;
            }
            let owned = self.owned_ranges(idx);
            self.admin(idx)?
                .update_routing(self.epoch, owned, doc.clone())?;
        }
        Ok(())
    }
}

/// Reassigns every id of `cut` to `new_owner`, splitting overlapping
/// assignment ranges as needed. Ranges are inclusive.
fn carve(assignments: &mut Vec<(u64, u64, usize)>, cut: &[(u64, u64)], new_owner: usize) {
    for &(clo, chi) in cut {
        let mut next = Vec::with_capacity(assignments.len() + 2);
        for &(lo, hi, m) in assignments.iter() {
            if chi < lo || hi < clo {
                next.push((lo, hi, m));
                continue;
            }
            if lo < clo {
                next.push((lo, clo - 1, m));
            }
            next.push((lo.max(clo), hi.min(chi), new_owner));
            if chi < hi {
                next.push((chi + 1, hi, m));
            }
        }
        *assignments = next;
    }
    // Merge adjacent same-owner pieces so tables stay small.
    assignments.sort_by_key(|&(lo, _, _)| lo);
    let mut merged: Vec<(u64, u64, usize)> = Vec::with_capacity(assignments.len());
    for &(lo, hi, m) in assignments.iter() {
        match merged.last_mut() {
            Some(&mut (_, ref mut phi, pm)) if pm == m && *phi != u64::MAX && *phi + 1 == lo => {
                *phi = hi;
            }
            _ => merged.push((lo, hi, m)),
        }
    }
    *assignments = merged;
}

/// One replicated election session's placement, pinned at open time so
/// later table changes cannot remap it.
struct ElectionHome {
    primary: String,
    backup: String,
    k: u32,
}

/// A routing-aware, fault-tolerant cluster client. See the
/// [module docs](self) for the redirect and failover contract.
pub struct ClusterClient {
    table: RoutingTable,
    /// Addresses always worth asking for a fresh table (typically the
    /// members' direct addresses), tried before the table's own.
    seeds: Vec<String>,
    clients: HashMap<String, ResilientClient>,
    recorder: Option<Arc<HistoryRecorder>>,
    policy: RetryPolicy,
    elections: HashMap<u32, ElectionHome>,
    refreshes: u64,
    redirects: u64,
    failovers: u64,
}

impl ClusterClient {
    /// Connects by fetching the routing table from the first `seeds`
    /// member that answers.
    ///
    /// # Errors
    ///
    /// The last member's failure when none answers.
    pub fn connect(seeds: &[String]) -> Result<ClusterClient, ClientError> {
        let mut client = ClusterClient {
            table: RoutingTable::default(),
            seeds: seeds.to_vec(),
            clients: HashMap::new(),
            recorder: None,
            policy: RetryPolicy::default(),
            elections: HashMap::new(),
            refreshes: 0,
            redirects: 0,
            failovers: 0,
        };
        client.refresh()?;
        Ok(client)
    }

    /// Attaches a (shared) history recorder; every per-member session
    /// created *after* this call logs its successful ops. Call it
    /// before the first operation.
    #[must_use]
    pub fn with_recorder(mut self, rec: Arc<HistoryRecorder>) -> ClusterClient {
        self.recorder = Some(rec);
        self
    }

    /// Overrides the per-member retry policy (sessions created after
    /// this call).
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> ClusterClient {
        self.policy = policy;
        self
    }

    /// The table epoch this client is routing by.
    pub fn epoch(&self) -> u64 {
        self.table.epoch
    }

    /// Table refreshes performed (bootstrap included).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Ops re-routed after a `WrongShard` refusal.
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Ops re-routed after their owner died (plus election failovers
    /// to the backup member).
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Transport reconnects across all per-member sessions.
    pub fn reconnects(&self) -> u64 {
        self.clients.values().map(|c| c.reconnects()).sum()
    }

    /// Re-fetches the routing table, keeping the highest epoch any
    /// reachable member serves. Seeds are asked first, then the
    /// current table's addresses.
    ///
    /// # Errors
    ///
    /// The last failure when no member answers at all.
    pub fn refresh(&mut self) -> Result<(), ClientError> {
        let mut candidates: Vec<String> = self.seeds.clone();
        for e in &self.table.entries {
            if !candidates.contains(&e.addr) {
                candidates.push(e.addr.clone());
            }
        }
        let mut last_err: Option<ClientError> = None;
        let mut best: Option<RoutingTable> = None;
        for addr in &candidates {
            let fetched = Connection::builder()
                .connect(addr.as_str())
                .and_then(|mut c| c.fetch_routing());
            match fetched {
                Ok((_, doc)) => match RoutingTable::parse(&doc) {
                    Ok(t) if best.as_ref().is_none_or(|b| t.epoch > b.epoch) => best = Some(t),
                    Ok(_) => {}
                    Err(msg) => last_err = Some(ClientError::Protocol(msg)),
                },
                Err(e) => last_err = Some(e),
            }
        }
        match best {
            Some(t) => {
                if t.epoch > self.table.epoch {
                    self.table = t;
                }
                self.refreshes += 1;
                Ok(())
            }
            None => Err(last_err.unwrap_or(ClientError::Protocol(
                "no cluster member answered a routing fetch".into(),
            ))),
        }
    }

    /// Applies `op` as process `pid` at the owner the table names,
    /// redirecting after `WrongShard` refusals (guaranteed
    /// not-applied) and failing over when the owner is unreachable and
    /// a refreshed table names a different one.
    ///
    /// # Errors
    ///
    /// Terminal server refusals as [`ClientError::Server`]; owner
    /// unreachable with no new placement as [`ClientError::Io`].
    pub fn apply(&mut self, pid: usize, op: Op) -> Result<Value, ClientError> {
        let obj = op.obj.0 as u64;
        let mut hops = 0;
        loop {
            let addr = self.owner_of(obj)?;
            // A connect failure counts as the owner being unreachable,
            // same as a mid-op loss — both reach the failover arm.
            let out = match self.client_for(&addr) {
                Ok(c) => c.apply(pid, op.clone()),
                Err(e) => Err(e),
            };
            match out {
                Ok(v) => return Ok(v),
                Err(e) if e.wrong_shard_epoch().is_some() && hops < 32 => {
                    // Not applied, by contract — refresh and re-route.
                    // During a migration's transfer window no member
                    // serves the flipped table yet; if the refresh
                    // brought nothing newer, wait out the window
                    // instead of burning hops.
                    self.redirects += 1;
                    let before = self.table.epoch;
                    self.refresh()?;
                    if self.table.epoch <= before {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    hops += 1;
                }
                Err(ClientError::Io(io)) if hops < 8 => {
                    // The owner is unreachable. If a refreshed table
                    // moves the object, the detach barrier guarantees
                    // the old owner can no longer have applied it —
                    // re-issuing at the new owner is safe. If the
                    // placement is unchanged, the outcome is unknown
                    // and the error surfaces.
                    self.refresh()?;
                    let now = self.owner_of(obj)?;
                    if now == addr {
                        return Err(ClientError::Io(io));
                    }
                    self.failovers += 1;
                    hops += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Opens a **replicated** election session over a fresh
    /// `compare&swap-(k)`: the same session id and pristine state are
    /// installed on a primary and a backup member (chosen by session
    /// id over the members the table names now, pinned for the
    /// session's lifetime). Returns the session id.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`]; both replicas must
    /// install for the open to succeed.
    pub fn open_election(&mut self, k: u32) -> Result<u32, ClientError> {
        let members = self.member_addrs();
        if members.len() < 2 {
            return Err(ClientError::Protocol(
                "replicated elections need at least two live members".into(),
            ));
        }
        let sid = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
        let primary = members[sid as usize % members.len()].clone();
        let backup = members[(sid as usize + 1) % members.len()].clone();
        let fresh = ObjectState::from_init(&ObjectInit::CasK { k: k as usize }).export();
        Connection::builder()
            .connect(primary.as_str())?
            .install_session(sid, k, fresh.clone())?;
        Connection::builder()
            .connect(backup.as_str())?
            .install_session(sid, k, fresh)?;
        self.elections
            .insert(sid, ElectionHome { primary, backup, k });
        Ok(sid)
    }

    /// Runs participant `pid` of replicated session `session` to its
    /// decision. The decided state is re-sealed onto the backup after
    /// every primary-side decision, so if the primary dies, electing
    /// against the backup returns the *same* winner — the election
    /// survives the loss of its home server.
    ///
    /// # Errors
    ///
    /// Same classes as [`Connection::apply`]; unknown session ids are
    /// a [`ClientError::Protocol`] (only sessions opened by this
    /// client can be replicated-elected).
    pub fn elect(&mut self, session: u32, pid: u32) -> Result<usize, ClientError> {
        let (primary, backup, k) = {
            let home = self.elections.get(&session).ok_or_else(|| {
                ClientError::Protocol(format!("election session {session} was not opened here"))
            })?;
            (home.primary.clone(), home.backup.clone(), home.k)
        };
        let at_primary = match self.client_for(&primary) {
            Ok(c) => c.elect(session, pid),
            Err(e) => Err(e),
        };
        match at_primary {
            Ok(winner) => {
                // Seal: replicate the decided state so the backup
                // deterministically agrees from now on. Best effort —
                // losing a seal only narrows the failover window.
                let _ = self.seal(&primary, &backup, session, k);
                Ok(winner)
            }
            Err(e) if failover_worthy(&e) => {
                self.failovers += 1;
                self.client_for(&backup)?.elect(session, pid)
            }
            Err(e) => Err(e),
        }
    }

    /// The `(primary, backup)` placement pinned for a replicated
    /// election session opened by this client.
    pub fn election_home(&self, session: u32) -> Option<(&str, &str)> {
        self.elections
            .get(&session)
            .map(|h| (h.primary.as_str(), h.backup.as_str()))
    }

    /// Copies `session`'s state from `from` to `to`.
    fn seal(&mut self, from: &str, to: &str, session: u32, k: u32) -> Result<(), ClientError> {
        let pair = Connection::builder()
            .connect(from)?
            .export_session(session)?;
        let state = match pair {
            Value::Seq(items) if items.len() == 2 => items[1].clone(),
            other => {
                return Err(ClientError::Protocol(format!(
                    "malformed session export: {other}"
                )))
            }
        };
        Connection::builder()
            .connect(to)?
            .install_session(session, k, state)
    }

    /// The distinct member addresses the current table names, in
    /// table order.
    fn member_addrs(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for e in &self.table.entries {
            if !out.contains(&e.addr) {
                out.push(e.addr.clone());
            }
        }
        out
    }

    fn owner_of(&self, obj: u64) -> Result<String, ClientError> {
        self.table
            .owner_of(obj)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol(format!("no routing entry covers object {obj}")))
    }

    fn client_for(&mut self, addr: &str) -> Result<&mut ResilientClient, ClientError> {
        if !self.clients.contains_key(addr) {
            let mut b = ResilientClient::builder().policy(self.policy.clone());
            if let Some(rec) = &self.recorder {
                b = b.recorder(Arc::clone(rec));
            }
            self.clients.insert(addr.to_string(), b.connect(addr)?);
        }
        Ok(self.clients.get_mut(addr).expect("inserted above"))
    }
}

/// Whether an election attempt at the primary should fail over to the
/// backup: transport-level losses and a primary that no longer knows
/// the session (it was restarted or the session never installed).
fn failover_worthy(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) | ClientError::Wire(_) => true,
        ClientError::Server { code, .. } => *code == ErrorCode::UnknownSession,
        ClientError::Protocol(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_splits_and_merges_assignments() {
        let mut a = vec![(0, 9, 0), (10, u64::MAX, 1)];
        carve(&mut a, &[(4, 12)], 2);
        assert_eq!(a, vec![(0, 3, 0), (4, 12, 2), (13, u64::MAX, 1)]);
        // Handing the carved piece back to member 0 merges with its
        // remaining prefix.
        carve(&mut a, &[(4, 12)], 0);
        assert_eq!(a, vec![(0, 12, 0), (13, u64::MAX, 1)]);
        // Whole-range takeover.
        carve(&mut a, &[(0, u64::MAX)], 1);
        assert_eq!(a, vec![(0, u64::MAX, 1)]);
    }

    #[test]
    fn failover_classification_matches_the_contract() {
        assert!(failover_worthy(&ClientError::Io(std::io::Error::other(
            "gone"
        ))));
        assert!(failover_worthy(&ClientError::Server {
            code: ErrorCode::UnknownSession,
            message: String::new(),
        }));
        assert!(!failover_worthy(&ClientError::Server {
            code: ErrorCode::BadRequest,
            message: String::new(),
        }));
        assert!(!failover_worthy(&ClientError::Protocol(String::new())));
    }
}
