//! Live progress heartbeats for long exploration runs.
//!
//! A [`ProgressReporter`] thread samples a [`Registry`] on a fixed
//! interval and appends one JSON line per sample — states/s, frontier
//! size, deepest level, dedup ratio and per-worker queue lengths, all
//! pulled from the `explore.live.*` metrics the parallel engine
//! maintains. Output goes to a file (`BSO_PROGRESS=path.jsonl`) or to
//! stderr (`BSO_PROGRESS=stderr` or `-`); the sampling interval is
//! `BSO_PROGRESS_MS` milliseconds (default 200).
//!
//! Each line is a `bso-progress/v1` document:
//!
//! ```json
//! {"schema": "bso-progress/v1", "seq": 3, "elapsed_ms": 612,
//!  "states": 80211, "states_per_sec": 131000.0, "frontier": 412,
//!  "deepest": 19, "dedup_ratio_pct": 37.2, "queues": [12, 9, 14, 8]}
//! ```
//!
//! Runs with a deadline (`Explorer::deadline` or `BSO_DEADLINE_MS`)
//! additionally report `"budget_remaining_ms"`, counting down to the
//! interrupt; the field is omitted entirely when no deadline is set.
//!
//! Processes that host a `bso-server` (whose event loops register the
//! `server.*` metrics) extend each line with a serving variant:
//! `"serve_requests"` / `"serve_responses"` / `"serve_busy"` lifetime
//! totals, the live `"serve_conns"` connection count summed across
//! loops, and `"serve_queue_depths"` per shard in index order. The
//! `bsotop --tail` dashboard consumes these lines, taking deltas
//! between samples for rates. Like the DPOR fields, the serving
//! fields are omitted entirely when no server feeds the registry.

use std::fs::File;
use std::io::Write;
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::{Registry, Snapshot};

/// The environment variable that enables the global reporter and names
/// its output: `BSO_PROGRESS=path.jsonl`, or `stderr` / `-` for
/// stderr.
pub const ENV_VAR: &str = "BSO_PROGRESS";

/// The environment variable overriding the sampling interval in
/// milliseconds (default [`DEFAULT_INTERVAL_MS`]).
pub const INTERVAL_ENV_VAR: &str = "BSO_PROGRESS_MS";

/// Default sampling interval in milliseconds.
pub const DEFAULT_INTERVAL_MS: u64 = 200;

/// Builds one heartbeat line from a registry snapshot.
///
/// `seq` numbers the line, `elapsed` is time since the reporter
/// started, and `prev_states`/`dt` give the state count at the
/// previous sample and the time since it, for the `states_per_sec`
/// rate (whole-run average when there is no previous sample).
pub fn heartbeat(
    snap: &Snapshot,
    seq: u64,
    elapsed: Duration,
    prev_states: u64,
    dt: Duration,
) -> Json {
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let gauge = |name: &str| snap.gauges.get(name).copied().unwrap_or(0);
    let states = counter("explore.live.states");
    let dedup = counter("explore.live.dedup_hits");
    let rate = if dt.as_secs_f64() > 0.0 {
        states.saturating_sub(prev_states) as f64 / dt.as_secs_f64()
    } else {
        0.0
    };
    let dedup_ratio = if states + dedup > 0 {
        dedup as f64 / (states + dedup) as f64 * 100.0
    } else {
        0.0
    };
    // Per-worker queue gauges, sorted by worker index.
    let prefix = "explore.live.queue_len.w";
    let mut queues: Vec<(u64, u64)> = snap
        .gauges
        .iter()
        .filter_map(|(name, v)| {
            let idx: u64 = name.strip_prefix(prefix)?.parse().ok()?;
            Some((idx, *v))
        })
        .collect();
    queues.sort_unstable();
    let mut fields = vec![
        ("schema", Json::str("bso-progress/v1")),
        ("seq", Json::U64(seq)),
        (
            "elapsed_ms",
            Json::U64(u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX)),
        ),
        ("states", Json::U64(states)),
        ("states_per_sec", Json::F64(rate)),
        ("frontier", Json::U64(gauge("explore.live.frontier"))),
        ("deepest", Json::U64(gauge("explore.live.deepest"))),
        ("dedup_ratio_pct", Json::F64(dedup_ratio)),
        (
            "queues",
            Json::Arr(queues.into_iter().map(|(_, v)| Json::U64(v)).collect()),
        ),
    ];
    // Present only when a deadline is configured (the engine maintains
    // the gauge then): 0 would be ambiguous between "no budget" and
    // "budget exhausted".
    if let Some(ms) = snap.gauges.get("explore.live.budget_remaining_ms") {
        fields.push(("budget_remaining_ms", Json::U64(*ms)));
    }
    // Present only under partial-order reduction (the engine registers
    // the counters only in DPOR mode): a heartbeat without them means
    // the run is unreduced, not that nothing was pruned yet.
    if let Some(prunes) = snap.counters.get("explore.live.dpor.sleep_prunes") {
        fields.push(("dpor_sleep_prunes", Json::U64(*prunes)));
        fields.push((
            "dpor_backtrack_points",
            Json::U64(counter("explore.live.dpor.backtrack_points")),
        ));
    }
    // The serving variant: present only when a `bso-server` is feeding
    // this registry (its loops register `server.requests` at bind).
    // Counters are lifetime totals — consumers (`bsotop --tail`) take
    // deltas between lines for rates.
    if let Some(reqs) = snap.counters.get("server.requests") {
        fields.push(("serve_requests", Json::U64(*reqs)));
        fields.push(("serve_responses", Json::U64(counter("server.responses"))));
        fields.push(("serve_busy", Json::U64(counter("server.busy"))));
        let conns: u64 = snap
            .gauges
            .iter()
            .filter(|(name, _)| name.starts_with("server.loop") && name.ends_with(".conns"))
            .map(|(_, v)| *v)
            .sum();
        fields.push(("serve_conns", Json::U64(conns)));
        let mut depths: Vec<(u64, u64)> = snap
            .gauges
            .iter()
            .filter_map(|(name, v)| {
                let rest = name.strip_prefix("server.shard")?;
                let idx: u64 = rest.strip_suffix(".queue_depth")?.parse().ok()?;
                Some((idx, *v))
            })
            .collect();
        depths.sort_unstable();
        fields.push((
            "serve_queue_depths",
            Json::Arr(depths.into_iter().map(|(_, v)| Json::U64(v)).collect()),
        ));
    }
    Json::obj(fields)
}

enum Output {
    File(File),
    Stderr,
}

impl Output {
    fn write_line(&mut self, line: &str) {
        let res = match self {
            Output::File(f) => writeln!(f, "{line}").and_then(|()| f.flush()),
            Output::Stderr => writeln!(std::io::stderr(), "{line}"),
        };
        if let Err(e) = res {
            // A dead progress stream must never kill the run.
            let _ = e;
        }
    }
}

struct Sampler {
    registry: Registry,
    out: Output,
    started: Instant,
    seq: u64,
    prev_states: u64,
    prev_at: Instant,
}

impl Sampler {
    fn new(registry: Registry, out: Output) -> Sampler {
        let now = Instant::now();
        Sampler {
            registry,
            out,
            started: now,
            seq: 0,
            prev_states: 0,
            prev_at: now,
        }
    }

    fn sample(&mut self) {
        let snap = self.registry.snapshot();
        let now = Instant::now();
        let line = heartbeat(
            &snap,
            self.seq,
            now.duration_since(self.started),
            self.prev_states,
            now.duration_since(self.prev_at),
        );
        self.out.write_line(&line.render());
        self.seq += 1;
        self.prev_states = snap
            .counters
            .get("explore.live.states")
            .copied()
            .unwrap_or(0);
        self.prev_at = now;
    }
}

/// A sampling thread appending heartbeat lines until stopped or
/// dropped.
pub struct ProgressReporter {
    stop: Sender<()>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ProgressReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressReporter").finish_non_exhaustive()
    }
}

impl ProgressReporter {
    /// Starts a reporter sampling `registry` every `interval`,
    /// appending JSON lines to the file at `path` (created or
    /// truncated). The first line is written before this returns.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from creating the file.
    pub fn to_path(
        registry: Registry,
        interval: Duration,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<ProgressReporter> {
        let file = File::create(path)?;
        Ok(Self::start(registry, interval, Output::File(file)))
    }

    /// Starts a reporter sampling `registry` every `interval`, writing
    /// JSON lines to stderr. The first line is written before this
    /// returns.
    pub fn to_stderr(registry: Registry, interval: Duration) -> ProgressReporter {
        Self::start(registry, interval, Output::Stderr)
    }

    fn start(registry: Registry, interval: Duration, out: Output) -> ProgressReporter {
        let mut sampler = Sampler::new(registry, out);
        sampler.sample();
        let (stop, rx) = mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("bso-progress".to_string())
            .spawn(move || loop {
                match rx.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => sampler.sample(),
                    // Stop requested or reporter dropped: final sample.
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                        sampler.sample();
                        return;
                    }
                }
            })
            .expect("failed to spawn progress thread");
        ProgressReporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread after one final sample and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The process-wide sampler, shared between the periodic thread and
/// [`sample_global_now`].
static GLOBAL_SAMPLER: OnceLock<std::sync::Mutex<Sampler>> = OnceLock::new();

/// Starts the process-wide reporter over [`Registry::global`] if
/// [`ENV_VAR`] is set, once; later calls (and calls without the
/// variable) are no-ops. Returns whether a reporter is running.
///
/// The reporter thread is detached and samples for the lifetime of
/// the process; the first line is written synchronously, so even a
/// run that finishes within one interval produces output. I/O errors
/// are reported to stderr once and otherwise ignored.
pub fn spawn_global_if_env() -> bool {
    static STARTED: OnceLock<bool> = OnceLock::new();
    *STARTED.get_or_init(|| {
        let Some(dest) = std::env::var_os(ENV_VAR) else {
            return false;
        };
        let interval = std::env::var(INTERVAL_ENV_VAR)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_INTERVAL_MS)
            .max(1);
        let out = if dest == "stderr" || dest == "-" {
            Output::Stderr
        } else {
            match File::create(&dest) {
                Ok(f) => Output::File(f),
                Err(e) => {
                    eprintln!("bso-telemetry: cannot open {ENV_VAR} file {dest:?}: {e}");
                    return false;
                }
            }
        };
        let sampler = GLOBAL_SAMPLER
            .get_or_init(|| std::sync::Mutex::new(Sampler::new(Registry::global().clone(), out)));
        sampler.lock().unwrap().sample();
        std::thread::Builder::new()
            .name("bso-progress".to_string())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_millis(interval));
                sampler.lock().unwrap().sample();
            })
            .expect("failed to spawn progress thread");
        true
    })
}

/// Emits one heartbeat from the global reporter right now; a no-op
/// when no reporter is running. Engines call this when a run
/// completes, so the stream always ends with a sample of the final
/// state even if the run finished within one interval.
pub fn sample_global_now() {
    if let Some(sampler) = GLOBAL_SAMPLER.get() {
        sampler.lock().unwrap().sample();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn live_registry() -> Registry {
        let reg = Registry::enabled();
        reg.counter("explore.live.states").add(900);
        reg.counter("explore.live.dedup_hits").add(100);
        reg.gauge("explore.live.frontier").set(42);
        reg.gauge("explore.live.deepest").set(17);
        reg.gauge("explore.live.queue_len.w0").set(5);
        reg.gauge("explore.live.queue_len.w1").set(7);
        reg.gauge("explore.live.queue_len.w10").set(1);
        reg
    }

    #[test]
    fn heartbeat_reads_live_metrics() {
        let snap = live_registry().snapshot();
        let hb = heartbeat(
            &snap,
            3,
            Duration::from_millis(2_500),
            400,
            Duration::from_secs(1),
        );
        assert_eq!(
            hb.get("schema").and_then(Json::as_str),
            Some("bso-progress/v1")
        );
        assert_eq!(hb.get("seq").and_then(Json::as_u64), Some(3));
        assert_eq!(hb.get("elapsed_ms").and_then(Json::as_u64), Some(2_500));
        assert_eq!(hb.get("states").and_then(Json::as_u64), Some(900));
        assert_eq!(hb.get("states_per_sec").and_then(Json::as_f64), Some(500.0));
        assert_eq!(hb.get("frontier").and_then(Json::as_u64), Some(42));
        assert_eq!(hb.get("deepest").and_then(Json::as_u64), Some(17));
        assert_eq!(hb.get("dedup_ratio_pct").and_then(Json::as_f64), Some(10.0));
        // Queues sort by worker index, numerically (w10 after w1).
        let queues: Vec<u64> = hb
            .get("queues")
            .and_then(Json::items)
            .unwrap()
            .iter()
            .map(|q| q.as_u64().unwrap())
            .collect();
        assert_eq!(queues, vec![5, 7, 1]);
    }

    #[test]
    fn budget_field_appears_only_under_a_deadline() {
        let reg = live_registry();
        let without = heartbeat(&reg.snapshot(), 0, Duration::ZERO, 0, Duration::ZERO);
        assert!(
            without.get("budget_remaining_ms").is_none(),
            "no deadline, no budget field"
        );
        reg.gauge("explore.live.budget_remaining_ms").set(1_500);
        let with = heartbeat(&reg.snapshot(), 1, Duration::ZERO, 0, Duration::ZERO);
        assert_eq!(
            with.get("budget_remaining_ms").and_then(Json::as_u64),
            Some(1_500)
        );
    }

    #[test]
    fn dpor_fields_appear_only_under_reduction() {
        let reg = live_registry();
        let without = heartbeat(&reg.snapshot(), 0, Duration::ZERO, 0, Duration::ZERO);
        assert!(
            without.get("dpor_sleep_prunes").is_none()
                && without.get("dpor_backtrack_points").is_none(),
            "no reduction, no dpor fields"
        );
        reg.counter("explore.live.dpor.sleep_prunes").add(240);
        let with = heartbeat(&reg.snapshot(), 1, Duration::ZERO, 0, Duration::ZERO);
        assert_eq!(
            with.get("dpor_sleep_prunes").and_then(Json::as_u64),
            Some(240)
        );
        // Both counters surface together, even before any backtrack.
        assert_eq!(
            with.get("dpor_backtrack_points").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn serve_fields_appear_only_when_serving() {
        let reg = live_registry();
        let without = heartbeat(&reg.snapshot(), 0, Duration::ZERO, 0, Duration::ZERO);
        assert!(
            without.get("serve_requests").is_none() && without.get("serve_queue_depths").is_none(),
            "no server in process, no serve fields"
        );
        reg.counter("server.requests").add(12);
        reg.counter("server.responses").add(11);
        reg.gauge("server.loop0.conns").set(3);
        reg.gauge("server.loop1.conns").set(4);
        reg.gauge("server.shard1.queue_depth").set(9);
        reg.gauge("server.shard0.queue_depth").set(2);
        let with = heartbeat(&reg.snapshot(), 1, Duration::ZERO, 0, Duration::ZERO);
        assert_eq!(with.get("serve_requests").and_then(Json::as_u64), Some(12));
        assert_eq!(with.get("serve_responses").and_then(Json::as_u64), Some(11));
        // `server.busy` surfaces as zero even before any shedding.
        assert_eq!(with.get("serve_busy").and_then(Json::as_u64), Some(0));
        assert_eq!(with.get("serve_conns").and_then(Json::as_u64), Some(7));
        let depths = with
            .get("serve_queue_depths")
            .and_then(Json::items)
            .unwrap();
        let depths: Vec<u64> = depths.iter().filter_map(Json::as_u64).collect();
        assert_eq!(depths, vec![2, 9], "depths sort by shard index");
    }

    #[test]
    fn heartbeat_on_empty_snapshot_is_all_zero() {
        let hb = heartbeat(&Snapshot::default(), 0, Duration::ZERO, 0, Duration::ZERO);
        assert_eq!(hb.get("states").and_then(Json::as_u64), Some(0));
        assert_eq!(hb.get("states_per_sec").and_then(Json::as_f64), Some(0.0));
        assert_eq!(hb.get("dedup_ratio_pct").and_then(Json::as_f64), Some(0.0));
        assert_eq!(hb.get("queues").and_then(Json::len), Some(0));
    }

    #[test]
    fn reporter_writes_parseable_lines() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bso-progress-test-{}.jsonl", std::process::id()));
        let reg = live_registry();
        let rep = ProgressReporter::to_path(reg.clone(), Duration::from_millis(5), &path).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        reg.counter("explore.live.states").add(100);
        rep.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        // First line synchronous + at least one periodic + final.
        assert!(lines.len() >= 3, "got {} lines", lines.len());
        for (i, line) in lines.iter().enumerate() {
            let doc = json::parse(line).unwrap();
            assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(i as u64));
        }
        let last = json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("states").and_then(Json::as_u64), Some(1_000));
    }
}
