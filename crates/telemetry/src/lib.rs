//! Lightweight observability for the `bso` workspace.
//!
//! The paper's results quantify over *runs*; this crate makes the cost
//! structure of those runs observable. A [`Registry`] hands out
//! [`Counter`]s, [`Gauge`]s, log2-bucketed [`Histogram`]s and
//! span-scoped timers ([`Span`]), and renders a deterministic JSON
//! [`Snapshot`]. Everything is `std`-only and thread-safe.
//!
//! **Zero cost when disabled.** A disabled registry (the default
//! unless the `BSO_TELEMETRY` environment variable is set) hands out
//! handles that hold no allocation and whose operations compile to a
//! branch on a `None` — no clocks are read, no atomics touched. Hot
//! loops can therefore keep their instrumentation unconditionally.
//!
//! **Deterministic snapshots.** [`Snapshot`] sorts metrics by name and
//! renders integers exactly, so two runs that perform the same work
//! under a fixed schedule produce byte-identical JSON — the property
//! CI leans on to validate experiment artifacts.
//!
//! ```
//! use bso_telemetry::Registry;
//!
//! let reg = Registry::enabled();
//! reg.counter("explore.states").add(17);
//! reg.histogram("explore.frontier_depth").record(5);
//! {
//!     let _span = reg.span("explore.run_ns"); // records ns on drop
//! }
//! let json = reg.snapshot().to_json_string();
//! assert!(json.contains("explore.states"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod progress;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use json::Json;
pub use progress::ProgressReporter;
pub use trace::{TraceArg, TraceSink, TraceSpan, TraceWorker};

/// The environment variable that enables the global registry and names
/// the snapshot file: `BSO_TELEMETRY=path.json`.
pub const ENV_VAR: &str = "BSO_TELEMETRY";

/// Number of histogram buckets: one for zero plus one per power of
/// two up to `u64::MAX` (bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index a value falls into: 0 for 0, otherwise
/// `64 - leading_zeros(v)` (so 1 → bucket 1, 2..=3 → bucket 2, …).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The smallest value in bucket `i` (inverse of [`bucket_index`]).
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

/// A handle-granting metric registry.
///
/// Cloning is cheap (an `Arc` bump) and clones share the same metric
/// store. See the crate docs for the enabled/disabled contract.
#[derive(Clone, Debug)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

/// Clones [`Registry::global`], so any config field initialized with
/// `Registry::default()` honours the `BSO_TELEMETRY` escape hatch.
impl Default for Registry {
    fn default() -> Registry {
        Registry::global().clone()
    }
}

impl Registry {
    /// A live registry that records everything.
    pub fn enabled() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A no-op registry: handles record nothing, snapshots are empty.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The process-wide registry: enabled iff [`ENV_VAR`] (or
    /// [`progress::ENV_VAR`], whose heartbeats sample these metrics)
    /// was set when it was first touched, disabled (and free)
    /// otherwise.
    ///
    /// `Registry::default()` clones this, so plumbing a default
    /// registry through a config struct picks up the `BSO_TELEMETRY`
    /// escape hatch with no further wiring.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            if std::env::var_os(ENV_VAR).is_some() || std::env::var_os(progress::ENV_VAR).is_some()
            {
                Registry::enabled()
            } else {
                Registry::disabled()
            }
        })
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            let mut map = inner.counters.lock().unwrap();
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            let mut map = inner.gauges.lock().unwrap();
            Arc::clone(map.entry(name.to_string()).or_default())
        }))
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            let mut map = inner.histograms.lock().unwrap();
            Arc::clone(
                map.entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new())),
            )
        }))
    }

    /// Starts a span timer that records its elapsed nanoseconds into
    /// the histogram named `name` when dropped. On a disabled registry
    /// no clock is read.
    pub fn span(&self, name: &str) -> Span {
        let hist = self.histogram(name);
        let start = hist.0.is_some().then(Instant::now);
        Span { hist, start }
    }

    /// A point-in-time copy of every metric, ready for rendering.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(inner) = &self.inner else {
            return snap;
        };
        for (name, c) in inner.counters.lock().unwrap().iter() {
            snap.counters
                .insert(name.clone(), c.load(Ordering::Relaxed));
        }
        for (name, g) in inner.gauges.lock().unwrap().iter() {
            snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
        }
        for (name, h) in inner.histograms.lock().unwrap().iter() {
            snap.histograms.insert(name.clone(), h.snapshot());
        }
        snap
    }
}

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (0 on a disabled registry).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins (or running-max) measurement.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the value to `v` if larger.
    pub fn max(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value (0 on a disabled registry).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// A log2-bucketed distribution of `u64` samples.
///
/// Bucket `i ≥ 1` counts samples in `[2^(i-1), 2^i - 1]`; bucket 0
/// counts exact zeros. Good enough resolution for latencies, depths
/// and widths while staying a fixed 65 atomics wide.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Total samples recorded (0 on a disabled registry).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

/// Times a scope and records elapsed nanoseconds into a histogram on
/// drop. Obtain one from [`Registry::span`]; on a disabled registry
/// the span never reads a clock.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Stops the span early, recording now instead of at drop.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

/// A point-in-time copy of a histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping only past `u64::MAX` total).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty `(bucket index, sample count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Estimates the value at quantile `q ∈ [0, 1]` from the log2
    /// buckets: the sample rank is located in its bucket and the value
    /// linearly interpolated across the bucket's range, then clamped
    /// to the observed `[min, max]`. Exact when all samples in the
    /// rank's bucket are equal; otherwise within a factor-of-two
    /// bucket width. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            if seen + n >= rank {
                let lo = bucket_lo(i as usize);
                let hi = match i {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                let frac = if n <= 1 {
                    0.0
                } else {
                    (rank - seen - 1) as f64 / (n - 1) as f64
                };
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est.round() as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Estimated median; see [`HistogramSnapshot::quantile`].
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile; see [`HistogramSnapshot::quantile`].
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile; see [`HistogramSnapshot::quantile`].
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A point-in-time, name-sorted copy of a registry's metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Total number of metrics across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The snapshot as a JSON document:
    ///
    /// ```json
    /// {"schema": "bso-telemetry/v1",
    ///  "metrics": {"explore.states": {"type": "counter", "value": 9}, …}}
    /// ```
    ///
    /// Metrics appear sorted by name, so equal snapshots render to
    /// byte-identical documents.
    pub fn to_json(&self) -> Json {
        let mut metrics: Vec<(String, Json)> = Vec::with_capacity(self.len());
        for (name, v) in &self.counters {
            metrics.push((
                name.clone(),
                Json::obj([("type", Json::str("counter")), ("value", Json::U64(*v))]),
            ));
        }
        for (name, v) in &self.gauges {
            metrics.push((
                name.clone(),
                Json::obj([("type", Json::str("gauge")), ("value", Json::U64(*v))]),
            ));
        }
        for (name, h) in &self.histograms {
            let buckets = h
                .buckets
                .iter()
                .map(|(i, n)| Json::Arr(vec![Json::U64(u64::from(*i)), Json::U64(*n)]))
                .collect();
            metrics.push((
                name.clone(),
                Json::obj([
                    ("type", Json::str("histogram")),
                    ("count", Json::U64(h.count)),
                    ("sum", Json::U64(h.sum)),
                    ("min", Json::U64(h.min)),
                    ("max", Json::U64(h.max)),
                    ("p50", Json::U64(h.p50())),
                    ("p90", Json::U64(h.p90())),
                    ("p99", Json::U64(h.p99())),
                    ("buckets", Json::Arr(buckets)),
                ]),
            ));
        }
        metrics.sort_by(|(a, _), (b, _)| a.cmp(b));
        Json::obj([
            ("schema", Json::str("bso-telemetry/v1")),
            ("metrics", Json::Obj(metrics)),
        ])
    }

    /// [`Snapshot::to_json`] rendered pretty, ready to write to disk.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }
}

/// Writes the global registry's snapshot to the path named by
/// [`ENV_VAR`], if the variable is set and the registry recorded
/// anything. Returns the path written to, if any.
///
/// Every experiment regenerator (examples, benches) calls this once
/// before exiting, which is the whole `BSO_TELEMETRY=path.json`
/// escape hatch.
pub fn dump_global_if_env() -> std::io::Result<Option<std::path::PathBuf>> {
    let Some(path) = std::env::var_os(ENV_VAR) else {
        return Ok(None);
    };
    let path = std::path::PathBuf::from(path);
    std::fs::write(&path, Registry::global().snapshot().to_json_string())?;
    Ok(Some(path))
}

/// Writes every artifact requested via environment variables — the
/// telemetry snapshot ([`ENV_VAR`]) and the Chrome trace
/// ([`trace::ENV_VAR`]) — and returns a `(kind, path)` pair for each
/// file written. I/O errors surface as warnings on stderr instead of
/// aborting; exit paths should prefer this over unwrapping
/// [`dump_global_if_env`].
pub fn dump_all_if_env() -> Vec<(&'static str, std::path::PathBuf)> {
    let mut written = Vec::new();
    match dump_global_if_env() {
        Ok(Some(path)) => written.push(("telemetry snapshot", path)),
        Ok(None) => {}
        Err(e) => eprintln!("warning: failed to write {ENV_VAR} snapshot: {e}"),
    }
    match trace::dump_global_trace_if_env() {
        Ok(Some(path)) => written.push(("trace", path)),
        Ok(None) => {}
        Err(e) => eprintln!("warning: failed to write {} trace: {e}", trace::ENV_VAR),
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's lower bound maps back to that bucket, and the
        // value just below it maps to the previous one.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i);
            assert_eq!(bucket_index(bucket_lo(i) - 1), i - 1);
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let reg = Registry::enabled();
        let h = reg.histogram("h");
        for v in [0, 1, 3, 1024] {
            h.record(v);
        }
        let snap = &reg.snapshot().histograms["h"];
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1028);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1024);
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 1), (11, 1)]);
    }

    /// Records each value once and returns the snapshot.
    fn hist_of(values: impl IntoIterator<Item = u64>) -> HistogramSnapshot {
        let reg = Registry::enabled();
        let h = reg.histogram("h");
        for v in values {
            h.record(v);
        }
        reg.snapshot().histograms["h"].clone()
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        // 1..=1000, once each: estimates stay within 5% of the truth.
        let snap = hist_of(1..=1000);
        assert_eq!(snap.p50(), 500); // the interpolation is exact here
        for (q, truth) in [(0.90, 900.0), (0.99, 990.0)] {
            let est = snap.quantile(q) as f64;
            let err = (est - truth).abs() / truth;
            assert!(err < 0.05, "q={q}: est {est} vs true {truth}");
        }
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.quantile(1.0), 1000);
    }

    #[test]
    fn quantiles_on_constant_distribution() {
        // All mass on one value: every quantile is that value, even
        // though the bucket spans [4, 7].
        let snap = hist_of(std::iter::repeat_n(7, 42));
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 7);
        }
    }

    #[test]
    fn quantiles_on_bimodal_distribution() {
        // Ninety 1s and ten 1000s: the median is 1, the tail is large.
        let values = std::iter::repeat_n(1, 90).chain(std::iter::repeat_n(1000, 10));
        let snap = hist_of(values);
        assert_eq!(snap.p50(), 1);
        assert_eq!(snap.p90(), 1);
        let p99 = snap.p99() as f64;
        assert!((p99 - 1000.0).abs() / 1000.0 < 0.05, "p99 {p99}");
    }

    #[test]
    fn quantiles_on_empty_histogram() {
        let snap = HistogramSnapshot::default();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.quantile(1.0), 0);
    }

    #[test]
    fn snapshot_json_carries_quantiles() {
        let reg = Registry::enabled();
        let h = reg.histogram("q");
        for v in 1..=100 {
            h.record(v);
        }
        let doc = reg.snapshot().to_json();
        let metric = doc.get("metrics").and_then(|m| m.get("q")).unwrap();
        assert_eq!(metric.get("p50").and_then(Json::as_u64), Some(50));
        assert!(metric.get("p90").and_then(Json::as_u64).unwrap() >= 64);
        assert!(metric.get("p99").and_then(Json::as_u64).unwrap() <= 100);
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = Registry::disabled();
        let c = reg.counter("c");
        c.add(5);
        reg.gauge("g").set(7);
        reg.histogram("h").record(9);
        drop(reg.span("s"));
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot().is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn handles_share_storage_across_clones() {
        let reg = Registry::enabled();
        let a = reg.counter("n");
        let b = reg.clone().counter("n");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("n").get(), 3);
    }

    #[test]
    fn span_records_nanoseconds() {
        let reg = Registry::enabled();
        {
            let _s = reg.span("t");
        }
        reg.span("t").finish();
        let snap = &reg.snapshot().histograms["t"];
        assert_eq!(snap.count, 2);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let build = |order_flipped: bool| {
            let reg = Registry::enabled();
            let names = if order_flipped {
                ["z.last", "a.first"]
            } else {
                ["a.first", "z.last"]
            };
            for n in names {
                reg.counter(n).add(2);
            }
            reg.gauge("m.middle").max(9);
            reg.gauge("m.middle").max(4);
            reg.histogram("d.depth").record(3);
            reg.snapshot().to_json_string()
        };
        let a = build(false);
        let b = build(true);
        assert_eq!(a, b);
        let doc = json::parse(&a).unwrap();
        let names: Vec<&str> = doc
            .get("metrics")
            .and_then(Json::entries)
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(names, ["a.first", "d.depth", "m.middle", "z.last"]);
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("m.middle"))
                .and_then(|g| g.get("value"))
                .and_then(Json::as_u64),
            Some(9)
        );
    }

    #[test]
    fn snapshot_counts_metrics() {
        let reg = Registry::enabled();
        reg.counter("a").inc();
        reg.gauge("b").set(1);
        reg.histogram("c").record(1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
    }
}
