//! Structured event tracing with Chrome trace-event export.
//!
//! Where the metric [`Registry`](crate::Registry) aggregates *counts*,
//! this module records *events*: per-worker, ring-buffered
//! `begin`/`end` spans and `instant` markers carrying a nanosecond
//! timestamp, the worker id, a name and `key=value` arguments. A
//! [`TraceSink`] hands out one [`TraceWorker`] per thread of
//! execution; workers write into private ring buffers (bounded, oldest
//! events overwritten) so hot loops never contend on a shared lock.
//!
//! **Zero cost when disabled.** A disabled sink hands out disabled
//! workers; every recording call is a branch on a `None` — no clocks
//! read, no allocation, no locking. Instrumentation sites additionally
//! gate on [`TraceWorker::is_enabled`] so argument lists are never
//! even constructed.
//!
//! **Chrome trace-event export.** [`TraceSink::export`] renders the
//! collected events as a Chrome trace-event / Perfetto JSON document
//! (schema tag `bso-trace/v1`): spans become `"ph": "X"` complete
//! events, instants become `"ph": "i"` with thread scope, and each
//! worker gets a `thread_name` metadata record. The file loads
//! directly in `ui.perfetto.dev` or `chrome://tracing`.
//!
//! The `BSO_TRACE=path.json` environment variable enables the global
//! sink ([`TraceSink::global`]) and names the export file, mirroring
//! the `BSO_TELEMETRY` escape hatch.
//!
//! ```
//! use bso_telemetry::trace::{TraceArg, TraceSink};
//!
//! let sink = TraceSink::enabled();
//! let w = sink.worker("explore-w0");
//! {
//!     let _span = w.begin("expand"); // "X" event recorded on drop
//! }
//! w.instant_with("dedup_hit", [("depth", TraceArg::U64(3))]);
//! let doc = sink.export();
//! assert_eq!(doc.get("schema").and_then(|s| s.as_str()), Some("bso-trace/v1"));
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// The environment variable that enables the global sink and names the
/// trace file: `BSO_TRACE=path.json`.
pub const ENV_VAR: &str = "BSO_TRACE";

/// Default per-worker ring capacity (events). Old events are dropped
/// (and counted) once a worker's ring is full.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// One `key=value` argument attached to a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceArg {
    /// An unsigned integer argument.
    U64(u64),
    /// A signed integer argument.
    I64(i64),
    /// A floating-point argument.
    F64(f64),
    /// A string argument.
    Str(String),
}

impl TraceArg {
    fn to_json(&self) -> Json {
        match self {
            TraceArg::U64(v) => Json::U64(*v),
            TraceArg::I64(v) => Json::I64(*v),
            TraceArg::F64(v) => Json::F64(*v),
            TraceArg::Str(s) => Json::str(s),
        }
    }
}

impl From<u64> for TraceArg {
    fn from(v: u64) -> TraceArg {
        TraceArg::U64(v)
    }
}

impl From<usize> for TraceArg {
    fn from(v: usize) -> TraceArg {
        TraceArg::U64(v as u64)
    }
}

impl From<i64> for TraceArg {
    fn from(v: i64) -> TraceArg {
        TraceArg::I64(v)
    }
}

impl From<f64> for TraceArg {
    fn from(v: f64) -> TraceArg {
        TraceArg::F64(v)
    }
}

impl From<&str> for TraceArg {
    fn from(s: &str) -> TraceArg {
        TraceArg::Str(s.to_string())
    }
}

impl From<String> for TraceArg {
    fn from(s: String) -> TraceArg {
        TraceArg::Str(s)
    }
}

/// One recorded event, before export.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since the sink's epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds; `None` marks an instant.
    pub dur_ns: Option<u64>,
    /// Event name.
    pub name: String,
    /// `key=value` arguments.
    pub args: Vec<(&'static str, TraceArg)>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, capacity: usize, ev: TraceEvent) {
        if self.events.len() >= capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

#[derive(Debug)]
struct WorkerBuf {
    tid: u64,
    label: String,
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct SinkInner {
    epoch: Instant,
    capacity: usize,
    workers: Mutex<Vec<Arc<WorkerBuf>>>,
}

/// A trace collector: hands out per-worker event buffers and exports
/// the merged event stream as Chrome trace-event JSON.
///
/// Cloning is cheap (an `Arc` bump) and clones share the same buffers.
#[derive(Clone, Debug)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

/// Clones [`TraceSink::global`], so any config field initialized with
/// `TraceSink::default()` honours the `BSO_TRACE` escape hatch.
impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::global().clone()
    }
}

impl TraceSink {
    /// A live sink with the default per-worker ring capacity.
    pub fn enabled() -> TraceSink {
        TraceSink::with_capacity(DEFAULT_CAPACITY)
    }

    /// A live sink whose workers each keep at most `capacity` events
    /// (oldest dropped first).
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                epoch: Instant::now(),
                capacity: capacity.max(1),
                workers: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A no-op sink: workers record nothing, exports are empty.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The process-wide sink: enabled iff [`ENV_VAR`] was set when it
    /// was first touched, disabled (and free) otherwise.
    pub fn global() -> &'static TraceSink {
        static GLOBAL: OnceLock<TraceSink> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            if std::env::var_os(ENV_VAR).is_some() {
                TraceSink::enabled()
            } else {
                TraceSink::disabled()
            }
        })
    }

    /// Registers a new worker lane named `label` (rendered as the
    /// thread name in Perfetto) and returns its recording handle.
    pub fn worker(&self, label: impl Into<String>) -> TraceWorker {
        let Some(inner) = &self.inner else {
            return TraceWorker { ctx: None };
        };
        let buf = {
            let mut workers = inner.workers.lock().unwrap();
            let buf = Arc::new(WorkerBuf {
                tid: workers.len() as u64 + 1,
                label: label.into(),
                ring: Mutex::new(Ring {
                    events: VecDeque::new(),
                    dropped: 0,
                }),
            });
            workers.push(Arc::clone(&buf));
            buf
        };
        TraceWorker {
            ctx: Some(WorkerCtx {
                epoch: inner.epoch,
                capacity: inner.capacity,
                buf,
            }),
        }
    }

    /// Total events currently buffered across all workers.
    pub fn events_len(&self) -> usize {
        let Some(inner) = &self.inner else { return 0 };
        let workers = inner.workers.lock().unwrap();
        workers
            .iter()
            .map(|w| w.ring.lock().unwrap().events.len())
            .sum()
    }

    /// Exports the collected events as a Chrome trace-event JSON
    /// document.
    ///
    /// Top level:
    ///
    /// ```json
    /// {"schema": "bso-trace/v1",
    ///  "displayTimeUnit": "ms",
    ///  "dropped": 0,
    ///  "traceEvents": [ … ]}
    /// ```
    ///
    /// `traceEvents` opens with one `"ph": "M"` `thread_name` metadata
    /// record per worker, followed by the data events sorted by
    /// timestamp: spans as `"ph": "X"` (with `dur`), instants as
    /// `"ph": "i"` with thread scope. Timestamps are microseconds
    /// (fractional), as the trace-event format requires.
    pub fn export(&self) -> Json {
        let mut out: Vec<Json> = Vec::new();
        let mut data: Vec<(u64, u64, Json)> = Vec::new();
        let mut dropped = 0u64;
        if let Some(inner) = &self.inner {
            let workers = inner.workers.lock().unwrap();
            for w in workers.iter() {
                out.push(Json::obj([
                    ("name", Json::str("thread_name")),
                    ("ph", Json::str("M")),
                    ("pid", Json::U64(1)),
                    ("tid", Json::U64(w.tid)),
                    ("args", Json::obj([("name", Json::str(&w.label))])),
                ]));
                let ring = w.ring.lock().unwrap();
                dropped += ring.dropped;
                for ev in &ring.events {
                    let mut fields: Vec<(&str, Json)> = vec![
                        ("name", Json::str(&ev.name)),
                        ("ph", Json::str(if ev.dur_ns.is_some() { "X" } else { "i" })),
                        ("pid", Json::U64(1)),
                        ("tid", Json::U64(w.tid)),
                        ("ts", Json::F64(ev.ts_ns as f64 / 1_000.0)),
                    ];
                    match ev.dur_ns {
                        Some(dur) => fields.push(("dur", Json::F64(dur as f64 / 1_000.0))),
                        None => fields.push(("s", Json::str("t"))),
                    }
                    if !ev.args.is_empty() {
                        fields.push((
                            "args",
                            Json::Obj(
                                ev.args
                                    .iter()
                                    .map(|(k, v)| ((*k).to_string(), v.to_json()))
                                    .collect(),
                            ),
                        ));
                    }
                    data.push((ev.ts_ns, w.tid, Json::obj(fields)));
                }
            }
        }
        data.sort_by_key(|(ts, tid, _)| (*ts, *tid));
        out.extend(data.into_iter().map(|(_, _, j)| j));
        Json::obj([
            ("schema", Json::str("bso-trace/v1")),
            ("displayTimeUnit", Json::str("ms")),
            ("dropped", Json::U64(dropped)),
            ("traceEvents", Json::Arr(out)),
        ])
    }

    /// [`TraceSink::export`] rendered pretty, ready to write to disk.
    pub fn export_string(&self) -> String {
        self.export().render_pretty()
    }
}

#[derive(Clone, Debug)]
struct WorkerCtx {
    epoch: Instant,
    capacity: usize,
    buf: Arc<WorkerBuf>,
}

/// A per-worker recording handle obtained from [`TraceSink::worker`].
///
/// Cloning shares the worker's ring buffer. On a handle from a
/// disabled sink every method is a no-op that reads no clock.
#[derive(Clone, Debug)]
pub struct TraceWorker {
    ctx: Option<WorkerCtx>,
}

/// A disabled handle (records nothing).
impl Default for TraceWorker {
    fn default() -> TraceWorker {
        TraceWorker::disabled()
    }
}

impl TraceWorker {
    /// A handle that records nothing.
    pub fn disabled() -> TraceWorker {
        TraceWorker { ctx: None }
    }

    /// Whether events recorded here go anywhere. Hot sites check this
    /// before building argument lists.
    pub fn is_enabled(&self) -> bool {
        self.ctx.is_some()
    }

    fn push(&self, ev: TraceEvent) {
        if let Some(ctx) = &self.ctx {
            ctx.buf.ring.lock().unwrap().push(ctx.capacity, ev);
        }
    }

    fn clock_ns(ctx: &WorkerCtx) -> u64 {
        u64::try_from(ctx.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Nanoseconds elapsed since the parent sink's epoch — the
    /// timestamp domain of [`TraceWorker::event_at`]. Returns 0 (and
    /// reads no clock) on a disabled handle, so callers can take a
    /// stamp before an operation and emit the span after it with
    /// `event_at(t0, Some(now_ns() - t0), …)`.
    pub fn now_ns(&self) -> u64 {
        match &self.ctx {
            Some(ctx) => Self::clock_ns(ctx),
            None => 0,
        }
    }

    /// Records an instant event (no duration) stamped now.
    pub fn instant(&self, name: &str) {
        self.instant_with(name, []);
    }

    /// Records an instant event with `key=value` arguments.
    pub fn instant_with(
        &self,
        name: &str,
        args: impl IntoIterator<Item = (&'static str, TraceArg)>,
    ) {
        let Some(ctx) = &self.ctx else { return };
        self.push(TraceEvent {
            ts_ns: Self::clock_ns(ctx),
            dur_ns: None,
            name: name.to_string(),
            args: args.into_iter().collect(),
        });
    }

    /// Starts a span: a complete (`"X"`) event recorded when the
    /// returned guard is dropped or [`TraceSpan::end`]ed.
    pub fn begin(&self, name: &str) -> TraceSpan {
        match &self.ctx {
            Some(ctx) => TraceSpan {
                worker: self.clone(),
                name: name.to_string(),
                start_ns: Self::clock_ns(ctx),
                args: Vec::new(),
                done: false,
            },
            None => TraceSpan {
                worker: TraceWorker::disabled(),
                name: String::new(),
                start_ns: 0,
                args: Vec::new(),
                done: true,
            },
        }
    }

    /// Records an event with explicit timestamps, for replaying
    /// histories whose clock is not this sink's epoch (e.g. the
    /// logical clock of a recorded concurrent run).
    pub fn event_at(
        &self,
        ts_ns: u64,
        dur_ns: Option<u64>,
        name: &str,
        args: impl IntoIterator<Item = (&'static str, TraceArg)>,
    ) {
        if self.ctx.is_none() {
            return;
        }
        self.push(TraceEvent {
            ts_ns,
            dur_ns,
            name: name.to_string(),
            args: args.into_iter().collect(),
        });
    }
}

/// An open span from [`TraceWorker::begin`]; records a complete event
/// with its measured duration when dropped.
#[derive(Debug)]
pub struct TraceSpan {
    worker: TraceWorker,
    name: String,
    start_ns: u64,
    args: Vec<(&'static str, TraceArg)>,
    done: bool,
}

impl TraceSpan {
    /// Attaches a `key=value` argument to the span (no-op when the
    /// parent sink is disabled).
    pub fn arg(&mut self, key: &'static str, value: impl Into<TraceArg>) {
        if self.worker.is_enabled() {
            self.args.push((key, value.into()));
        }
    }

    /// Ends the span now instead of at drop.
    pub fn end(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let Some(ctx) = &self.worker.ctx else { return };
        let end_ns = TraceWorker::clock_ns(ctx);
        self.worker.push(TraceEvent {
            ts_ns: self.start_ns,
            dur_ns: Some(end_ns.saturating_sub(self.start_ns)),
            name: std::mem::take(&mut self.name),
            args: std::mem::take(&mut self.args),
        });
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.record();
    }
}

/// Writes the global sink's Chrome trace-event export to the path
/// named by [`ENV_VAR`], if the variable is set. Returns the path
/// written to, if any.
///
/// The companion of [`crate::dump_global_if_env`] for the
/// `BSO_TRACE=path.json` escape hatch; experiment regenerators call
/// both through [`crate::dump_all_if_env`].
///
/// # Errors
///
/// Propagates the I/O error from writing the file.
pub fn dump_global_trace_if_env() -> std::io::Result<Option<std::path::PathBuf>> {
    let Some(path) = std::env::var_os(ENV_VAR) else {
        return Ok(None);
    };
    let path = std::path::PathBuf::from(path);
    std::fs::write(&path, TraceSink::global().export_string())?;
    Ok(Some(path))
}

fn merge_events_of<'a>(doc: &'a Json, which: &str) -> Result<&'a [Json], String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some("bso-trace/v1") => {}
        other => {
            return Err(format!(
                "{which} trace: schema is {other:?}, want bso-trace/v1"
            ))
        }
    }
    match doc.get("traceEvents") {
        Some(Json::Arr(evs)) => Ok(evs),
        _ => Err(format!(
            "{which} trace: traceEvents missing or not an array"
        )),
    }
}

/// Midpoint timestamp (µs) of the first `"X"` span per `trace_id` arg.
fn span_mids(events: &[Json]) -> BTreeMap<u64, f64> {
    let mut out = BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let Some(id) = e
            .get("args")
            .and_then(|a| a.get("trace_id"))
            .and_then(Json::as_u64)
        else {
            continue;
        };
        let Some(ts) = e.get("ts").and_then(Json::as_f64) else {
            continue;
        };
        let dur = e.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
        out.entry(id).or_insert(ts + dur / 2.0);
    }
    out
}

/// Re-emits one event with its `tid` shifted by `tid_base`, its `ts`
/// shifted by `ts_shift` µs, and (for `"M"` metadata) its thread name
/// prefixed with `side:`.
fn rebase_event(e: &Json, tid_base: u64, ts_shift: f64, side: &str) -> Json {
    let Json::Obj(entries) = e else {
        return e.clone();
    };
    let is_meta = e.get("ph").and_then(Json::as_str) == Some("M");
    Json::Obj(
        entries
            .iter()
            .map(|(k, v)| {
                let nv = match k.as_str() {
                    "tid" => Json::U64(v.as_u64().unwrap_or(0) + tid_base),
                    "ts" => Json::F64(v.as_f64().unwrap_or(0.0) + ts_shift),
                    "args" if is_meta => {
                        let name = v.get("name").and_then(Json::as_str).unwrap_or("");
                        Json::obj([("name", Json::str(format!("{side}:{name}")))])
                    }
                    _ => v.clone(),
                };
                (k.clone(), nv)
            })
            .collect(),
    )
}

/// Joins a client-side and a server-side Chrome-trace export (both
/// `bso-trace/v1`, from [`TraceSink::export`]) into one timeline.
///
/// The two sinks have independent epochs, so server timestamps are
/// shifted onto the client clock using the median offset between the
/// span midpoints of every `trace_id` that appears on both sides (the
/// ids stamped into request frames by a tracing client and echoed by
/// the server's per-shard span records). Server worker tracks are
/// renumbered after the client's, and every `thread_name` is prefixed
/// `client:` or `server:`.
///
/// The merged document keeps the `bso-trace/v1` shape (it revalidates
/// and reloads anywhere the inputs do) and adds a `"merged"` object:
/// `matched` (trace_ids seen on both sides), `client_only`,
/// `server_only`, and `offset_us` (the applied clock shift).
///
/// # Errors
///
/// Rejects documents that are not `bso-trace/v1`, and inputs that
/// share no `trace_id` (there is nothing to align the clocks with).
pub fn merge_traces(client: &Json, server: &Json) -> Result<Json, String> {
    let c_events = merge_events_of(client, "client")?;
    let s_events = merge_events_of(server, "server")?;
    let c_mids = span_mids(c_events);
    let s_mids = span_mids(s_events);
    let mut offsets: Vec<f64> = c_mids
        .iter()
        .filter_map(|(id, c)| s_mids.get(id).map(|s| c - s))
        .collect();
    if offsets.is_empty() {
        return Err("no trace_id appears in both traces; cannot align clocks".to_string());
    }
    offsets.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let offset = offsets[offsets.len() / 2];
    let matched = offsets.len() as u64;
    let client_only = (c_mids.len() as u64).saturating_sub(matched);
    let server_only = (s_mids.len() as u64).saturating_sub(matched);

    let tid_base = c_events
        .iter()
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .max()
        .unwrap_or(0);
    let mut meta: Vec<Json> = Vec::new();
    let mut data: Vec<(f64, u64, Json)> = Vec::new();
    for (events, base, shift, side) in [
        (c_events, 0u64, 0.0f64, "client"),
        (s_events, tid_base, offset, "server"),
    ] {
        for e in events {
            let out = rebase_event(e, base, shift, side);
            if out.get("ph").and_then(Json::as_str) == Some("M") {
                meta.push(out);
            } else {
                let ts = out.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
                let tid = out.get("tid").and_then(Json::as_u64).unwrap_or(0);
                data.push((ts, tid, out));
            }
        }
    }
    data.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    meta.extend(data.into_iter().map(|(_, _, j)| j));

    let dropped = client.get("dropped").and_then(Json::as_u64).unwrap_or(0)
        + server.get("dropped").and_then(Json::as_u64).unwrap_or(0);
    Ok(Json::obj([
        ("schema", Json::str("bso-trace/v1")),
        ("displayTimeUnit", Json::str("ms")),
        ("dropped", Json::U64(dropped)),
        (
            "merged",
            Json::obj([
                ("matched", Json::U64(matched)),
                ("client_only", Json::U64(client_only)),
                ("server_only", Json::U64(server_only)),
                ("offset_us", Json::F64(offset)),
            ]),
        ),
        ("traceEvents", Json::Arr(meta)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        let w = sink.worker("w");
        assert!(!sink.is_enabled());
        assert!(!w.is_enabled());
        w.instant("x");
        w.instant_with("y", [("k", TraceArg::U64(1))]);
        drop(w.begin("z"));
        w.event_at(5, Some(2), "e", []);
        assert_eq!(sink.events_len(), 0);
        let doc = sink.export();
        assert_eq!(
            doc.get("traceEvents").and_then(|t| t.len()),
            Some(0),
            "no events, not even metadata"
        );
    }

    #[test]
    fn span_and_instant_round_trip_through_export() {
        let sink = TraceSink::enabled();
        let w = sink.worker("explore-w0");
        {
            let mut s = w.begin("expand");
            s.arg("depth", 4u64);
        }
        w.instant_with("dedup_hit", [("shard", TraceArg::U64(7))]);
        assert_eq!(sink.events_len(), 2);

        let text = sink.export_string();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bso-trace/v1")
        );
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // Metadata first, then the two data events.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("explore-w0")
        );
        let span = &events[1];
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("name").and_then(Json::as_str), Some("expand"));
        assert!(span.get("dur").is_some());
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("depth"))
                .and_then(Json::as_u64),
            Some(4)
        );
        let inst = &events[2];
        assert_eq!(inst.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(inst.get("s").and_then(Json::as_str), Some("t"));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let sink = TraceSink::with_capacity(4);
        let w = sink.worker("w");
        for i in 0..10u64 {
            w.instant_with("e", [("i", TraceArg::U64(i))]);
        }
        assert_eq!(sink.events_len(), 4);
        let doc = sink.export();
        assert_eq!(doc.get("dropped").and_then(Json::as_u64), Some(6));
        // The survivors are the newest four.
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            _ => unreachable!(),
        };
        let is: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("i"))
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .collect();
        assert_eq!(is, vec![6, 7, 8, 9]);
    }

    #[test]
    fn workers_get_distinct_tids_and_events_sort_by_time() {
        let sink = TraceSink::enabled();
        let a = sink.worker("a");
        let b = sink.worker("b");
        b.event_at(200, None, "late", []);
        a.event_at(100, None, "early", []);
        let doc = sink.export();
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            _ => unreachable!(),
        };
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .map(|e| e.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(names, ["early", "late"]);
        let tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(tids, vec![1, 2]);
    }

    #[test]
    fn explicit_timestamps_become_complete_events() {
        let sink = TraceSink::enabled();
        let w = sink.worker("proc-p0");
        w.event_at(1_000, Some(2_000), "read", [("obj", TraceArg::U64(0))]);
        let doc = sink.export();
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            _ => unreachable!(),
        };
        let ev = &events[1];
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(ev.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(ev.get("dur").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn now_ns_is_monotonic_and_zero_when_disabled() {
        assert_eq!(TraceWorker::disabled().now_ns(), 0);
        let sink = TraceSink::enabled();
        let w = sink.worker("w");
        let a = w.now_ns();
        let b = w.now_ns();
        assert!(b >= a);
    }

    fn traced_span(w: &TraceWorker, ts_ns: u64, dur_ns: u64, trace_id: u64) {
        w.event_at(
            ts_ns,
            Some(dur_ns),
            "op",
            [("trace_id", TraceArg::U64(trace_id))],
        );
    }

    #[test]
    fn merge_aligns_clocks_and_counts_matches() {
        // Client spans at 10µs and 50µs; server saw the same work on a
        // clock shifted 1ms earlier, plus one span the client never
        // stamped.
        let client = TraceSink::enabled();
        let cw = client.worker("conn0");
        traced_span(&cw, 10_000, 4_000, 1);
        traced_span(&cw, 50_000, 4_000, 2);
        let server = TraceSink::enabled();
        let sw = server.worker("loop0");
        traced_span(&sw, 1_011_000, 2_000, 1);
        traced_span(&sw, 1_051_000, 2_000, 2);
        traced_span(&sw, 1_900_000, 2_000, 99);

        let merged = merge_traces(&client.export(), &server.export()).unwrap();
        assert_eq!(
            merged.get("schema").and_then(Json::as_str),
            Some("bso-trace/v1")
        );
        let m = merged.get("merged").unwrap();
        assert_eq!(m.get("matched").and_then(Json::as_u64), Some(2));
        assert_eq!(m.get("client_only").and_then(Json::as_u64), Some(0));
        assert_eq!(m.get("server_only").and_then(Json::as_u64), Some(1));
        // True offset is client − server = −1000µs.
        let off = m.get("offset_us").and_then(Json::as_f64).unwrap();
        assert!((off - (-1000.0)).abs() < 1e-6, "offset {off}");

        let events = match merged.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            _ => unreachable!(),
        };
        // Thread names are side-prefixed and tids disjoint.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(names, ["client:conn0", "server:loop0"]);
        // After the shift, server span 1 nests inside client span 1.
        let span = |tid: u64, id: u64| {
            events
                .iter()
                .find(|e| {
                    e.get("tid").and_then(Json::as_u64) == Some(tid)
                        && e.get("args")
                            .and_then(|a| a.get("trace_id"))
                            .and_then(Json::as_u64)
                            == Some(id)
                })
                .unwrap()
        };
        let c1 = span(1, 1);
        let s1 = span(2, 1);
        let (cts, cdur) = (
            c1.get("ts").and_then(Json::as_f64).unwrap(),
            c1.get("dur").and_then(Json::as_f64).unwrap(),
        );
        let (sts, sdur) = (
            s1.get("ts").and_then(Json::as_f64).unwrap(),
            s1.get("dur").and_then(Json::as_f64).unwrap(),
        );
        assert!(sts >= cts && sts + sdur <= cts + cdur, "server span nests");
    }

    #[test]
    fn merge_rejects_disjoint_traces_and_bad_schemas() {
        let a = TraceSink::enabled();
        a.worker("a").event_at(1, Some(1), "x", []);
        let b = TraceSink::enabled();
        b.worker("b").event_at(1, Some(1), "y", []);
        let err = merge_traces(&a.export(), &b.export()).unwrap_err();
        assert!(err.contains("no trace_id"), "{err}");
        let err =
            merge_traces(&Json::obj([("schema", Json::str("nope"))]), &b.export()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn trace_arg_conversions() {
        assert_eq!(TraceArg::from(3u64), TraceArg::U64(3));
        assert_eq!(TraceArg::from(3usize), TraceArg::U64(3));
        assert_eq!(TraceArg::from(-3i64), TraceArg::I64(-3));
        assert_eq!(TraceArg::from("s"), TraceArg::Str("s".to_string()));
        assert!(matches!(TraceArg::from(0.5f64), TraceArg::F64(_)));
    }
}
