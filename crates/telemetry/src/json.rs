//! A minimal JSON document model with a deterministic writer and a
//! strict reader.
//!
//! The workspace builds fully offline (no serde), so the handful of
//! places that produce machine-readable artifacts — telemetry
//! snapshots, `BENCH_*.json` experiment records — share this module
//! instead of hand-assembling strings. Objects preserve insertion
//! order, so a caller that inserts keys in sorted order gets
//! byte-identical output for identical data: the determinism the
//! snapshot tests rely on.

use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers keep their Rust representation (`U64`/`I64`/`F64`) so
/// counters round-trip exactly; non-finite floats serialize as
/// `null`, which is what the experiment records want for "no data".
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, bucket counts).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; NaN and infinities render as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved verbatim by the writer.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an f64, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number of elements or members, if this is an array or an
    /// object.
    pub fn len(&self) -> Option<usize> {
        match self {
            Json::Arr(items) => Some(items.len()),
            Json::Obj(pairs) => Some(pairs.len()),
            _ => None,
        }
    }

    /// Whether this is an array or object with no members (`None` for
    /// scalars).
    pub fn is_empty(&self) -> Option<bool> {
        self.len().map(|n| n == 0)
    }

    /// The elements, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the document compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline — the format of every artifact the workspace writes.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) if v.is_finite() => {
                // `{}` on f64 is the shortest string that round-trips,
                // so identical data renders identically.
                let _ = write!(out, "{v}");
            }
            Json::F64(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, rejecting anything malformed.
///
/// This is a strict recursive-descent reader for validating the
/// artifacts the workspace itself emits (CI runs it over telemetry
/// snapshots); it supports the full JSON grammar except `\uXXXX`
/// surrogate pairs, which none of our writers produce.
pub fn parse(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Containers may nest at most this deep. The parser is recursive, so
/// without a cap a pathological `[[[[…` input would overflow the stack
/// — an abort, not a [`ParseError`]. No legitimate bso artifact nests
/// more than a handful of levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Self::array),
            Some(b'{') => self.nested(Self::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Runs a container parser one nesting level down, rejecting
    /// documents deeper than [`MAX_DEPTH`] instead of recursing into a
    /// stack overflow.
    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<Json, ParseError>,
    ) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("containers nested too deeply"));
        }
        self.depth += 1;
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            self.pos += 4;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // `pos` only ever advances past ASCII bytes or
                    // whole chars, so this slice is boundary-safe; the
                    // error arm is unreachable but keeps corrupt input
                    // on the typed-error path rather than panicking.
                    let c = self.src[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // Only ASCII digit/sign/exponent bytes were consumed, so the
        // slice is valid UTF-8; fail soft all the same.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("malformed number"))?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Json::F64)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_round_trip() {
        let doc = Json::obj([
            ("name", Json::str("explore/\"k=6\"\n")),
            ("count", Json::U64(42)),
            ("delta", Json::I64(-7)),
            ("rate", Json::F64(1234.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("buckets", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\x\"", "nan"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn truncated_documents_yield_positioned_errors() {
        // Every prefix of a valid document must fail with a typed
        // error — never a panic — and point inside the input.
        let full = r#"{"schema":"bso-metrics/v1","counters":{"explore.states":[1,2]}}"#;
        for cut in 1..full.len() {
            let prefix = &full[..cut];
            if let Err(e) = parse(prefix) {
                assert!(e.at <= prefix.len(), "offset out of range for {prefix:?}");
                assert!(!e.msg.is_empty());
            }
            // Some prefixes happen to parse (e.g. a bare number would,
            // but none here); the loop's point is that none panic.
        }
    }

    #[test]
    fn pathological_nesting_is_rejected_not_overflowed() {
        // 100k opening brackets would previously blow the parser's
        // stack; now it is a MAX_DEPTH parse error.
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.msg.contains("nested too deeply"), "{err}");
        // ... while reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn huge_exponents_are_malformed_not_infinite() {
        let err = parse("1e999").unwrap_err();
        assert!(err.msg.contains("malformed number"), "{err}");
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::str("a\u{1}b").render();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(parse(&s).unwrap(), Json::str("a\u{1}b"));
    }

    #[test]
    fn object_lookup_helpers() {
        let doc = parse("{\"metrics\": {\"x\": 3}}").unwrap();
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(metrics.get("x").and_then(Json::as_u64), Some(3));
        assert_eq!(metrics.entries().unwrap().len(), 1);
        assert!(doc.get("absent").is_none());
    }
}
