use std::fmt;

use crate::Value;

/// Identifier of a shared object within a [`crate::Layout`].
///
/// Object ids index the flat object heap of a simulated (or
/// hardware-backed) shared memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjectId(pub usize);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// The kind of a shared-memory operation, without its target object.
///
/// Each variant corresponds to one atomic machine instruction in the
/// paper's model. Which kinds an object accepts is determined by its
/// type; a mismatch yields [`crate::ObjectError::TypeMismatch`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OpKind {
    /// Atomic read; response is the current contents.
    ///
    /// On a `compare&swap` register this is the derived operation
    /// `c&s(v → v)` (see the crate docs): it never changes the contents
    /// and returns them.
    Read,
    /// Atomic write; response is [`Value::Nil`].
    Write(Value),
    /// `c&s(expect → new)`: if the contents equal `expect` they are
    /// replaced by `new`; the response is always the *previous*
    /// contents (so the invoker succeeded iff the response equals
    /// `expect`).
    Cas {
        /// The value the register must currently hold for the swap to
        /// take effect.
        expect: Value,
        /// The replacement value.
        new: Value,
    },
    /// Test-and-set: sets the bit, responds with the *previous* bit
    /// (`Bool(false)` means the invoker won).
    TestAndSet,
    /// Resets a test&set bit; response is [`Value::Nil`].
    Reset,
    /// Fetch-and-add: adds the operand, responds with the *previous*
    /// count.
    FetchAdd(i64),
    /// Atomic swap: stores the operand, responds with the previous
    /// contents.
    Swap(Value),
    /// Atomic scan of a snapshot object; response is a
    /// [`Value::Seq`] of all slots.
    SnapshotScan,
    /// Update of the invoking process's slot in a snapshot object;
    /// response is [`Value::Nil`].
    SnapshotUpdate(Value),
    /// Write-once "sticky" write: takes effect only if the object is
    /// still unwritten; the response is the (possibly pre-existing)
    /// contents after the operation, as in Plotkin's sticky bits.
    StickyWrite(Value),
    /// Enqueue at the tail of a FIFO queue; response is [`Value::Nil`].
    Enqueue(Value),
    /// Dequeue from the head of a FIFO queue; response is the removed
    /// element, or [`Value::Nil`] when the queue is empty.
    Dequeue,
    /// General bounded read-modify-write: applies the target object's
    /// pre-declared transition function number `func` to the current
    /// contents and responds with the *previous* contents.
    ///
    /// This is the "arbitrary read-modify-write register" of the
    /// paper's Section 4 ("we believe that the results presented
    /// herein can be extended to hold for arbitrary read-modify-write
    /// registers of size k"): the object's state space is the size-`k`
    /// symbol domain and its behaviour is an arbitrary finite set of
    /// total functions Σ → Σ. `compare&swap-(k)` is the instance with
    /// functions `{x ↦ if x = a then b else x}`.
    Rmw {
        /// Index into the object's declared transition functions.
        func: usize,
    },
}

impl OpKind {
    /// Whether this operation can change the target object's state.
    ///
    /// Used by schedulers and checkers to distinguish pure reads from
    /// potential writes (e.g. when counting "successful" operations).
    pub fn is_mutator(&self) -> bool {
        !matches!(self, OpKind::Read | OpKind::SnapshotScan)
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "read"),
            OpKind::Write(v) => write!(f, "write({v})"),
            OpKind::Cas { expect, new } => write!(f, "c&s({expect}→{new})"),
            OpKind::TestAndSet => write!(f, "t&s"),
            OpKind::Reset => write!(f, "reset"),
            OpKind::FetchAdd(d) => write!(f, "f&a({d})"),
            OpKind::Swap(v) => write!(f, "swap({v})"),
            OpKind::SnapshotScan => write!(f, "scan"),
            OpKind::SnapshotUpdate(v) => write!(f, "update({v})"),
            OpKind::StickyWrite(v) => write!(f, "sticky({v})"),
            OpKind::Enqueue(v) => write!(f, "enq({v})"),
            OpKind::Dequeue => write!(f, "deq"),
            OpKind::Rmw { func } => write!(f, "rmw(f{func})"),
        }
    }
}

/// A complete operation descriptor: an [`OpKind`] aimed at an object.
///
/// # Example
///
/// ```
/// use bso_objects::{ObjectId, Op, OpKind, Value};
/// let op = Op::new(ObjectId(3), OpKind::Write(Value::Pid(1)));
/// assert_eq!(op.to_string(), "o3.write(p1)");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Op {
    /// The target object.
    pub obj: ObjectId,
    /// What to do to it.
    pub kind: OpKind,
}

impl Op {
    /// Creates an operation descriptor.
    pub fn new(obj: ObjectId, kind: OpKind) -> Op {
        Op { obj, kind }
    }

    /// Shorthand for a read of `obj`.
    pub fn read(obj: ObjectId) -> Op {
        Op::new(obj, OpKind::Read)
    }

    /// Shorthand for a write to `obj`.
    pub fn write(obj: ObjectId, v: Value) -> Op {
        Op::new(obj, OpKind::Write(v))
    }

    /// Shorthand for a compare&swap on `obj`.
    pub fn cas(obj: ObjectId, expect: Value, new: Value) -> Op {
        Op::new(obj, OpKind::Cas { expect, new })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.obj, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_classification() {
        assert!(!OpKind::Read.is_mutator());
        assert!(!OpKind::SnapshotScan.is_mutator());
        assert!(OpKind::Write(Value::Nil).is_mutator());
        assert!(OpKind::TestAndSet.is_mutator());
        assert!(OpKind::Cas {
            expect: Value::Nil,
            new: Value::Nil
        }
        .is_mutator());
    }

    #[test]
    fn display_round() {
        let op = Op::cas(ObjectId(0), Value::Int(1), Value::Int(2));
        assert_eq!(op.to_string(), "o0.c&s(1→2)");
    }
}
