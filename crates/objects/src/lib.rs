//! Shared synchronization objects for the `bso` workspace.
//!
//! This crate provides the *object layer* of the reproduction of Afek &
//! Stupp, "Delimiting the Power of Bounded Size Synchronization Objects"
//! (PODC 1994). It defines:
//!
//! * [`Sym`] — a value drawn from the bounded domain
//!   Σ = {⊥, 0, 1, …, k−2} of a `compare&swap-(k)` register,
//! * [`Value`] — the universal value type carried by simulated shared
//!   memory operations,
//! * [`Op`]/[`OpKind`] — operation descriptors (read, write, cas, …),
//! * [`spec::ObjectState`] — *sequential specifications* of every object
//!   type the paper manipulates (read/write register, bounded
//!   compare&swap, test&set, fetch&add, atomic snapshot, sticky
//!   register). These are the linearization references used by the
//!   simulator and the linearizability checker,
//! * [`atomic`] — lock-free (single-word) and lock-based (multi-word)
//!   *hardware* implementations of the same objects so the very same
//!   protocol state machines can run on real OS threads.
//!
//! The paper's central object is the bounded compare&swap register:
//!
//! ```text
//! c&s(a → b)(r):  prev := r; if prev = a then r := b; return(prev)
//! ```
//!
//! where `r` holds one of `k` values. A `c&s` is *successful* if it
//! changes the register's value. Reading is a derived operation:
//! `c&s(v → v)` returns the current value for any `v` (it either
//! succeeds writing the value already present, or fails and returns the
//! current value); [`spec::ObjectState`] exposes `Read` directly for
//! convenience and implements it with exactly those semantics.
//!
//! # Example
//!
//! ```
//! use bso_objects::{spec::ObjectState, ObjectInit, OpKind, Sym, Value};
//!
//! // A compare&swap-(4) register: domain {⊥, 0, 1, 2}.
//! let mut cas = ObjectState::from_init(&ObjectInit::CasK { k: 4 });
//! let prev = cas
//!     .apply(0, &OpKind::Cas { expect: Value::Sym(Sym::BOTTOM), new: Value::Sym(Sym::new(1)) })
//!     .unwrap();
//! assert_eq!(prev, Value::Sym(Sym::BOTTOM)); // successful: register held ⊥
//! let now = cas.apply(0, &OpKind::Read).unwrap();
//! assert_eq!(now, Value::Sym(Sym::new(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
mod error;
mod layout;
mod op;
pub mod rng;
pub mod spec;
mod sym;
mod value;

pub use error::ObjectError;
pub use layout::{Layout, ObjectInit};
pub use op::{ObjectId, Op, OpKind};
pub use sym::Sym;
pub use value::Value;
