use std::error::Error;
use std::fmt;

use crate::{ObjectId, OpKind};

/// Errors raised by shared objects when an operation is illegal.
///
/// In a correct protocol these never occur; the simulator treats them
/// as protocol bugs and reports the offending process and operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObjectError {
    /// The operation kind is not supported by the target object's type
    /// (e.g. `TestAndSet` aimed at a register).
    TypeMismatch {
        /// The offending operation.
        op: OpKind,
        /// A human-readable name of the object's type.
        object_type: &'static str,
    },
    /// A value outside the bounded domain of a `compare&swap-(k)` (or
    /// other bounded object) was used.
    ///
    /// This is the error that makes the *boundedness* of the paper's
    /// objects an enforced, not merely advisory, property.
    DomainViolation {
        /// The domain size `k` of the object.
        k: usize,
        /// Description of the offending value.
        value: String,
    },
    /// An object id outside the memory layout was addressed.
    UnknownObject(ObjectId),
    /// A per-process slot index was out of range (snapshot objects).
    BadSlot {
        /// The offending process id.
        pid: usize,
        /// The number of slots the object has.
        slots: usize,
    },
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::TypeMismatch { op, object_type } => {
                write!(f, "operation {op} not supported by {object_type} object")
            }
            ObjectError::DomainViolation { k, value } => {
                write!(f, "value {value} outside the size-{k} domain")
            }
            ObjectError::UnknownObject(id) => write!(f, "no object with id {id}"),
            ObjectError::BadSlot { pid, slots } => {
                write!(f, "process {pid} has no slot (object has {slots} slots)")
            }
        }
    }
}

impl Error for ObjectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ObjectError::DomainViolation {
            k: 4,
            value: "7".into(),
        };
        assert_eq!(e.to_string(), "value 7 outside the size-4 domain");
        let e = ObjectError::TypeMismatch {
            op: OpKind::TestAndSet,
            object_type: "register",
        };
        assert!(e.to_string().contains("t&s"));
        let e = ObjectError::UnknownObject(ObjectId(9));
        assert!(e.to_string().contains("o9"));
        let e = ObjectError::BadSlot { pid: 5, slots: 2 };
        assert!(e.to_string().contains("process 5"));
    }
}
