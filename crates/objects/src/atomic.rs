//! Hardware-backed implementations of the shared objects.
//!
//! The same protocol state machines that run under the simulator can be
//! driven against this backend on real OS threads (see
//! `bso-sim::thread_runner`). Single-word objects (`compare&swap-(k)`,
//! test&set, fetch&add) are genuinely lock-free, built on
//! `std::sync::atomic`; multi-word objects (registers holding arbitrary
//! [`Value`]s, snapshot objects) are linearizable via short critical
//! sections (`std::sync` locks). The paper's *contribution* object —
//! the bounded compare&swap — is the lock-free one, which is what the
//! benchmarks exercise.
//!
//! # Example
//!
//! ```
//! use bso_objects::atomic::{AtomicMemory, Memory};
//! use bso_objects::{Layout, ObjectInit, Op, OpKind, Sym, Value};
//!
//! let mut layout = Layout::new();
//! let cas = layout.push(ObjectInit::CasK { k: 3 });
//! let mem = AtomicMemory::new(&layout);
//! let prev = mem
//!     .apply(0, &Op::cas(cas, Sym::BOTTOM.into(), Sym::new(0).into()))
//!     .unwrap();
//! assert_eq!(prev, Value::Sym(Sym::BOTTOM));
//! ```

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU8, Ordering};

use std::sync::{Mutex, RwLock};

use crate::{Layout, ObjectError, ObjectId, ObjectInit, Op, OpKind, Sym, Value};

/// A linearizable shared memory that protocols can apply operations to.
///
/// Implemented by [`AtomicMemory`] (hardware) and by the simulator's
/// sequential memory (model). Taking `&self` is deliberate: hardware
/// memories are shared across threads.
pub trait Memory: Sync {
    /// Applies one operation atomically on behalf of process `pid`.
    ///
    /// # Errors
    ///
    /// Propagates the object-level errors of
    /// [`crate::spec::ObjectState::apply`].
    fn apply(&self, pid: usize, op: &Op) -> Result<Value, ObjectError>;
}

/// One hardware-backed object.
enum Slot {
    /// Lock-free bounded compare&swap over symbol codes.
    CasK { cell: AtomicU8, k: usize },
    /// Lock-free test&set bit.
    TestAndSet(AtomicBool),
    /// Lock-free fetch&add counter.
    FetchAdd(AtomicI64),
    /// Linearizable register of arbitrary values.
    Register(RwLock<Value>),
    /// Linearizable unbounded compare&swap of arbitrary values.
    CasReg(Mutex<Value>),
    /// Linearizable snapshot object.
    Snapshot(RwLock<Vec<Value>>),
    /// Linearizable write-once register.
    Sticky(Mutex<Value>),
    /// Lock-free general bounded read-modify-write (compare-exchange
    /// loop applying the declared transition table).
    RmwK {
        cell: AtomicU8,
        k: usize,
        functions: Vec<Vec<u8>>,
    },
    /// Linearizable FIFO queue.
    Queue(Mutex<std::collections::VecDeque<Value>>),
}

impl Slot {
    fn from_init(init: &ObjectInit) -> Slot {
        match init {
            ObjectInit::Register(v) => Slot::Register(RwLock::new(v.clone())),
            ObjectInit::CasK { k } => {
                assert!(
                    *k >= 2 && *k <= u8::MAX as usize,
                    "unsupported domain size {k}"
                );
                Slot::CasK {
                    cell: AtomicU8::new(Sym::BOTTOM.code()),
                    k: *k,
                }
            }
            ObjectInit::CasReg(v) => Slot::CasReg(Mutex::new(v.clone())),
            ObjectInit::TestAndSet => Slot::TestAndSet(AtomicBool::new(false)),
            ObjectInit::FetchAdd(v) => Slot::FetchAdd(AtomicI64::new(*v)),
            ObjectInit::Snapshot { slots } => Slot::Snapshot(RwLock::new(vec![Value::Nil; *slots])),
            ObjectInit::Sticky => Slot::Sticky(Mutex::new(Value::Nil)),
            ObjectInit::Queue(items) => Slot::Queue(Mutex::new(items.iter().cloned().collect())),
            ObjectInit::RmwK { k, functions } => {
                assert!(
                    *k >= 2 && *k <= u8::MAX as usize,
                    "unsupported domain size {k}"
                );
                for table in functions {
                    assert_eq!(table.len(), *k, "transition table must cover the domain");
                    assert!(table.iter().all(|&c| (c as usize) < *k));
                }
                Slot::RmwK {
                    cell: AtomicU8::new(Sym::BOTTOM.code()),
                    k: *k,
                    functions: functions.clone(),
                }
            }
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Slot::CasK { .. } => "compare&swap-(k)",
            Slot::TestAndSet(_) => "test&set",
            Slot::FetchAdd(_) => "fetch&add",
            Slot::Register(_) => "register",
            Slot::CasReg(_) => "compare&swap",
            Slot::Snapshot(_) => "snapshot",
            Slot::Sticky(_) => "sticky",
            Slot::Queue(_) => "queue",
            Slot::RmwK { .. } => "rmw-(k)",
        }
    }

    fn mismatch(&self, op: &OpKind) -> ObjectError {
        ObjectError::TypeMismatch {
            op: op.clone(),
            object_type: self.type_name(),
        }
    }

    fn domain_sym(v: &Value, k: usize) -> Result<Sym, ObjectError> {
        match v.as_sym() {
            Some(s) if s.in_domain(k) => Ok(s),
            _ => Err(ObjectError::DomainViolation {
                k,
                value: v.to_string(),
            }),
        }
    }

    fn apply(&self, pid: usize, op: &OpKind) -> Result<Value, ObjectError> {
        match self {
            Slot::CasK { cell, k } => match op {
                OpKind::Read => Ok(Value::Sym(Sym::from_code(cell.load(Ordering::SeqCst)))),
                OpKind::Cas { expect, new } => {
                    let e = Self::domain_sym(expect, *k)?;
                    let n = Self::domain_sym(new, *k)?;
                    // The response is always the previous contents, so on
                    // hardware we loop until the compare-exchange either
                    // succeeds or observes a value ≠ expect.
                    let prev = match cell.compare_exchange(
                        e.code(),
                        n.code(),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(prev) | Err(prev) => prev,
                    };
                    Ok(Value::Sym(Sym::from_code(prev)))
                }
                other => Err(self.mismatch(other)),
            },
            Slot::TestAndSet(bit) => match op {
                OpKind::Read => Ok(Value::Bool(bit.load(Ordering::SeqCst))),
                OpKind::TestAndSet => Ok(Value::Bool(bit.swap(true, Ordering::SeqCst))),
                OpKind::Reset => {
                    bit.store(false, Ordering::SeqCst);
                    Ok(Value::Nil)
                }
                other => Err(self.mismatch(other)),
            },
            Slot::FetchAdd(counter) => match op {
                OpKind::Read => Ok(Value::Int(counter.load(Ordering::SeqCst))),
                OpKind::FetchAdd(d) => Ok(Value::Int(counter.fetch_add(*d, Ordering::SeqCst))),
                other => Err(self.mismatch(other)),
            },
            Slot::Register(reg) => match op {
                OpKind::Read => Ok(reg.read().unwrap().clone()),
                OpKind::Write(v) => {
                    *reg.write().unwrap() = v.clone();
                    Ok(Value::Nil)
                }
                OpKind::Swap(v) => {
                    let mut g = reg.write().unwrap();
                    Ok(std::mem::replace(&mut *g, v.clone()))
                }
                other => Err(self.mismatch(other)),
            },
            Slot::CasReg(reg) => match op {
                OpKind::Read => Ok(reg.lock().unwrap().clone()),
                OpKind::Cas { expect, new } => {
                    let mut g = reg.lock().unwrap();
                    let prev = g.clone();
                    if prev == *expect {
                        *g = new.clone();
                    }
                    Ok(prev)
                }
                other => Err(self.mismatch(other)),
            },
            Slot::Snapshot(slots) => match op {
                OpKind::SnapshotScan | OpKind::Read => {
                    Ok(Value::Seq(slots.read().unwrap().clone()))
                }
                OpKind::SnapshotUpdate(v) => {
                    let mut g = slots.write().unwrap();
                    let n = g.len();
                    let slot = g
                        .get_mut(pid)
                        .ok_or(ObjectError::BadSlot { pid, slots: n })?;
                    *slot = v.clone();
                    Ok(Value::Nil)
                }
                other => Err(self.mismatch(other)),
            },
            Slot::Sticky(reg) => match op {
                OpKind::Read => Ok(reg.lock().unwrap().clone()),
                OpKind::StickyWrite(v) => {
                    let mut g = reg.lock().unwrap();
                    if g.is_nil() {
                        *g = v.clone();
                    }
                    Ok(g.clone())
                }
                other => Err(self.mismatch(other)),
            },
            Slot::Queue(q) => match op {
                OpKind::Read => Ok(Value::Seq(q.lock().unwrap().iter().cloned().collect())),
                OpKind::Enqueue(v) => {
                    q.lock().unwrap().push_back(v.clone());
                    Ok(Value::Nil)
                }
                OpKind::Dequeue => Ok(q.lock().unwrap().pop_front().unwrap_or(Value::Nil)),
                other => Err(self.mismatch(other)),
            },
            Slot::RmwK { cell, k, functions } => match op {
                OpKind::Read => Ok(Value::Sym(Sym::from_code(cell.load(Ordering::SeqCst)))),
                OpKind::Rmw { func } => {
                    let table = functions.get(*func).ok_or(ObjectError::DomainViolation {
                        k: *k,
                        value: format!("function index {func}"),
                    })?;
                    // Lock-free read-modify-write: compare-exchange
                    // loop applying the transition table.
                    let mut prev = cell.load(Ordering::SeqCst);
                    loop {
                        let next = table[prev as usize];
                        match cell.compare_exchange_weak(
                            prev,
                            next,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        ) {
                            Ok(_) => return Ok(Value::Sym(Sym::from_code(prev))),
                            Err(actual) => prev = actual,
                        }
                    }
                }
                other => Err(self.mismatch(other)),
            },
        }
    }
}

/// A hardware-backed shared memory built from a [`Layout`].
///
/// Cloneable handles are unnecessary: share it by reference (e.g. with
/// `std::thread::scope`) or wrap it in an `Arc`.
pub struct AtomicMemory {
    slots: Vec<Slot>,
}

impl AtomicMemory {
    /// Allocates all objects described by `layout` in their initial
    /// states.
    pub fn new(layout: &Layout) -> AtomicMemory {
        AtomicMemory {
            slots: layout.objects().iter().map(Slot::from_init).collect(),
        }
    }

    /// The number of objects.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the memory holds no objects.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn slot(&self, id: ObjectId) -> Result<&Slot, ObjectError> {
        self.slots.get(id.0).ok_or(ObjectError::UnknownObject(id))
    }
}

impl Memory for AtomicMemory {
    fn apply(&self, pid: usize, op: &Op) -> Result<Value, ObjectError> {
        self.slot(op.obj)?.apply(pid, &op.kind)
    }
}

impl std::fmt::Debug for AtomicMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicMemory({} objects)", self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_object(init: ObjectInit) -> (AtomicMemory, ObjectId) {
        let mut layout = Layout::new();
        let id = layout.push(init);
        (AtomicMemory::new(&layout), id)
    }

    #[test]
    fn cas_k_races_have_one_winner() {
        let (mem, id) = one_object(ObjectInit::CasK { k: 6 });
        let winners: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let mem = &mem;
                    s.spawn(move || {
                        let new = Value::Sym(Sym::new(t as u8));
                        let prev = mem.apply(t, &Op::cas(id, Sym::BOTTOM.into(), new)).unwrap();
                        prev == Value::Sym(Sym::BOTTOM)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(winners.iter().filter(|w| **w).count(), 1);
    }

    #[test]
    fn test_and_set_races_have_one_winner() {
        let (mem, id) = one_object(ObjectInit::TestAndSet);
        let wins: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let mem = &mem;
                    s.spawn(move || {
                        mem.apply(t, &Op::new(id, OpKind::TestAndSet))
                            .unwrap()
                            .as_bool()
                            .map(|prev| !prev as usize)
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(wins, 1);
    }

    #[test]
    fn fetch_add_sums_across_threads() {
        let (mem, id) = one_object(ObjectInit::FetchAdd(0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let mem = &mem;
                s.spawn(move || {
                    for _ in 0..100 {
                        mem.apply(t, &Op::new(id, OpKind::FetchAdd(1))).unwrap();
                    }
                });
            }
        });
        assert_eq!(mem.apply(0, &Op::read(id)).unwrap(), Value::Int(400));
    }

    #[test]
    fn domain_enforced_on_hardware_too() {
        let (mem, id) = one_object(ObjectInit::CasK { k: 3 });
        let err = mem
            .apply(0, &Op::cas(id, Sym::BOTTOM.into(), Sym::new(5).into()))
            .unwrap_err();
        assert!(matches!(err, ObjectError::DomainViolation { k: 3, .. }));
    }

    #[test]
    fn snapshot_and_sticky_behave() {
        let mut layout = Layout::new();
        let snap = layout.push(ObjectInit::Snapshot { slots: 2 });
        let sticky = layout.push(ObjectInit::Sticky);
        let mem = AtomicMemory::new(&layout);
        mem.apply(0, &Op::new(snap, OpKind::SnapshotUpdate(Value::Int(1))))
            .unwrap();
        let view = mem.apply(1, &Op::new(snap, OpKind::SnapshotScan)).unwrap();
        assert_eq!(view, Value::Seq(vec![Value::Int(1), Value::Nil]));
        assert_eq!(
            mem.apply(0, &Op::new(sticky, OpKind::StickyWrite(Value::Pid(0))))
                .unwrap(),
            Value::Pid(0)
        );
        assert_eq!(
            mem.apply(1, &Op::new(sticky, OpKind::StickyWrite(Value::Pid(1))))
                .unwrap(),
            Value::Pid(0)
        );
    }

    #[test]
    fn rmw_k_races_apply_every_function_once() {
        // 4 threads each apply "increment mod 3" 300 times: the final
        // value is determined by the total count — the CAS loop loses
        // no application.
        let cycle = vec![1u8, 2, 0]; // ⊥→0, 0→1, 1→⊥
        let (mem, id) = one_object(ObjectInit::RmwK {
            k: 3,
            functions: vec![cycle],
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                let mem = &mem;
                s.spawn(move || {
                    for _ in 0..300 {
                        mem.apply(t, &Op::new(id, OpKind::Rmw { func: 0 })).unwrap();
                    }
                });
            }
        });
        // 1200 applications from ⊥ (code 0): 1200 % 3 = 0 → back to ⊥.
        assert_eq!(
            mem.apply(0, &Op::read(id)).unwrap(),
            Value::Sym(Sym::BOTTOM)
        );
    }

    #[test]
    fn unknown_object_is_an_error() {
        let (mem, _) = one_object(ObjectInit::TestAndSet);
        let err = mem.apply(0, &Op::read(ObjectId(7))).unwrap_err();
        assert!(matches!(err, ObjectError::UnknownObject(ObjectId(7))));
    }

    #[test]
    fn model_and_hardware_agree_on_sequential_histories() {
        use crate::spec::ObjectState;
        // Apply the same operation sequence to the spec and the hardware
        // object; responses must be identical.
        let inits = [
            ObjectInit::CasK { k: 4 },
            ObjectInit::TestAndSet,
            ObjectInit::FetchAdd(3),
            ObjectInit::Register(Value::Nil),
            ObjectInit::Sticky,
        ];
        let ops: Vec<OpKind> = vec![
            OpKind::Read,
            OpKind::Cas {
                expect: Sym::BOTTOM.into(),
                new: Sym::new(1).into(),
            },
            OpKind::Cas {
                expect: Sym::BOTTOM.into(),
                new: Sym::new(2).into(),
            },
            OpKind::TestAndSet,
            OpKind::TestAndSet,
            OpKind::FetchAdd(4),
            OpKind::Write(Value::Int(9)),
            OpKind::Swap(Value::Int(1)),
            OpKind::StickyWrite(Value::Pid(2)),
            OpKind::StickyWrite(Value::Pid(3)),
            OpKind::Read,
        ];
        for init in &inits {
            let mut spec = ObjectState::from_init(init);
            let (mem, id) = one_object(init.clone());
            for op in &ops {
                let a = spec.apply(0, op);
                let b = mem.apply(0, &Op::new(id, op.clone()));
                assert_eq!(a, b, "divergence on {init:?} op {op}");
            }
        }
    }
}
