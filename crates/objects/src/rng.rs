//! A tiny deterministic pseudo-random generator.
//!
//! The workspace builds with no external crates, so the seeded
//! generators that schedulers, stress tests, and property loops need
//! live here. The core is SplitMix64 (Steele, Lea & Flood, OOPSLA
//! 2014): a 64-bit counter passed through a fixed avalanche function.
//! It is statistically strong for test-input generation, trivially
//! seedable, and — crucially for reproducibility — its output sequence
//! is a pure function of the seed on every platform.
//!
//! This is *not* a cryptographic generator and must never gate any
//! correctness claim: exhaustive exploration, not random testing, is
//! what certifies the theorems.

/// A seeded SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator with the given seed. Equal seeds yield equal
    /// sequences on every platform.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (debiased by rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Lemire-style rejection keeps the distribution exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// A uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform `usize` in `lo..hi` (exclusive upper bound).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.usize_below(hi - lo)
    }

    /// A uniform `u8` in `lo..hi` (exclusive upper bound).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u8(&mut self, lo: u8, hi: u8) -> u8 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as u8
    }

    /// A uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_across_instances() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn known_vector() {
        // Reference output of SplitMix64 with seed 1234567
        // (from the public-domain reference implementation).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn bounds_respected_and_all_values_hit() {
        let mut r = SplitMix64::new(42);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.usize_below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.range_usize(3, 6);
            assert!((3..6).contains(&v));
            let b = r.range_u8(1, 4);
            assert!((1..4).contains(&b));
        }
    }
}
