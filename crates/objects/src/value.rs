use std::fmt;

use crate::Sym;

/// The universal value type carried by simulated shared-memory
/// operations.
///
/// Registers in the model hold `Value`s; protocol state machines
/// exchange `Value`s with the memory through [`crate::OpKind`]
/// invocations and responses. The type is deliberately small and fully
/// ordered/hashable so that whole memory states can be hashed by the
/// exhaustive model checker.
///
/// # Example
///
/// ```
/// use bso_objects::Value;
/// let v = Value::Seq(vec![Value::Int(1), Value::Nil]);
/// assert_eq!(v.as_seq().unwrap().len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The absence of a value (initial register content, unit response).
    #[default]
    Nil,
    /// A boolean (test&set responses).
    Bool(bool),
    /// A machine integer (fetch&add counters, sequence numbers).
    Int(i64),
    /// A bounded-domain symbol (contents of a `compare&swap-(k)`).
    Sym(Sym),
    /// A process identifier (election decisions, announcements).
    Pid(usize),
    /// An ordered pair.
    Pair(Box<Value>, Box<Value>),
    /// A sequence (snapshot views, logs).
    Seq(Vec<Value>),
}

impl Value {
    /// The contained boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The contained integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The contained symbol, if this is a `Sym`.
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// The contained process id, if this is a `Pid`.
    pub fn as_pid(&self) -> Option<usize> {
        match self {
            Value::Pid(p) => Some(*p),
            _ => None,
        }
    }

    /// The contained sequence, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The contained pair, if this is a `Pair`.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Whether this value is `Nil`.
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Convenience constructor for a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "·"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Pid(p) => write!(f, "p{p}"),
            Value::Pair(a, b) => write!(f, "({a},{b})"),
            Value::Seq(s) => {
                write!(f, "[")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Value {
        Value::Sym(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(s: Vec<Value>) -> Value {
        Value::Seq(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Sym(Sym::BOTTOM).as_sym(), Some(Sym::BOTTOM));
        assert_eq!(Value::Pid(3).as_pid(), Some(3));
        assert!(Value::Nil.is_nil());
        assert_eq!(Value::Int(7).as_bool(), None);
        let p = Value::pair(Value::Int(1), Value::Nil);
        let (a, b) = p.as_pair().unwrap();
        assert_eq!(a.as_int(), Some(1));
        assert!(b.is_nil());
    }

    #[test]
    fn display_is_compact() {
        let v = Value::Seq(vec![Value::Nil, Value::Pid(2), Value::Sym(Sym::new(1))]);
        assert_eq!(v.to_string(), "[· p2 1]");
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::Pid(1),
            Value::Nil,
            Value::Int(-1),
            Value::Bool(false),
            Value::Sym(Sym::BOTTOM),
        ];
        vs.sort();
        vs.dedup();
        assert_eq!(vs.len(), 5);
    }
}
