//! Sequential specifications of the shared object types.
//!
//! Every object the paper's model supports is specified here as a pure
//! state machine: [`ObjectState::apply`] consumes one operation and
//! produces one response, atomically. The simulator executes these
//! specs directly (so simulated histories are linearizable by
//! construction) and the linearizability checker uses them as the
//! reference when validating histories produced by the hardware-atomic
//! backend.

use crate::{ObjectError, ObjectInit, OpKind, Sym, Value};

/// The state of one shared object, together with its type.
///
/// # Example
///
/// ```
/// use bso_objects::{spec::ObjectState, ObjectInit, OpKind, Value};
///
/// let mut ts = ObjectState::from_init(&ObjectInit::TestAndSet);
/// assert_eq!(ts.apply(0, &OpKind::TestAndSet).unwrap(), Value::Bool(false)); // winner
/// assert_eq!(ts.apply(1, &OpKind::TestAndSet).unwrap(), Value::Bool(true)); // loser
/// ```
// `Ord` exists so explorers can pick canonical orbit representatives
// under process-symmetry reduction; the order itself is arbitrary.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ObjectState {
    /// An atomic multi-writer multi-reader read/write register.
    Register {
        /// Current contents.
        val: Value,
    },
    /// A `compare&swap-(k)` register over Σ = {⊥, 0, …, k−2}.
    ///
    /// This is the paper's central object. All values written to it
    /// must be symbols of the size-`k` domain; anything else is a
    /// [`ObjectError::DomainViolation`].
    CasK {
        /// Current contents (a domain symbol).
        val: Sym,
        /// Domain size.
        k: usize,
    },
    /// An *unbounded* compare&swap register (top of Herlihy's
    /// hierarchy; used by `bso-hierarchy` for contrast with `CasK`).
    CasReg {
        /// Current contents.
        val: Value,
    },
    /// A single test&set bit.
    TestAndSet {
        /// Whether the bit has been set.
        set: bool,
    },
    /// A fetch&add counter.
    FetchAdd {
        /// Current count.
        val: i64,
    },
    /// An atomic snapshot object with one slot per process.
    ///
    /// The paper's emulation assumes (w.l.o.g.) single-writer
    /// multi-reader registers plus an atomic `SnapShot` of the shared
    /// data structures. Snapshot objects are wait-free implementable
    /// from swmr registers (Afek et al.); `bso-protocols::snapshot`
    /// contains that construction, and this primitive form is used
    /// where the paper says "atomically read all shared memory".
    Snapshot {
        /// Slot `i` is writable only by process `i`.
        slots: Vec<Value>,
    },
    /// A write-once ("sticky") register, as in Plotkin's sticky bits.
    Sticky {
        /// The sticky contents: `Nil` while unwritten.
        val: Value,
    },
    /// A FIFO queue (consensus number 2).
    Queue {
        /// Contents, head first.
        items: Vec<Value>,
    },
    /// A general bounded read-modify-write register (the paper's §4
    /// generalization target). The state space is the size-`k` symbol
    /// domain; behaviour is the fixed set of declared transition
    /// functions. `compare&swap-(k)`, test&set-like grabs, and cyclic
    /// counters modulo `k` are all instances.
    RmwK {
        /// Current contents.
        val: Sym,
        /// Domain size.
        k: usize,
        /// Transition tables (validated at construction).
        functions: Vec<Vec<u8>>,
    },
}

impl ObjectState {
    /// Builds the initial state described by `init`.
    pub fn from_init(init: &ObjectInit) -> ObjectState {
        match init {
            ObjectInit::Register(v) => ObjectState::Register { val: v.clone() },
            ObjectInit::CasK { k } => {
                assert!(*k >= 2, "a compare&swap-(k) needs k >= 2, got {k}");
                ObjectState::CasK {
                    val: Sym::BOTTOM,
                    k: *k,
                }
            }
            ObjectInit::CasReg(v) => ObjectState::CasReg { val: v.clone() },
            ObjectInit::TestAndSet => ObjectState::TestAndSet { set: false },
            ObjectInit::FetchAdd(v) => ObjectState::FetchAdd { val: *v },
            ObjectInit::Snapshot { slots } => ObjectState::Snapshot {
                slots: vec![Value::Nil; *slots],
            },
            ObjectInit::Sticky => ObjectState::Sticky { val: Value::Nil },
            ObjectInit::Queue(items) => ObjectState::Queue {
                items: items.clone(),
            },
            ObjectInit::RmwK { k, functions } => {
                assert!(*k >= 2, "an rmw-(k) needs k >= 2, got {k}");
                for (f, table) in functions.iter().enumerate() {
                    assert_eq!(table.len(), *k, "function {f} must map all {k} symbols");
                    assert!(
                        table.iter().all(|&c| (c as usize) < *k),
                        "function {f} leaves the domain"
                    );
                }
                ObjectState::RmwK {
                    val: Sym::BOTTOM,
                    k: *k,
                    functions: functions.clone(),
                }
            }
        }
    }

    /// A human-readable name of this object's type (for diagnostics).
    pub fn type_name(&self) -> &'static str {
        match self {
            ObjectState::Register { .. } => "register",
            ObjectState::CasK { .. } => "compare&swap-(k)",
            ObjectState::CasReg { .. } => "compare&swap",
            ObjectState::TestAndSet { .. } => "test&set",
            ObjectState::FetchAdd { .. } => "fetch&add",
            ObjectState::Snapshot { .. } => "snapshot",
            ObjectState::Sticky { .. } => "sticky",
            ObjectState::Queue { .. } => "queue",
            ObjectState::RmwK { .. } => "rmw-(k)",
        }
    }

    /// Whether this object is a plain read/write register or snapshot
    /// object (i.e. implementable from read/write registers alone).
    ///
    /// The emulation of Theorem 1 must run on read/write memory only;
    /// the reduction driver asserts this predicate on every object its
    /// emulators touch.
    pub fn is_read_write(&self) -> bool {
        matches!(
            self,
            ObjectState::Register { .. } | ObjectState::Snapshot { .. }
        )
    }

    /// Applies one operation atomically and returns its response.
    ///
    /// # Errors
    ///
    /// [`ObjectError::TypeMismatch`] if the object does not support
    /// `op`, [`ObjectError::DomainViolation`] if a bounded object is
    /// given a value outside its domain, [`ObjectError::BadSlot`] if a
    /// snapshot update comes from a process without a slot.
    pub fn apply(&mut self, pid: usize, op: &OpKind) -> Result<Value, ObjectError> {
        match self {
            ObjectState::Register { val } => match op {
                OpKind::Read => Ok(val.clone()),
                OpKind::Write(v) => {
                    *val = v.clone();
                    Ok(Value::Nil)
                }
                OpKind::Swap(v) => {
                    let prev = std::mem::replace(val, v.clone());
                    Ok(prev)
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::CasK { val, k } => match op {
                OpKind::Read => Ok(Value::Sym(*val)),
                OpKind::Cas { expect, new } => {
                    let k = *k;
                    let e = Self::domain_sym(expect, k)?;
                    let n = Self::domain_sym(new, k)?;
                    let prev = *val;
                    if prev == e {
                        *val = n;
                    }
                    Ok(Value::Sym(prev))
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::CasReg { val } => match op {
                OpKind::Read => Ok(val.clone()),
                OpKind::Cas { expect, new } => {
                    let prev = val.clone();
                    if prev == *expect {
                        *val = new.clone();
                    }
                    Ok(prev)
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::TestAndSet { set } => match op {
                OpKind::Read => Ok(Value::Bool(*set)),
                OpKind::TestAndSet => {
                    let prev = *set;
                    *set = true;
                    Ok(Value::Bool(prev))
                }
                OpKind::Reset => {
                    *set = false;
                    Ok(Value::Nil)
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::FetchAdd { val } => match op {
                OpKind::Read => Ok(Value::Int(*val)),
                OpKind::FetchAdd(d) => {
                    let prev = *val;
                    *val = val.wrapping_add(*d);
                    Ok(Value::Int(prev))
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::Snapshot { slots } => match op {
                OpKind::SnapshotScan | OpKind::Read => Ok(Value::Seq(slots.clone())),
                OpKind::SnapshotUpdate(v) => {
                    let n = slots.len();
                    let slot = slots
                        .get_mut(pid)
                        .ok_or(ObjectError::BadSlot { pid, slots: n })?;
                    *slot = v.clone();
                    Ok(Value::Nil)
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::Sticky { val } => match op {
                OpKind::Read => Ok(val.clone()),
                OpKind::StickyWrite(v) => {
                    if val.is_nil() {
                        *val = v.clone();
                    }
                    Ok(val.clone())
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::Queue { items } => match op {
                OpKind::Read => Ok(Value::Seq(items.clone())),
                OpKind::Enqueue(v) => {
                    items.push(v.clone());
                    Ok(Value::Nil)
                }
                OpKind::Dequeue => {
                    if items.is_empty() {
                        Ok(Value::Nil)
                    } else {
                        Ok(items.remove(0))
                    }
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::RmwK { val, k, functions } => match op {
                OpKind::Read => Ok(Value::Sym(*val)),
                OpKind::Rmw { func } => {
                    let table = functions.get(*func).ok_or(ObjectError::DomainViolation {
                        k: *k,
                        value: format!("function index {func}"),
                    })?;
                    let prev = *val;
                    *val = Sym::from_code(table[prev.code() as usize]);
                    Ok(Value::Sym(prev))
                }
                other => Err(self.mismatch(other)),
            },
        }
    }

    /// Serializes this object's full state into a self-describing
    /// [`Value`] — the form cluster migration ships between servers
    /// (`Seq[Int(tag), fields…]`, one tag per variant). The inverse is
    /// [`ObjectState::import`]; `import(export(s)) == s` for every
    /// state.
    pub fn export(&self) -> Value {
        match self {
            ObjectState::Register { val } => Value::Seq(vec![Value::Int(0), val.clone()]),
            ObjectState::CasK { val, k } => {
                Value::Seq(vec![Value::Int(1), Value::Sym(*val), Value::Int(*k as i64)])
            }
            ObjectState::CasReg { val } => Value::Seq(vec![Value::Int(2), val.clone()]),
            ObjectState::TestAndSet { set } => Value::Seq(vec![Value::Int(3), Value::Bool(*set)]),
            ObjectState::FetchAdd { val } => Value::Seq(vec![Value::Int(4), Value::Int(*val)]),
            ObjectState::Snapshot { slots } => {
                Value::Seq(vec![Value::Int(5), Value::Seq(slots.clone())])
            }
            ObjectState::Sticky { val } => Value::Seq(vec![Value::Int(6), val.clone()]),
            ObjectState::Queue { items } => {
                Value::Seq(vec![Value::Int(7), Value::Seq(items.clone())])
            }
            ObjectState::RmwK { val, k, functions } => Value::Seq(vec![
                Value::Int(8),
                Value::Sym(*val),
                Value::Int(*k as i64),
                Value::Seq(
                    functions
                        .iter()
                        .map(|f| Value::Seq(f.iter().map(|&c| Value::Int(c as i64)).collect()))
                        .collect(),
                ),
            ]),
        }
    }

    /// Rebuilds an object state from its [`ObjectState::export`]
    /// encoding.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field. The
    /// same domain rules `from_init` asserts are checked here — but
    /// returned, not panicked, because the input crossed a network.
    pub fn import(v: &Value) -> Result<ObjectState, String> {
        let Value::Seq(fields) = v else {
            return Err(format!("exported state must be a Seq, got {v}"));
        };
        let tag = match fields.first() {
            Some(Value::Int(t)) => *t,
            other => return Err(format!("missing state tag, got {other:?}")),
        };
        let field = |i: usize| {
            fields
                .get(i)
                .ok_or(format!("state tag {tag}: field {i} missing"))
        };
        let sym = |i: usize| -> Result<Sym, String> {
            field(i)?
                .as_sym()
                .ok_or(format!("state tag {tag}: field {i} must be a Sym"))
        };
        let int = |i: usize| -> Result<i64, String> {
            field(i)?
                .as_int()
                .ok_or(format!("state tag {tag}: field {i} must be an Int"))
        };
        let seq = |i: usize| -> Result<&[Value], String> {
            match field(i)? {
                Value::Seq(items) => Ok(items.as_slice()),
                other => Err(format!(
                    "state tag {tag}: field {i} must be a Seq, got {other}"
                )),
            }
        };
        // Symbols are u8 codes (⊥ plus k−1 values), so any state that
        // could exist fits in 2..=256.
        let domain = |k: i64| -> Result<usize, String> {
            usize::try_from(k)
                .ok()
                .filter(|&k| (2..=256).contains(&k))
                .ok_or(format!("domain size {k} outside 2..=256"))
        };
        let state = match tag {
            0 => ObjectState::Register {
                val: field(1)?.clone(),
            },
            1 => {
                let val = sym(1)?;
                let k = domain(int(2)?)?;
                if !val.in_domain(k) {
                    return Err(format!("compare&swap-({k}) holds out-of-domain {val}"));
                }
                ObjectState::CasK { val, k }
            }
            2 => ObjectState::CasReg {
                val: field(1)?.clone(),
            },
            3 => ObjectState::TestAndSet {
                set: match field(1)? {
                    Value::Bool(b) => *b,
                    other => return Err(format!("test&set bit must be a Bool, got {other}")),
                },
            },
            4 => ObjectState::FetchAdd { val: int(1)? },
            5 => ObjectState::Snapshot {
                slots: seq(1)?.to_vec(),
            },
            6 => ObjectState::Sticky {
                val: field(1)?.clone(),
            },
            7 => ObjectState::Queue {
                items: seq(1)?.to_vec(),
            },
            8 => {
                let val = sym(1)?;
                let k = domain(int(2)?)?;
                if !val.in_domain(k) {
                    return Err(format!("rmw-({k}) holds out-of-domain {val}"));
                }
                let mut functions = Vec::new();
                for (f, table) in seq(3)?.iter().enumerate() {
                    let Value::Seq(codes) = table else {
                        return Err(format!("function {f} must be a Seq"));
                    };
                    if codes.len() != k {
                        return Err(format!("function {f} must map all {k} symbols"));
                    }
                    let mut bytes = Vec::with_capacity(k);
                    for c in codes {
                        let code = c
                            .as_int()
                            .and_then(|c| u8::try_from(c).ok())
                            .filter(|&c| (c as usize) < k)
                            .ok_or(format!("function {f} leaves the domain"))?;
                        bytes.push(code);
                    }
                    functions.push(bytes);
                }
                ObjectState::RmwK { val, k, functions }
            }
            t => return Err(format!("unknown state tag {t}")),
        };
        Ok(state)
    }

    fn mismatch(&self, op: &OpKind) -> ObjectError {
        ObjectError::TypeMismatch {
            op: op.clone(),
            object_type: self.type_name(),
        }
    }

    fn domain_sym(v: &Value, k: usize) -> Result<Sym, ObjectError> {
        match v.as_sym() {
            Some(s) if s.in_domain(k) => Ok(s),
            _ => Err(ObjectError::DomainViolation {
                k,
                value: v.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cas_k(k: usize) -> ObjectState {
        ObjectState::from_init(&ObjectInit::CasK { k })
    }

    #[test]
    fn register_read_write_swap() {
        let mut r = ObjectState::from_init(&ObjectInit::Register(Value::Nil));
        assert_eq!(r.apply(0, &OpKind::Read).unwrap(), Value::Nil);
        assert_eq!(
            r.apply(0, &OpKind::Write(Value::Int(5))).unwrap(),
            Value::Nil
        );
        assert_eq!(r.apply(1, &OpKind::Read).unwrap(), Value::Int(5));
        assert_eq!(
            r.apply(1, &OpKind::Swap(Value::Int(6))).unwrap(),
            Value::Int(5)
        );
        assert_eq!(r.apply(0, &OpKind::Read).unwrap(), Value::Int(6));
    }

    #[test]
    fn cas_k_succeeds_and_fails_per_paper_semantics() {
        let mut c = cas_k(3);
        // c&s(⊥ → 0): succeeds, returns previous value ⊥.
        let prev = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Sym::BOTTOM.into(),
                    new: Sym::new(0).into(),
                },
            )
            .unwrap();
        assert_eq!(prev, Value::Sym(Sym::BOTTOM));
        // c&s(⊥ → 1): fails (register holds 0), returns 0, contents keep 0.
        let prev = c
            .apply(
                1,
                &OpKind::Cas {
                    expect: Sym::BOTTOM.into(),
                    new: Sym::new(1).into(),
                },
            )
            .unwrap();
        assert_eq!(prev, Value::Sym(Sym::new(0)));
        assert_eq!(c.apply(1, &OpKind::Read).unwrap(), Value::Sym(Sym::new(0)));
    }

    #[test]
    fn cas_k_read_is_cas_identity() {
        // read ≡ c&s(v → v): returns contents, never changes them.
        let mut c = cas_k(3);
        let via_cas = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Sym::new(1).into(),
                    new: Sym::new(1).into(),
                },
            )
            .unwrap();
        let via_read = c.apply(0, &OpKind::Read).unwrap();
        assert_eq!(via_cas, via_read);
        assert_eq!(via_read, Value::Sym(Sym::BOTTOM));
    }

    #[test]
    fn cas_k_enforces_domain() {
        let mut c = cas_k(3); // domain {⊥, 0, 1}
        let err = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Sym::BOTTOM.into(),
                    new: Sym::new(2).into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ObjectError::DomainViolation { k: 3, .. }));
        // Non-symbol values are also rejected.
        let err = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Value::Int(0),
                    new: Sym::new(0).into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ObjectError::DomainViolation { .. }));
    }

    #[test]
    fn test_and_set_orders_winner() {
        let mut t = ObjectState::from_init(&ObjectInit::TestAndSet);
        assert_eq!(t.apply(0, &OpKind::TestAndSet).unwrap(), Value::Bool(false));
        assert_eq!(t.apply(1, &OpKind::TestAndSet).unwrap(), Value::Bool(true));
        t.apply(0, &OpKind::Reset).unwrap();
        assert_eq!(t.apply(2, &OpKind::TestAndSet).unwrap(), Value::Bool(false));
    }

    #[test]
    fn fetch_add_returns_previous() {
        let mut f = ObjectState::from_init(&ObjectInit::FetchAdd(10));
        assert_eq!(f.apply(0, &OpKind::FetchAdd(5)).unwrap(), Value::Int(10));
        assert_eq!(f.apply(1, &OpKind::FetchAdd(-2)).unwrap(), Value::Int(15));
        assert_eq!(f.apply(2, &OpKind::Read).unwrap(), Value::Int(13));
    }

    #[test]
    fn snapshot_slots_are_per_process() {
        let mut s = ObjectState::from_init(&ObjectInit::Snapshot { slots: 3 });
        s.apply(1, &OpKind::SnapshotUpdate(Value::Int(7))).unwrap();
        let view = s.apply(0, &OpKind::SnapshotScan).unwrap();
        assert_eq!(
            view,
            Value::Seq(vec![Value::Nil, Value::Int(7), Value::Nil])
        );
        let err = s.apply(3, &OpKind::SnapshotUpdate(Value::Nil)).unwrap_err();
        assert!(matches!(err, ObjectError::BadSlot { pid: 3, slots: 3 }));
    }

    #[test]
    fn sticky_write_is_write_once() {
        let mut s = ObjectState::from_init(&ObjectInit::Sticky);
        assert_eq!(
            s.apply(0, &OpKind::StickyWrite(Value::Pid(0))).unwrap(),
            Value::Pid(0)
        );
        assert_eq!(
            s.apply(1, &OpKind::StickyWrite(Value::Pid(1))).unwrap(),
            Value::Pid(0)
        );
        assert_eq!(s.apply(2, &OpKind::Read).unwrap(), Value::Pid(0));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut r = ObjectState::from_init(&ObjectInit::Register(Value::Nil));
        let err = r.apply(0, &OpKind::TestAndSet).unwrap_err();
        assert!(matches!(err, ObjectError::TypeMismatch { .. }));
    }

    #[test]
    fn read_write_classification() {
        assert!(ObjectState::from_init(&ObjectInit::Register(Value::Nil)).is_read_write());
        assert!(ObjectState::from_init(&ObjectInit::Snapshot { slots: 1 }).is_read_write());
        assert!(!cas_k(3).is_read_write());
        assert!(!ObjectState::from_init(&ObjectInit::TestAndSet).is_read_write());
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn cas_k_requires_two_values() {
        let _ = cas_k(1);
    }

    #[test]
    fn rmw_k_applies_declared_functions() {
        // Two functions over {⊥, 0, 1}: f0 = grab-0 (⊥ ↦ 0), f1 =
        // cyclic shift of the non-⊥ values.
        let init = ObjectInit::RmwK {
            k: 3,
            functions: vec![
                vec![1, 1, 2], // codes: ⊥→0, 0→0, 1→1
                vec![0, 2, 1], // ⊥→⊥, 0→1, 1→0
            ],
        };
        let mut r = ObjectState::from_init(&init);
        assert_eq!(
            r.apply(0, &OpKind::Rmw { func: 0 }).unwrap(),
            Value::Sym(Sym::BOTTOM)
        );
        assert_eq!(r.apply(0, &OpKind::Read).unwrap(), Value::Sym(Sym::new(0)));
        assert_eq!(
            r.apply(1, &OpKind::Rmw { func: 1 }).unwrap(),
            Value::Sym(Sym::new(0))
        );
        assert_eq!(r.apply(1, &OpKind::Read).unwrap(), Value::Sym(Sym::new(1)));
        // Unknown function index is a domain violation.
        assert!(matches!(
            r.apply(0, &OpKind::Rmw { func: 9 }).unwrap_err(),
            ObjectError::DomainViolation { .. }
        ));
        assert!(!r.is_read_write());
    }

    #[test]
    #[should_panic(expected = "must map all")]
    fn rmw_k_validates_tables() {
        let _ = ObjectState::from_init(&ObjectInit::RmwK {
            k: 3,
            functions: vec![vec![0, 1]],
        });
    }

    #[test]
    fn export_import_round_trips_every_variant() {
        let mut states = vec![
            ObjectState::Register {
                val: Value::pair(Value::Int(-4), Value::Pid(2)),
            },
            ObjectState::CasK {
                val: Sym::new(1),
                k: 4,
            },
            ObjectState::CasReg {
                val: Value::Seq(vec![Value::Bool(true), Value::Nil]),
            },
            ObjectState::TestAndSet { set: true },
            ObjectState::FetchAdd { val: -77 },
            ObjectState::Snapshot {
                slots: vec![Value::Nil, Value::Int(3)],
            },
            ObjectState::Sticky { val: Value::Pid(1) },
            ObjectState::Queue {
                items: vec![Value::Int(1), Value::Int(2)],
            },
        ];
        // A live RmwK mid-history, not just the initial state.
        let mut rmw = ObjectState::from_init(&ObjectInit::RmwK {
            k: 3,
            functions: vec![vec![1, 1, 2], vec![0, 2, 1]],
        });
        rmw.apply(0, &OpKind::Rmw { func: 0 }).unwrap();
        states.push(rmw);
        for state in states {
            let exported = state.export();
            let back = ObjectState::import(&exported).unwrap();
            assert_eq!(back, state, "export/import must be lossless");
        }
    }

    #[test]
    fn import_rejects_malformed_state() {
        for bad in [
            Value::Int(3),                               // not a Seq
            Value::Seq(vec![]),                          // no tag
            Value::Seq(vec![Value::Int(99)]),            // unknown tag
            Value::Seq(vec![Value::Int(0)]),             // missing field
            Value::Seq(vec![Value::Int(4), Value::Nil]), // wrong field type
            // compare&swap-(k) with an out-of-range domain size.
            Value::Seq(vec![Value::Int(1), Value::Sym(Sym::BOTTOM), Value::Int(1)]),
            // …and with contents outside its domain.
            Value::Seq(vec![Value::Int(1), Value::Sym(Sym::new(5)), Value::Int(3)]),
            // rmw whose function table leaves the domain.
            Value::Seq(vec![
                Value::Int(8),
                Value::Sym(Sym::BOTTOM),
                Value::Int(3),
                Value::Seq(vec![Value::Seq(vec![
                    Value::Int(9),
                    Value::Int(0),
                    Value::Int(0),
                ])]),
            ]),
        ] {
            assert!(
                ObjectState::import(&bad).is_err(),
                "import accepted malformed {bad}"
            );
        }
    }

    #[test]
    fn unbounded_cas_register() {
        let mut c = ObjectState::from_init(&ObjectInit::CasReg(Value::Nil));
        let prev = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Value::Nil,
                    new: Value::Pid(42),
                },
            )
            .unwrap();
        assert_eq!(prev, Value::Nil);
        assert_eq!(c.apply(1, &OpKind::Read).unwrap(), Value::Pid(42));
    }
}
