//! Sequential specifications of the shared object types.
//!
//! Every object the paper's model supports is specified here as a pure
//! state machine: [`ObjectState::apply`] consumes one operation and
//! produces one response, atomically. The simulator executes these
//! specs directly (so simulated histories are linearizable by
//! construction) and the linearizability checker uses them as the
//! reference when validating histories produced by the hardware-atomic
//! backend.

use crate::{ObjectError, ObjectInit, OpKind, Sym, Value};

/// The state of one shared object, together with its type.
///
/// # Example
///
/// ```
/// use bso_objects::{spec::ObjectState, ObjectInit, OpKind, Value};
///
/// let mut ts = ObjectState::from_init(&ObjectInit::TestAndSet);
/// assert_eq!(ts.apply(0, &OpKind::TestAndSet).unwrap(), Value::Bool(false)); // winner
/// assert_eq!(ts.apply(1, &OpKind::TestAndSet).unwrap(), Value::Bool(true)); // loser
/// ```
// `Ord` exists so explorers can pick canonical orbit representatives
// under process-symmetry reduction; the order itself is arbitrary.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ObjectState {
    /// An atomic multi-writer multi-reader read/write register.
    Register {
        /// Current contents.
        val: Value,
    },
    /// A `compare&swap-(k)` register over Σ = {⊥, 0, …, k−2}.
    ///
    /// This is the paper's central object. All values written to it
    /// must be symbols of the size-`k` domain; anything else is a
    /// [`ObjectError::DomainViolation`].
    CasK {
        /// Current contents (a domain symbol).
        val: Sym,
        /// Domain size.
        k: usize,
    },
    /// An *unbounded* compare&swap register (top of Herlihy's
    /// hierarchy; used by `bso-hierarchy` for contrast with `CasK`).
    CasReg {
        /// Current contents.
        val: Value,
    },
    /// A single test&set bit.
    TestAndSet {
        /// Whether the bit has been set.
        set: bool,
    },
    /// A fetch&add counter.
    FetchAdd {
        /// Current count.
        val: i64,
    },
    /// An atomic snapshot object with one slot per process.
    ///
    /// The paper's emulation assumes (w.l.o.g.) single-writer
    /// multi-reader registers plus an atomic `SnapShot` of the shared
    /// data structures. Snapshot objects are wait-free implementable
    /// from swmr registers (Afek et al.); `bso-protocols::snapshot`
    /// contains that construction, and this primitive form is used
    /// where the paper says "atomically read all shared memory".
    Snapshot {
        /// Slot `i` is writable only by process `i`.
        slots: Vec<Value>,
    },
    /// A write-once ("sticky") register, as in Plotkin's sticky bits.
    Sticky {
        /// The sticky contents: `Nil` while unwritten.
        val: Value,
    },
    /// A FIFO queue (consensus number 2).
    Queue {
        /// Contents, head first.
        items: Vec<Value>,
    },
    /// A general bounded read-modify-write register (the paper's §4
    /// generalization target). The state space is the size-`k` symbol
    /// domain; behaviour is the fixed set of declared transition
    /// functions. `compare&swap-(k)`, test&set-like grabs, and cyclic
    /// counters modulo `k` are all instances.
    RmwK {
        /// Current contents.
        val: Sym,
        /// Domain size.
        k: usize,
        /// Transition tables (validated at construction).
        functions: Vec<Vec<u8>>,
    },
}

impl ObjectState {
    /// Builds the initial state described by `init`.
    pub fn from_init(init: &ObjectInit) -> ObjectState {
        match init {
            ObjectInit::Register(v) => ObjectState::Register { val: v.clone() },
            ObjectInit::CasK { k } => {
                assert!(*k >= 2, "a compare&swap-(k) needs k >= 2, got {k}");
                ObjectState::CasK {
                    val: Sym::BOTTOM,
                    k: *k,
                }
            }
            ObjectInit::CasReg(v) => ObjectState::CasReg { val: v.clone() },
            ObjectInit::TestAndSet => ObjectState::TestAndSet { set: false },
            ObjectInit::FetchAdd(v) => ObjectState::FetchAdd { val: *v },
            ObjectInit::Snapshot { slots } => ObjectState::Snapshot {
                slots: vec![Value::Nil; *slots],
            },
            ObjectInit::Sticky => ObjectState::Sticky { val: Value::Nil },
            ObjectInit::Queue(items) => ObjectState::Queue {
                items: items.clone(),
            },
            ObjectInit::RmwK { k, functions } => {
                assert!(*k >= 2, "an rmw-(k) needs k >= 2, got {k}");
                for (f, table) in functions.iter().enumerate() {
                    assert_eq!(table.len(), *k, "function {f} must map all {k} symbols");
                    assert!(
                        table.iter().all(|&c| (c as usize) < *k),
                        "function {f} leaves the domain"
                    );
                }
                ObjectState::RmwK {
                    val: Sym::BOTTOM,
                    k: *k,
                    functions: functions.clone(),
                }
            }
        }
    }

    /// A human-readable name of this object's type (for diagnostics).
    pub fn type_name(&self) -> &'static str {
        match self {
            ObjectState::Register { .. } => "register",
            ObjectState::CasK { .. } => "compare&swap-(k)",
            ObjectState::CasReg { .. } => "compare&swap",
            ObjectState::TestAndSet { .. } => "test&set",
            ObjectState::FetchAdd { .. } => "fetch&add",
            ObjectState::Snapshot { .. } => "snapshot",
            ObjectState::Sticky { .. } => "sticky",
            ObjectState::Queue { .. } => "queue",
            ObjectState::RmwK { .. } => "rmw-(k)",
        }
    }

    /// Whether this object is a plain read/write register or snapshot
    /// object (i.e. implementable from read/write registers alone).
    ///
    /// The emulation of Theorem 1 must run on read/write memory only;
    /// the reduction driver asserts this predicate on every object its
    /// emulators touch.
    pub fn is_read_write(&self) -> bool {
        matches!(
            self,
            ObjectState::Register { .. } | ObjectState::Snapshot { .. }
        )
    }

    /// Applies one operation atomically and returns its response.
    ///
    /// # Errors
    ///
    /// [`ObjectError::TypeMismatch`] if the object does not support
    /// `op`, [`ObjectError::DomainViolation`] if a bounded object is
    /// given a value outside its domain, [`ObjectError::BadSlot`] if a
    /// snapshot update comes from a process without a slot.
    pub fn apply(&mut self, pid: usize, op: &OpKind) -> Result<Value, ObjectError> {
        match self {
            ObjectState::Register { val } => match op {
                OpKind::Read => Ok(val.clone()),
                OpKind::Write(v) => {
                    *val = v.clone();
                    Ok(Value::Nil)
                }
                OpKind::Swap(v) => {
                    let prev = std::mem::replace(val, v.clone());
                    Ok(prev)
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::CasK { val, k } => match op {
                OpKind::Read => Ok(Value::Sym(*val)),
                OpKind::Cas { expect, new } => {
                    let k = *k;
                    let e = Self::domain_sym(expect, k)?;
                    let n = Self::domain_sym(new, k)?;
                    let prev = *val;
                    if prev == e {
                        *val = n;
                    }
                    Ok(Value::Sym(prev))
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::CasReg { val } => match op {
                OpKind::Read => Ok(val.clone()),
                OpKind::Cas { expect, new } => {
                    let prev = val.clone();
                    if prev == *expect {
                        *val = new.clone();
                    }
                    Ok(prev)
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::TestAndSet { set } => match op {
                OpKind::Read => Ok(Value::Bool(*set)),
                OpKind::TestAndSet => {
                    let prev = *set;
                    *set = true;
                    Ok(Value::Bool(prev))
                }
                OpKind::Reset => {
                    *set = false;
                    Ok(Value::Nil)
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::FetchAdd { val } => match op {
                OpKind::Read => Ok(Value::Int(*val)),
                OpKind::FetchAdd(d) => {
                    let prev = *val;
                    *val = val.wrapping_add(*d);
                    Ok(Value::Int(prev))
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::Snapshot { slots } => match op {
                OpKind::SnapshotScan | OpKind::Read => Ok(Value::Seq(slots.clone())),
                OpKind::SnapshotUpdate(v) => {
                    let n = slots.len();
                    let slot = slots
                        .get_mut(pid)
                        .ok_or(ObjectError::BadSlot { pid, slots: n })?;
                    *slot = v.clone();
                    Ok(Value::Nil)
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::Sticky { val } => match op {
                OpKind::Read => Ok(val.clone()),
                OpKind::StickyWrite(v) => {
                    if val.is_nil() {
                        *val = v.clone();
                    }
                    Ok(val.clone())
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::Queue { items } => match op {
                OpKind::Read => Ok(Value::Seq(items.clone())),
                OpKind::Enqueue(v) => {
                    items.push(v.clone());
                    Ok(Value::Nil)
                }
                OpKind::Dequeue => {
                    if items.is_empty() {
                        Ok(Value::Nil)
                    } else {
                        Ok(items.remove(0))
                    }
                }
                other => Err(self.mismatch(other)),
            },
            ObjectState::RmwK { val, k, functions } => match op {
                OpKind::Read => Ok(Value::Sym(*val)),
                OpKind::Rmw { func } => {
                    let table = functions.get(*func).ok_or(ObjectError::DomainViolation {
                        k: *k,
                        value: format!("function index {func}"),
                    })?;
                    let prev = *val;
                    *val = Sym::from_code(table[prev.code() as usize]);
                    Ok(Value::Sym(prev))
                }
                other => Err(self.mismatch(other)),
            },
        }
    }

    fn mismatch(&self, op: &OpKind) -> ObjectError {
        ObjectError::TypeMismatch {
            op: op.clone(),
            object_type: self.type_name(),
        }
    }

    fn domain_sym(v: &Value, k: usize) -> Result<Sym, ObjectError> {
        match v.as_sym() {
            Some(s) if s.in_domain(k) => Ok(s),
            _ => Err(ObjectError::DomainViolation {
                k,
                value: v.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cas_k(k: usize) -> ObjectState {
        ObjectState::from_init(&ObjectInit::CasK { k })
    }

    #[test]
    fn register_read_write_swap() {
        let mut r = ObjectState::from_init(&ObjectInit::Register(Value::Nil));
        assert_eq!(r.apply(0, &OpKind::Read).unwrap(), Value::Nil);
        assert_eq!(
            r.apply(0, &OpKind::Write(Value::Int(5))).unwrap(),
            Value::Nil
        );
        assert_eq!(r.apply(1, &OpKind::Read).unwrap(), Value::Int(5));
        assert_eq!(
            r.apply(1, &OpKind::Swap(Value::Int(6))).unwrap(),
            Value::Int(5)
        );
        assert_eq!(r.apply(0, &OpKind::Read).unwrap(), Value::Int(6));
    }

    #[test]
    fn cas_k_succeeds_and_fails_per_paper_semantics() {
        let mut c = cas_k(3);
        // c&s(⊥ → 0): succeeds, returns previous value ⊥.
        let prev = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Sym::BOTTOM.into(),
                    new: Sym::new(0).into(),
                },
            )
            .unwrap();
        assert_eq!(prev, Value::Sym(Sym::BOTTOM));
        // c&s(⊥ → 1): fails (register holds 0), returns 0, contents keep 0.
        let prev = c
            .apply(
                1,
                &OpKind::Cas {
                    expect: Sym::BOTTOM.into(),
                    new: Sym::new(1).into(),
                },
            )
            .unwrap();
        assert_eq!(prev, Value::Sym(Sym::new(0)));
        assert_eq!(c.apply(1, &OpKind::Read).unwrap(), Value::Sym(Sym::new(0)));
    }

    #[test]
    fn cas_k_read_is_cas_identity() {
        // read ≡ c&s(v → v): returns contents, never changes them.
        let mut c = cas_k(3);
        let via_cas = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Sym::new(1).into(),
                    new: Sym::new(1).into(),
                },
            )
            .unwrap();
        let via_read = c.apply(0, &OpKind::Read).unwrap();
        assert_eq!(via_cas, via_read);
        assert_eq!(via_read, Value::Sym(Sym::BOTTOM));
    }

    #[test]
    fn cas_k_enforces_domain() {
        let mut c = cas_k(3); // domain {⊥, 0, 1}
        let err = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Sym::BOTTOM.into(),
                    new: Sym::new(2).into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ObjectError::DomainViolation { k: 3, .. }));
        // Non-symbol values are also rejected.
        let err = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Value::Int(0),
                    new: Sym::new(0).into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, ObjectError::DomainViolation { .. }));
    }

    #[test]
    fn test_and_set_orders_winner() {
        let mut t = ObjectState::from_init(&ObjectInit::TestAndSet);
        assert_eq!(t.apply(0, &OpKind::TestAndSet).unwrap(), Value::Bool(false));
        assert_eq!(t.apply(1, &OpKind::TestAndSet).unwrap(), Value::Bool(true));
        t.apply(0, &OpKind::Reset).unwrap();
        assert_eq!(t.apply(2, &OpKind::TestAndSet).unwrap(), Value::Bool(false));
    }

    #[test]
    fn fetch_add_returns_previous() {
        let mut f = ObjectState::from_init(&ObjectInit::FetchAdd(10));
        assert_eq!(f.apply(0, &OpKind::FetchAdd(5)).unwrap(), Value::Int(10));
        assert_eq!(f.apply(1, &OpKind::FetchAdd(-2)).unwrap(), Value::Int(15));
        assert_eq!(f.apply(2, &OpKind::Read).unwrap(), Value::Int(13));
    }

    #[test]
    fn snapshot_slots_are_per_process() {
        let mut s = ObjectState::from_init(&ObjectInit::Snapshot { slots: 3 });
        s.apply(1, &OpKind::SnapshotUpdate(Value::Int(7))).unwrap();
        let view = s.apply(0, &OpKind::SnapshotScan).unwrap();
        assert_eq!(
            view,
            Value::Seq(vec![Value::Nil, Value::Int(7), Value::Nil])
        );
        let err = s.apply(3, &OpKind::SnapshotUpdate(Value::Nil)).unwrap_err();
        assert!(matches!(err, ObjectError::BadSlot { pid: 3, slots: 3 }));
    }

    #[test]
    fn sticky_write_is_write_once() {
        let mut s = ObjectState::from_init(&ObjectInit::Sticky);
        assert_eq!(
            s.apply(0, &OpKind::StickyWrite(Value::Pid(0))).unwrap(),
            Value::Pid(0)
        );
        assert_eq!(
            s.apply(1, &OpKind::StickyWrite(Value::Pid(1))).unwrap(),
            Value::Pid(0)
        );
        assert_eq!(s.apply(2, &OpKind::Read).unwrap(), Value::Pid(0));
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut r = ObjectState::from_init(&ObjectInit::Register(Value::Nil));
        let err = r.apply(0, &OpKind::TestAndSet).unwrap_err();
        assert!(matches!(err, ObjectError::TypeMismatch { .. }));
    }

    #[test]
    fn read_write_classification() {
        assert!(ObjectState::from_init(&ObjectInit::Register(Value::Nil)).is_read_write());
        assert!(ObjectState::from_init(&ObjectInit::Snapshot { slots: 1 }).is_read_write());
        assert!(!cas_k(3).is_read_write());
        assert!(!ObjectState::from_init(&ObjectInit::TestAndSet).is_read_write());
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn cas_k_requires_two_values() {
        let _ = cas_k(1);
    }

    #[test]
    fn rmw_k_applies_declared_functions() {
        // Two functions over {⊥, 0, 1}: f0 = grab-0 (⊥ ↦ 0), f1 =
        // cyclic shift of the non-⊥ values.
        let init = ObjectInit::RmwK {
            k: 3,
            functions: vec![
                vec![1, 1, 2], // codes: ⊥→0, 0→0, 1→1
                vec![0, 2, 1], // ⊥→⊥, 0→1, 1→0
            ],
        };
        let mut r = ObjectState::from_init(&init);
        assert_eq!(
            r.apply(0, &OpKind::Rmw { func: 0 }).unwrap(),
            Value::Sym(Sym::BOTTOM)
        );
        assert_eq!(r.apply(0, &OpKind::Read).unwrap(), Value::Sym(Sym::new(0)));
        assert_eq!(
            r.apply(1, &OpKind::Rmw { func: 1 }).unwrap(),
            Value::Sym(Sym::new(0))
        );
        assert_eq!(r.apply(1, &OpKind::Read).unwrap(), Value::Sym(Sym::new(1)));
        // Unknown function index is a domain violation.
        assert!(matches!(
            r.apply(0, &OpKind::Rmw { func: 9 }).unwrap_err(),
            ObjectError::DomainViolation { .. }
        ));
        assert!(!r.is_read_write());
    }

    #[test]
    #[should_panic(expected = "must map all")]
    fn rmw_k_validates_tables() {
        let _ = ObjectState::from_init(&ObjectInit::RmwK {
            k: 3,
            functions: vec![vec![0, 1]],
        });
    }

    #[test]
    fn unbounded_cas_register() {
        let mut c = ObjectState::from_init(&ObjectInit::CasReg(Value::Nil));
        let prev = c
            .apply(
                0,
                &OpKind::Cas {
                    expect: Value::Nil,
                    new: Value::Pid(42),
                },
            )
            .unwrap();
        assert_eq!(prev, Value::Nil);
        assert_eq!(c.apply(1, &OpKind::Read).unwrap(), Value::Pid(42));
    }
}
