use std::fmt;

/// A value from the bounded domain Σ = {⊥, 0, 1, …, k−2} of a
/// `compare&swap-(k)` register.
///
/// The paper (Section 2) defines a `compare&swap-(k)` object as a
/// compare&swap register whose cell can hold `k` different values from
/// the set Σ = {⊥, 0, 1, …, k−2}. `Sym` encodes ⊥ as the internal code
/// `0` and the numeric value `i` as code `i + 1`, so a domain of size
/// `k` uses codes `0..k`.
///
/// # Example
///
/// ```
/// use bso_objects::Sym;
///
/// let bot = Sym::BOTTOM;
/// let two = Sym::new(2);
/// assert!(bot.is_bottom());
/// assert_eq!(two.value(), Some(2));
/// assert!(bot.in_domain(3) && two.in_domain(4) && !two.in_domain(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Sym(u8);

impl Sym {
    /// The distinguished initial value ⊥.
    pub const BOTTOM: Sym = Sym(0);

    /// The symbol for the numeric value `i` (so `Sym::new(0)` is the
    /// value `0`, distinct from ⊥).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 254` (the encoding reserves one code for ⊥ and
    /// must fit in a `u8`).
    pub fn new(i: u8) -> Sym {
        assert!(i < u8::MAX - 1, "symbol value {i} out of encodable range");
        Sym(i + 1)
    }

    /// Builds a symbol from its internal code: `0` is ⊥ and `c` is the
    /// numeric value `c − 1`.
    pub fn from_code(c: u8) -> Sym {
        Sym(c)
    }

    /// The internal code (⊥ ↦ 0, value `i` ↦ `i + 1`).
    pub fn code(self) -> u8 {
        self.0
    }

    /// Whether this symbol is ⊥.
    pub fn is_bottom(self) -> bool {
        self.0 == 0
    }

    /// The numeric value, or `None` for ⊥.
    pub fn value(self) -> Option<u8> {
        if self.is_bottom() {
            None
        } else {
            Some(self.0 - 1)
        }
    }

    /// Whether this symbol belongs to the size-`k` domain
    /// {⊥, 0, …, k−2}.
    pub fn in_domain(self, k: usize) -> bool {
        (self.0 as usize) < k
    }

    /// Iterator over the full size-`k` domain, ⊥ first.
    ///
    /// # Example
    ///
    /// ```
    /// use bso_objects::Sym;
    /// let d: Vec<Sym> = Sym::domain(3).collect();
    /// assert_eq!(d, vec![Sym::BOTTOM, Sym::new(0), Sym::new(1)]);
    /// ```
    pub fn domain(k: usize) -> impl Iterator<Item = Sym> {
        assert!(
            k >= 1 && k <= u8::MAX as usize,
            "domain size {k} unsupported"
        );
        (0..k as u8).map(Sym)
    }

    /// The non-⊥ symbols of the size-`k` domain, in increasing order.
    pub fn non_bottom(k: usize) -> impl Iterator<Item = Sym> {
        Sym::domain(k).skip(1)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value() {
            None => write!(f, "⊥"),
            Some(v) => write!(f, "{v}"),
        }
    }
}

impl From<Sym> for u8 {
    fn from(s: Sym) -> u8 {
        s.code()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_is_default_and_distinct() {
        assert_eq!(Sym::default(), Sym::BOTTOM);
        assert!(Sym::BOTTOM.is_bottom());
        assert_ne!(Sym::BOTTOM, Sym::new(0));
        assert_eq!(Sym::new(0).value(), Some(0));
    }

    #[test]
    fn domain_iteration_matches_membership() {
        for k in 1..=8 {
            let d: Vec<Sym> = Sym::domain(k).collect();
            assert_eq!(d.len(), k);
            for s in &d {
                assert!(s.in_domain(k));
            }
            assert!(!Sym::from_code(k as u8).in_domain(k));
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Sym::BOTTOM.to_string(), "⊥");
        assert_eq!(Sym::new(3).to_string(), "3");
    }

    #[test]
    fn code_roundtrip() {
        for c in 0..=10u8 {
            assert_eq!(Sym::from_code(c).code(), c);
        }
    }

    #[test]
    #[should_panic(expected = "out of encodable range")]
    fn new_rejects_overflow() {
        let _ = Sym::new(u8::MAX - 1);
    }
}
