use crate::{ObjectId, Value};

/// A description of one shared object's type and initial contents.
///
/// Layouts are interpreted both by the simulator (producing
/// [`crate::spec::ObjectState`]s) and by the hardware backend
/// (producing [`crate::atomic`] objects), so the same protocol runs in
/// both worlds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObjectInit {
    /// A read/write register with the given initial contents.
    Register(Value),
    /// A `compare&swap-(k)` register, initially ⊥.
    CasK {
        /// Domain size (must be ≥ 2).
        k: usize,
    },
    /// An unbounded compare&swap register.
    CasReg(Value),
    /// A test&set bit, initially clear.
    TestAndSet,
    /// A fetch&add counter with the given initial count.
    FetchAdd(i64),
    /// An atomic snapshot object with one slot per process.
    Snapshot {
        /// Number of per-process slots.
        slots: usize,
    },
    /// A write-once register, initially unwritten.
    Sticky,
    /// A FIFO queue with the given initial contents (head first).
    /// Consensus number 2 in Herlihy's hierarchy — the pre-loaded
    /// two-token queue is the classical 2-consensus object.
    Queue(Vec<Value>),
    /// A general bounded read-modify-write register over the size-`k`
    /// symbol domain, initially ⊥, with a fixed set of transition
    /// functions (each a total map given by its value table over the
    /// `k` symbol codes).
    RmwK {
        /// Domain size (must be ≥ 2).
        k: usize,
        /// Transition functions; `functions[f][c]` is the new symbol
        /// code when function `f` is applied to current code `c`.
        functions: Vec<Vec<u8>>,
    },
}

/// The shared-memory layout of a protocol: an ordered list of objects.
///
/// # Example
///
/// ```
/// use bso_objects::{Layout, ObjectInit, Value};
///
/// let mut layout = Layout::new();
/// let cas = layout.push(ObjectInit::CasK { k: 4 });
/// let ann = layout.push_n(ObjectInit::Register(Value::Nil), 3);
/// assert_eq!(layout.len(), 4);
/// assert_eq!(cas.0, 0);
/// assert_eq!(ann[2].0, 3);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Layout {
    objects: Vec<ObjectInit>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Layout {
        Layout::default()
    }

    /// Appends one object and returns its id.
    pub fn push(&mut self, init: ObjectInit) -> ObjectId {
        let id = ObjectId(self.objects.len());
        self.objects.push(init);
        id
    }

    /// Appends `n` copies of an object and returns their ids in order.
    pub fn push_n(&mut self, init: ObjectInit, n: usize) -> Vec<ObjectId> {
        (0..n).map(|_| self.push(init.clone())).collect()
    }

    /// The number of objects in the layout.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The object descriptors, in id order.
    pub fn objects(&self) -> &[ObjectInit] {
        &self.objects
    }

    /// Iterator over `(id, descriptor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectInit)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i), o))
    }
}

impl FromIterator<ObjectInit> for Layout {
    fn from_iter<I: IntoIterator<Item = ObjectInit>>(iter: I) -> Layout {
        Layout {
            objects: iter.into_iter().collect(),
        }
    }
}

impl Extend<ObjectInit> for Layout {
    fn extend<I: IntoIterator<Item = ObjectInit>>(&mut self, iter: I) {
        self.objects.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential() {
        let mut l = Layout::new();
        assert!(l.is_empty());
        let a = l.push(ObjectInit::TestAndSet);
        let b = l.push(ObjectInit::Sticky);
        assert_eq!((a.0, b.0), (0, 1));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn collect_and_extend() {
        let mut l: Layout = vec![ObjectInit::TestAndSet, ObjectInit::Sticky]
            .into_iter()
            .collect();
        l.extend(std::iter::once(ObjectInit::FetchAdd(0)));
        assert_eq!(l.len(), 3);
        let kinds: Vec<_> = l.iter().map(|(id, _)| id.0).collect();
        assert_eq!(kinds, vec![0, 1, 2]);
    }
}
