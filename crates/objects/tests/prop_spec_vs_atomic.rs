//! Property: on any *sequential* operation sequence, the hardware
//! backend and the sequential specification are observationally
//! identical — same responses, same errors.

use bso_objects::atomic::{AtomicMemory, Memory};
use bso_objects::{spec::ObjectState, Layout, ObjectInit, Op, OpKind, Sym, Value};
use proptest::prelude::*;

/// A generator of operations aimed at a mixed-object layout.
fn arb_op() -> impl Strategy<Value = (usize, OpKind)> {
    // Object 0: cas-k(4), 1: t&s, 2: f&a, 3: register, 4: sticky,
    // 5: queue, 6: rmw-k(4) with two functions, 7: snapshot(3).
    prop_oneof![
        (0usize..8, Just(OpKind::Read)),
        (0u8..5, 0u8..5).prop_map(|(e, n)| (
            0,
            OpKind::Cas {
                expect: Sym::from_code(e % 4).into(),
                new: Sym::from_code(n % 4).into()
            }
        )),
        Just((1, OpKind::TestAndSet)),
        Just((1, OpKind::Reset)),
        (-5i64..5).prop_map(|d| (2, OpKind::FetchAdd(d))),
        (0i64..9).prop_map(|v| (3, OpKind::Write(Value::Int(v)))),
        (0i64..9).prop_map(|v| (3, OpKind::Swap(Value::Int(v)))),
        (0i64..9).prop_map(|v| (4, OpKind::StickyWrite(Value::Int(v)))),
        (0i64..9).prop_map(|v| (5, OpKind::Enqueue(Value::Int(v)))),
        Just((5, OpKind::Dequeue)),
        (0usize..3).prop_map(|f| (6, OpKind::Rmw { func: f % 2 })),
        Just((7, OpKind::SnapshotScan)),
        (0i64..9).prop_map(|v| (7, OpKind::SnapshotUpdate(Value::Int(v)))),
    ]
}

fn layout() -> Layout {
    let mut l = Layout::new();
    l.push(ObjectInit::CasK { k: 4 });
    l.push(ObjectInit::TestAndSet);
    l.push(ObjectInit::FetchAdd(0));
    l.push(ObjectInit::Register(Value::Nil));
    l.push(ObjectInit::Sticky);
    l.push(ObjectInit::Queue(vec![Value::Int(7)]));
    l.push(ObjectInit::RmwK {
        k: 4,
        functions: vec![vec![1, 1, 2, 3], vec![0, 2, 3, 1]],
    });
    l.push(ObjectInit::Snapshot { slots: 3 });
    l
}

proptest! {
    #[test]
    fn spec_and_hardware_agree_sequentially(
        ops in proptest::collection::vec((arb_op(), 0usize..3), 1..60),
    ) {
        let layout = layout();
        let mut specs: Vec<ObjectState> =
            layout.objects().iter().map(ObjectState::from_init).collect();
        let mem = AtomicMemory::new(&layout);
        for ((obj, kind), pid) in ops {
            let a = specs[obj].apply(pid, &kind);
            let b = mem.apply(pid, &Op::new(bso_objects::ObjectId(obj), kind.clone()));
            prop_assert_eq!(a, b, "divergence on object {} op {}", obj, kind);
        }
    }

    /// Read is always side-effect free on every object type.
    #[test]
    fn read_is_pure(
        setup in proptest::collection::vec((arb_op(), 0usize..3), 0..30),
        obj in 0usize..8,
    ) {
        let layout = layout();
        let mut specs: Vec<ObjectState> =
            layout.objects().iter().map(ObjectState::from_init).collect();
        for ((o, kind), pid) in setup {
            let _ = specs[o].apply(pid, &kind);
        }
        let before = specs[obj].clone();
        let r1 = specs[obj].apply(0, &OpKind::Read);
        let r2 = specs[obj].apply(0, &OpKind::Read);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(&specs[obj], &before);
    }
}
