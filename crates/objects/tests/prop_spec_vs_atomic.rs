//! Property: on any *sequential* operation sequence, the hardware
//! backend and the sequential specification are observationally
//! identical — same responses, same errors.
//!
//! Written as seeded random-input loops over [`SplitMix64`] (the
//! workspace carries no external property-testing crate): every case is
//! reproducible from the fixed seed, and a failure message reports the
//! case index.

use bso_objects::atomic::{AtomicMemory, Memory};
use bso_objects::rng::SplitMix64;
use bso_objects::{spec::ObjectState, Layout, ObjectInit, Op, OpKind, Sym, Value};

/// A random operation aimed at the mixed-object layout below.
fn arb_op(rng: &mut SplitMix64) -> (usize, OpKind) {
    // Object 0: cas-k(4), 1: t&s, 2: f&a, 3: register, 4: sticky,
    // 5: queue, 6: rmw-k(4) with two functions, 7: snapshot(3).
    match rng.usize_below(13) {
        0 => (rng.usize_below(8), OpKind::Read),
        1 => (
            0,
            OpKind::Cas {
                expect: Sym::from_code(rng.range_u8(0, 5) % 4).into(),
                new: Sym::from_code(rng.range_u8(0, 5) % 4).into(),
            },
        ),
        2 => (1, OpKind::TestAndSet),
        3 => (1, OpKind::Reset),
        4 => (2, OpKind::FetchAdd(rng.usize_below(10) as i64 - 5)),
        5 => (3, OpKind::Write(Value::Int(rng.usize_below(9) as i64))),
        6 => (3, OpKind::Swap(Value::Int(rng.usize_below(9) as i64))),
        7 => (
            4,
            OpKind::StickyWrite(Value::Int(rng.usize_below(9) as i64)),
        ),
        8 => (5, OpKind::Enqueue(Value::Int(rng.usize_below(9) as i64))),
        9 => (5, OpKind::Dequeue),
        10 => (
            6,
            OpKind::Rmw {
                func: rng.usize_below(3) % 2,
            },
        ),
        11 => (7, OpKind::SnapshotScan),
        _ => (
            7,
            OpKind::SnapshotUpdate(Value::Int(rng.usize_below(9) as i64)),
        ),
    }
}

fn layout() -> Layout {
    let mut l = Layout::new();
    l.push(ObjectInit::CasK { k: 4 });
    l.push(ObjectInit::TestAndSet);
    l.push(ObjectInit::FetchAdd(0));
    l.push(ObjectInit::Register(Value::Nil));
    l.push(ObjectInit::Sticky);
    l.push(ObjectInit::Queue(vec![Value::Int(7)]));
    l.push(ObjectInit::RmwK {
        k: 4,
        functions: vec![vec![1, 1, 2, 3], vec![0, 2, 3, 1]],
    });
    l.push(ObjectInit::Snapshot { slots: 3 });
    l
}

#[test]
fn spec_and_hardware_agree_sequentially() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..256 {
        let layout = layout();
        let mut specs: Vec<ObjectState> = layout
            .objects()
            .iter()
            .map(ObjectState::from_init)
            .collect();
        let mem = AtomicMemory::new(&layout);
        for _ in 0..rng.range_usize(1, 60) {
            let (obj, kind) = arb_op(&mut rng);
            let pid = rng.usize_below(3);
            let a = specs[obj].apply(pid, &kind);
            let b = mem.apply(pid, &Op::new(bso_objects::ObjectId(obj), kind.clone()));
            assert_eq!(a, b, "case {case}: divergence on object {obj} op {kind}");
        }
    }
}

/// Builds a fresh (spec, hardware) pair for a single-object layout.
fn fresh(init: ObjectInit) -> (ObjectState, AtomicMemory, Layout) {
    let mut l = Layout::new();
    l.push(init.clone());
    let spec = ObjectState::from_init(&init);
    let mem = AtomicMemory::new(&l);
    (spec, mem, l)
}

/// Applies `kind` to both backends and asserts they agree; returns the
/// shared outcome.
fn lockstep(
    spec: &mut ObjectState,
    mem: &AtomicMemory,
    pid: usize,
    kind: &OpKind,
    ctx: &str,
) -> Result<Value, bso_objects::ObjectError> {
    let a = spec.apply(pid, kind);
    let b = mem.apply(pid, &Op::new(bso_objects::ObjectId(0), kind.clone()));
    assert_eq!(a, b, "{ctx}: spec and hardware diverge on {kind}");
    a
}

/// **Exhaustive**, not sampled: for every domain size `k` in `2..=5`,
/// every reachable register state, and every `(expect, new)` pair —
/// including out-of-domain symbols and non-symbol values — the
/// hardware compare&swap-(k) matches the sequential spec in both its
/// response and its successor state, and both reject domain
/// violations identically. This pins down the paper's Σ = {⊥, 0, …,
/// k−2} semantics over the *entire* bounded universe rather than a
/// random slice of it.
#[test]
fn cas_k_conforms_over_the_full_bounded_domain() {
    for k in 2..=5usize {
        // Operand candidates: the whole domain, the first symbol
        // *outside* it, and structurally foreign values.
        let mut operands: Vec<Value> = Sym::domain(k).map(Value::Sym).collect();
        operands.push(Value::Sym(Sym::new((k - 1) as u8))); // out of domain
        operands.push(Value::Int(0));
        operands.push(Value::Nil);
        operands.push(Value::Bool(true));
        let in_domain = |v: &Value| matches!(v.as_sym(), Some(s) if s.in_domain(k));

        for start in Sym::domain(k) {
            for expect in &operands {
                for new in &operands {
                    let ctx = format!("k={k} start={start} cas({expect}→{new})");
                    let (mut spec, mem, _l) = fresh(ObjectInit::CasK { k });
                    // Drive both backends from ⊥ into `start`.
                    if !start.is_bottom() {
                        let seed = OpKind::Cas {
                            expect: Sym::BOTTOM.into(),
                            new: start.into(),
                        };
                        let r = lockstep(&mut spec, &mem, 0, &seed, &ctx);
                        assert_eq!(r, Ok(Value::Sym(Sym::BOTTOM)), "{ctx}: seeding failed");
                    }
                    let op = OpKind::Cas {
                        expect: expect.clone(),
                        new: new.clone(),
                    };
                    let got = lockstep(&mut spec, &mem, 1, &op, &ctx);
                    let after = lockstep(&mut spec, &mem, 2, &OpKind::Read, &ctx);
                    if in_domain(expect) && in_domain(new) {
                        // Legal: response is the prior value; the state
                        // advances iff the comparison hit.
                        assert_eq!(got, Ok(Value::Sym(start)), "{ctx}");
                        let expected_after = if Value::Sym(start) == *expect {
                            new.clone()
                        } else {
                            Value::Sym(start)
                        };
                        assert_eq!(after, Ok(expected_after), "{ctx}");
                    } else {
                        // Boundedness is enforced, and a rejected
                        // operation must not move the register.
                        assert!(
                            matches!(got, Err(bso_objects::ObjectError::DomainViolation { .. })),
                            "{ctx}: expected DomainViolation, got {got:?}"
                        );
                        assert_eq!(after, Ok(Value::Sym(start)), "{ctx}: rejected op mutated");
                    }
                }
            }
        }
    }
}

/// Exhaustive rmw-(k) conformance: every declared transition function
/// applied in every reachable state, for `k` in `2..=4`. Constant
/// functions serve double duty as the state-setting gadget (an
/// rmw-(k) offers no write, so each state is reached by *running the
/// machine*, in lockstep on both backends). Out-of-range function
/// indices must be rejected identically too.
#[test]
fn rmw_k_conforms_over_all_functions_and_states() {
    for k in 2..=4usize {
        // Tables: one constant function per symbol (indices 0..k),
        // then identity and the cyclic successor ⊥→0→…→k−2→⊥.
        let mut functions: Vec<Vec<u8>> = (0..k).map(|c| vec![c as u8; k]).collect();
        functions.push((0..k as u8).collect()); // identity
        functions.push((0..k as u8).map(|c| (c + 1) % k as u8).collect()); // cycle
        let nfuncs = functions.len();

        for start in 0..k {
            for f in 0..=nfuncs {
                let ctx = format!("k={k} start=s{start} func={f}");
                let (mut spec, mem, _l) = fresh(ObjectInit::RmwK {
                    k,
                    functions: functions.clone(),
                });
                // Reach `start` via its constant function.
                let r = lockstep(&mut spec, &mem, 0, &OpKind::Rmw { func: start }, &ctx);
                assert_eq!(r, Ok(Value::Sym(Sym::BOTTOM)), "{ctx}: seeding failed");
                let got = lockstep(&mut spec, &mem, 1, &OpKind::Rmw { func: f }, &ctx);
                let after = lockstep(&mut spec, &mem, 2, &OpKind::Read, &ctx);
                if f < nfuncs {
                    assert_eq!(got, Ok(Value::Sym(Sym::from_code(start as u8))), "{ctx}");
                    let next = functions[f][start];
                    assert_eq!(after, Ok(Value::Sym(Sym::from_code(next))), "{ctx}");
                } else {
                    // One past the end: both backends must refuse and
                    // leave the state alone.
                    assert!(
                        matches!(got, Err(bso_objects::ObjectError::DomainViolation { .. })),
                        "{ctx}: expected DomainViolation, got {got:?}"
                    );
                    assert_eq!(
                        after,
                        Ok(Value::Sym(Sym::from_code(start as u8))),
                        "{ctx}: rejected op mutated"
                    );
                }
            }
        }
    }
}

/// Exhaustive operation-kind × object-type matrix: every `OpKind`
/// aimed at every object type must produce the *same* outcome on both
/// backends — in particular the same `TypeMismatch` rejections for
/// unsupported pairs, so a misrouted wire request fails identically
/// no matter which backend serves it.
#[test]
fn every_op_kind_agrees_on_every_object_type() {
    let inits: Vec<ObjectInit> = vec![
        ObjectInit::Register(Value::Nil),
        ObjectInit::CasK { k: 3 },
        ObjectInit::CasReg(Value::Nil),
        ObjectInit::TestAndSet,
        ObjectInit::FetchAdd(0),
        ObjectInit::Snapshot { slots: 2 },
        ObjectInit::Sticky,
        ObjectInit::Queue(vec![]),
        ObjectInit::RmwK {
            k: 3,
            functions: vec![vec![1, 2, 0]],
        },
    ];
    let kinds: Vec<OpKind> = vec![
        OpKind::Read,
        OpKind::Write(Value::Int(1)),
        OpKind::Cas {
            expect: Sym::BOTTOM.into(),
            new: Sym::new(0).into(),
        },
        OpKind::TestAndSet,
        OpKind::Reset,
        OpKind::FetchAdd(1),
        OpKind::Swap(Value::Int(2)),
        OpKind::SnapshotScan,
        OpKind::SnapshotUpdate(Value::Int(3)),
        OpKind::StickyWrite(Value::Int(4)),
        OpKind::Enqueue(Value::Int(5)),
        OpKind::Dequeue,
        OpKind::Rmw { func: 0 },
    ];
    for init in &inits {
        // pid 3 exceeds the snapshot's slot count, exercising the
        // BadSlot path on both backends as well.
        for pid in [0usize, 3] {
            for kind in &kinds {
                let (mut spec, mem, _l) = fresh(init.clone());
                let ctx = format!("{} pid={pid}", spec.type_name());
                let _ = lockstep(&mut spec, &mem, pid, kind, &ctx);
            }
        }
    }
}

/// Read is always side-effect free on every object type.
#[test]
fn read_is_pure() {
    let mut rng = SplitMix64::new(0xBEEF);
    for case in 0..256 {
        let layout = layout();
        let mut specs: Vec<ObjectState> = layout
            .objects()
            .iter()
            .map(ObjectState::from_init)
            .collect();
        for _ in 0..rng.usize_below(30) {
            let (o, kind) = arb_op(&mut rng);
            let pid = rng.usize_below(3);
            let _ = specs[o].apply(pid, &kind);
        }
        let obj = rng.usize_below(8);
        let before = specs[obj].clone();
        let r1 = specs[obj].apply(0, &OpKind::Read);
        let r2 = specs[obj].apply(0, &OpKind::Read);
        assert_eq!(r1, r2, "case {case}");
        assert_eq!(specs[obj], before, "case {case}: read mutated object {obj}");
    }
}
