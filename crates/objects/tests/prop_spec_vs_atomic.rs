//! Property: on any *sequential* operation sequence, the hardware
//! backend and the sequential specification are observationally
//! identical — same responses, same errors.
//!
//! Written as seeded random-input loops over [`SplitMix64`] (the
//! workspace carries no external property-testing crate): every case is
//! reproducible from the fixed seed, and a failure message reports the
//! case index.

use bso_objects::atomic::{AtomicMemory, Memory};
use bso_objects::rng::SplitMix64;
use bso_objects::{spec::ObjectState, Layout, ObjectInit, Op, OpKind, Sym, Value};

/// A random operation aimed at the mixed-object layout below.
fn arb_op(rng: &mut SplitMix64) -> (usize, OpKind) {
    // Object 0: cas-k(4), 1: t&s, 2: f&a, 3: register, 4: sticky,
    // 5: queue, 6: rmw-k(4) with two functions, 7: snapshot(3).
    match rng.usize_below(13) {
        0 => (rng.usize_below(8), OpKind::Read),
        1 => (
            0,
            OpKind::Cas {
                expect: Sym::from_code(rng.range_u8(0, 5) % 4).into(),
                new: Sym::from_code(rng.range_u8(0, 5) % 4).into(),
            },
        ),
        2 => (1, OpKind::TestAndSet),
        3 => (1, OpKind::Reset),
        4 => (2, OpKind::FetchAdd(rng.usize_below(10) as i64 - 5)),
        5 => (3, OpKind::Write(Value::Int(rng.usize_below(9) as i64))),
        6 => (3, OpKind::Swap(Value::Int(rng.usize_below(9) as i64))),
        7 => (
            4,
            OpKind::StickyWrite(Value::Int(rng.usize_below(9) as i64)),
        ),
        8 => (5, OpKind::Enqueue(Value::Int(rng.usize_below(9) as i64))),
        9 => (5, OpKind::Dequeue),
        10 => (
            6,
            OpKind::Rmw {
                func: rng.usize_below(3) % 2,
            },
        ),
        11 => (7, OpKind::SnapshotScan),
        _ => (
            7,
            OpKind::SnapshotUpdate(Value::Int(rng.usize_below(9) as i64)),
        ),
    }
}

fn layout() -> Layout {
    let mut l = Layout::new();
    l.push(ObjectInit::CasK { k: 4 });
    l.push(ObjectInit::TestAndSet);
    l.push(ObjectInit::FetchAdd(0));
    l.push(ObjectInit::Register(Value::Nil));
    l.push(ObjectInit::Sticky);
    l.push(ObjectInit::Queue(vec![Value::Int(7)]));
    l.push(ObjectInit::RmwK {
        k: 4,
        functions: vec![vec![1, 1, 2, 3], vec![0, 2, 3, 1]],
    });
    l.push(ObjectInit::Snapshot { slots: 3 });
    l
}

#[test]
fn spec_and_hardware_agree_sequentially() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..256 {
        let layout = layout();
        let mut specs: Vec<ObjectState> = layout
            .objects()
            .iter()
            .map(ObjectState::from_init)
            .collect();
        let mem = AtomicMemory::new(&layout);
        for _ in 0..rng.range_usize(1, 60) {
            let (obj, kind) = arb_op(&mut rng);
            let pid = rng.usize_below(3);
            let a = specs[obj].apply(pid, &kind);
            let b = mem.apply(pid, &Op::new(bso_objects::ObjectId(obj), kind.clone()));
            assert_eq!(a, b, "case {case}: divergence on object {obj} op {kind}");
        }
    }
}

/// Read is always side-effect free on every object type.
#[test]
fn read_is_pure() {
    let mut rng = SplitMix64::new(0xBEEF);
    for case in 0..256 {
        let layout = layout();
        let mut specs: Vec<ObjectState> = layout
            .objects()
            .iter()
            .map(ObjectState::from_init)
            .collect();
        for _ in 0..rng.usize_below(30) {
            let (o, kind) = arb_op(&mut rng);
            let pid = rng.usize_below(3);
            let _ = specs[o].apply(pid, &kind);
        }
        let obj = rng.usize_below(8);
        let before = specs[obj].clone();
        let r1 = specs[obj].apply(0, &OpKind::Read);
        let r2 = specs[obj].apply(0, &OpKind::Read);
        assert_eq!(r1, r2, "case {case}");
        assert_eq!(specs[obj], before, "case {case}: read mutated object {obj}");
    }
}
