//! Wait-freedom under crash faults, end to end.
//!
//! The paper's model demands *wait-freedom*: every process finishes in
//! a bounded number of its **own** steps, regardless of the speed — or
//! death — of everyone else. This suite pins that claim for the
//! reproduction's protocols by exploring them under a crash adversary
//! ([`Explorer::faults`]): the paper protocols stay `Verified` under
//! every ≤1-crash schedule, while a deliberately lock-based election
//! is refuted with a *crash-schedule counterexample* that survives the
//! full artifact life cycle (serialize, parse, replay, verify).

use bso_protocols::set_consensus::PartitionSetConsensus;
use bso_protocols::{LabelElectionRw, LockElection, RmwOnlyElection};
use bso_sim::{
    verify_replay, ExploreOutcome, Explorer, ProtocolExt, ScheduleArtifact, TaskSpec, ViolationKind,
};

/// Explores `proto` under every schedule with at most one crash and a
/// generous per-process step bound, and asserts it is still verified.
/// The step bound turns any would-be unbounded spin into a reported
/// violation instead of a longer exploration, so a regression here
/// fails fast with a counterexample schedule.
macro_rules! assert_wait_free_under_one_crash {
    ($proto:expr, $spec:expr, $bound:expr) => {
        let proto = $proto;
        let report = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec($spec)
            .faults(1)
            .step_bound($bound)
            .run();
        assert!(
            report.outcome.is_verified(),
            "{}: not wait-free under 1 crash: {:?}",
            stringify!($proto),
            report.outcome
        );
    };
}

#[test]
fn rmw_election_survives_one_crash() {
    // Losers learn the winner from their own grab response, so a
    // crashed peer cannot starve anyone: 2 steps each, crash or not.
    assert_wait_free_under_one_crash!(RmwOnlyElection::new(3, 4).unwrap(), TaskSpec::Election, 2);
}

#[test]
fn label_election_rw_survives_one_crash() {
    // No step bound here: tracking per-process step counts in the
    // dedup key multiplies the state space (this instance takes up to
    // 49 steps per process), so wait-freedom is checked the cheaper
    // way — acyclicity of the crash-extended state graph.
    let proto = LabelElectionRw::new(2, 3).unwrap();
    let report = Explorer::new(&proto)
        .inputs(&proto.pid_inputs())
        .spec(TaskSpec::Election)
        .faults(1)
        .run();
    assert!(
        report.outcome.is_verified(),
        "LabelElectionRw under 1 crash: {:?}",
        report.outcome
    );
}

#[test]
fn set_consensus_survives_one_crash() {
    let proto = PartitionSetConsensus::new(3, 2);
    let inputs: Vec<_> = (0..3).map(|i| bso_objects::Value::Int(i as i64)).collect();
    let report = Explorer::new(&proto)
        .inputs(&inputs)
        .spec(TaskSpec::SetConsensus(inputs.clone(), 2))
        .faults(1)
        .step_bound(4)
        .run();
    assert!(
        report.outcome.is_verified(),
        "set consensus under 1 crash: {:?}",
        report.outcome
    );
}

#[test]
fn lock_election_crash_counterexample_round_trips() {
    // The non-wait-free fixture: the crash adversary kills the lock
    // holder between winning and announcing, and every loser spins
    // past any step bound. The counterexample must survive the full
    // bso-schedule/v1 life cycle with its crash events intact.
    let proto = LockElection::new(2);
    let explorer = Explorer::new(&proto)
        .inputs(&proto.pid_inputs())
        .protocol_id("lock-election")
        .spec(TaskSpec::Election)
        .faults(1)
        .step_bound(4);
    let report = explorer.run();
    let ExploreOutcome::Violated(v) = &report.outcome else {
        panic!("LockElection must be refuted, got {:?}", report.outcome);
    };
    assert_eq!(v.kind, ViolationKind::StepBound, "{v}");
    assert!(
        !v.crashes.is_empty(),
        "counterexample must crash someone: {v}"
    );

    let artifact = explorer.artifact_for(v);
    assert_eq!(artifact.crashes, v.crashes);
    assert_eq!(artifact.step_bound, Some(4));

    // Serialize → reparse → replay → verify, through an actual file.
    let path = std::env::temp_dir().join(format!("bso-wait-freedom-{}.json", std::process::id()));
    artifact.save(&path).unwrap();
    let reloaded = ScheduleArtifact::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.crashes, artifact.crashes);
    assert_eq!(reloaded.step_bound, artifact.step_bound);

    let outcome = explorer.replay(&reloaded);
    let verdict = verify_replay(&reloaded, &outcome).unwrap();
    assert!(
        verdict.contains("step"),
        "verdict should describe the step-bound violation: {verdict}"
    );
}

#[test]
fn crash_free_reports_are_identical_with_fault_machinery_disabled() {
    // faults(0) is the default; saying it explicitly must change
    // nothing — outcome, state count and wait-freedom witness all
    // stay bit-identical on a real protocol.
    let proto = RmwOnlyElection::new(3, 4).unwrap();
    let base = Explorer::new(&proto)
        .inputs(&proto.pid_inputs())
        .spec(TaskSpec::Election);
    let plain = base.clone().run();
    let zero = base.clone().faults(0).run();
    assert_eq!(plain.outcome.is_verified(), zero.outcome.is_verified());
    assert_eq!(plain.states, zero.states);
    assert_eq!(plain.max_steps_per_proc, zero.max_steps_per_proc);
}
