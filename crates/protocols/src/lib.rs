//! Wait-free protocols over bounded synchronization objects.
//!
//! This crate contains the *algorithmic* side of the reproduction of
//! Afek & Stupp (PODC 1994): the election algorithms whose existence
//! and limits the paper is about, plus the consensus protocols that
//! populate Herlihy's hierarchy and the snapshot construction that
//! justifies the model's snapshot primitive.
//!
//! # The headline: `n_k` from below
//!
//! With a `compare&swap-(k)` register (domain Σ = {⊥, 0, …, k−2}):
//!
//! * [`CasOnlyElection`] — **k − 1** processes elect using the
//!   register *alone* (the Burns–Cruz–Loui regime \[5\]): each process
//!   owns one non-⊥ symbol and performs a single `c&s(⊥ → own)`; the
//!   response identifies the winner either way.
//! * [`LabelElection`] — **(k − 1)!** processes elect once unbounded
//!   read/write memory is added, realizing the Θ(k!) lower-bound side
//!   of the paper (the FOCS '93 companion \[1\]). The register's value
//!   history is driven to be a *permutation* of Σ (each value written
//!   exactly once — the paper's "first value" labels), recorded in a
//!   write-ahead log built from a snapshot object; the completed
//!   permutation names the leader through the Lehmer bijection.
//!
//! Together they exhibit the paper's qualitative claim: adding
//! read/write registers to a bounded strong object increases its power
//! exponentially (from `k − 1` to `(k − 1)!`), and — by the paper's
//! Theorem 1 — only exponentially (`n_k ≤ O(k^(k²+3))`).
//!
//! All protocols are [`bso_sim::Protocol`] state machines: the same
//! code is exhaustively model-checked for small `(n, k)`, stress-run
//! under random schedules, and executed on real hardware atomics.
//!
//! # Example
//!
//! ```
//! use bso_protocols::LabelElection;
//! use bso_sim::{checker, scheduler::RandomSched, ProtocolExt, Simulation};
//!
//! // k = 4 ⇒ (k−1)! = 6 processes elect with one compare&swap-(4).
//! let proto = LabelElection::new(6, 4).unwrap();
//! let mut sim = Simulation::new(&proto, &proto.pid_inputs());
//! let result = sim.run(&mut RandomSched::new(7), 100_000).unwrap();
//! checker::check_election(&result).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cas_only;
pub mod consensus;
mod label_election;
mod label_election_rw;
mod rmw_election;
pub mod set_consensus;
pub mod snapshot;
mod spinlock;
pub mod swmr;
pub mod universal;

pub use cas_only::CasOnlyElection;
pub use label_election::{LabelElection, LabelElectionError};
pub use label_election_rw::LabelElectionRw;
pub use rmw_election::{RmwOnlyElection, RmwOnlyState};
pub use spinlock::{LockElection, LockState};
