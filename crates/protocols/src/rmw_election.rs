use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso_sim::{Action, Pid, Protocol};

/// Leader election among `n ≤ k − 1` processes using **one** general
/// `rmw-(k)` register and nothing else — the Burns–Cruz–Loui regime
/// over the paper's §4 generalization target.
///
/// Burns, Cruz and Loui \[5\] prove their `k − 1` ceiling for
/// *arbitrary* bounded read-modify-write registers under a write-once
/// discipline ("each read-modify-write register may be written at most
/// once"). This protocol is the matching algorithm in that exact
/// model:
///
/// * the register's transition functions are the `n` *grab* functions
///   `g_p : ⊥ ↦ p, x ↦ x (x ≠ ⊥)`;
/// * each process applies its own grab once; the response (the
///   previous contents) names the winner either way;
/// * the register changes value **at most once in the whole run** —
///   the write-once discipline holds by construction (every `g_p` is
///   the identity away from ⊥).
///
/// [`crate::CasOnlyElection`] is precisely the `compare&swap-(k)`
/// instance of this protocol: `c&s(⊥ → p)` *is* `g_p`. The test
/// `cas_is_an_rmw_instance` verifies that the two produce identical
/// runs step for step.
#[derive(Clone, Debug)]
pub struct RmwOnlyElection {
    n: usize,
    k: usize,
}

impl RmwOnlyElection {
    const RMW: ObjectId = ObjectId(0);

    /// Configures an election among `n` processes with an `rmw-(k)`.
    ///
    /// # Errors
    ///
    /// Returns the Burns–Cruz–Loui ceiling as an error when
    /// `n > k − 1` (or `k < 2`): with only `k − 1` non-⊥ values there
    /// is no injective assignment of grab targets.
    pub fn new(n: usize, k: usize) -> Result<RmwOnlyElection, String> {
        if k < 2 {
            return Err(format!("an rmw-(k) needs k >= 2, got {k}"));
        }
        if n == 0 || n > k - 1 {
            return Err(format!(
                "an rmw-({k}) under the write-once discipline elects at most {} \
                 processes, got {n}",
                k - 1
            ));
        }
        Ok(RmwOnlyElection { n, k })
    }

    /// The grab function of process `p` as a transition table:
    /// `⊥ ↦ p`, identity elsewhere.
    fn grab_table(p: Pid, k: usize) -> Vec<u8> {
        (0..k as u8)
            .map(|c| {
                if Sym::from_code(c).is_bottom() {
                    Sym::new(p as u8).code()
                } else {
                    c
                }
            })
            .collect()
    }
}

/// Local state of [`RmwOnlyElection`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RmwOnlyState {
    /// About to apply the own grab function.
    Grab {
        /// Own id.
        pid: Pid,
    },
    /// Learned the winner.
    Done {
        /// The elected process.
        winner: Pid,
    },
}

impl Protocol for RmwOnlyElection {
    type State = RmwOnlyState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::RmwK {
            k: self.k,
            functions: (0..self.n).map(|p| Self::grab_table(p, self.k)).collect(),
        });
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> RmwOnlyState {
        RmwOnlyState::Grab { pid }
    }

    fn next_action(&self, state: &RmwOnlyState) -> Action {
        match state {
            RmwOnlyState::Grab { pid } => {
                Action::Invoke(Op::new(Self::RMW, OpKind::Rmw { func: *pid }))
            }
            RmwOnlyState::Done { winner } => Action::Decide(Value::Pid(*winner)),
        }
    }

    fn on_response(&self, state: &mut RmwOnlyState, resp: Value) {
        if let RmwOnlyState::Grab { pid } = *state {
            let prev = resp.as_sym().expect("rmw returns a symbol");
            let winner = match prev.value() {
                None => pid, // register held ⊥: our grab installed us
                Some(sym) => sym as Pid,
            };
            *state = RmwOnlyState::Done { winner };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CasOnlyElection;
    use bso_sim::{checker, scheduler, Explorer, ProtocolExt, Simulation, TaskSpec};

    #[test]
    fn exhaustively_correct_at_the_ceiling() {
        for k in 3..=6 {
            let proto = RmwOnlyElection::new(k - 1, k).unwrap();
            let report = Explorer::new(&proto)
                .inputs(&proto.pid_inputs())
                .spec(TaskSpec::Election)
                .run();
            assert!(report.outcome.is_verified(), "k={k}: {:?}", report.outcome);
            assert!(report.max_steps_per_proc.iter().all(|&s| s == 2));
        }
    }

    #[test]
    fn ceiling_binds() {
        assert!(RmwOnlyElection::new(3, 3).is_err());
        assert!(RmwOnlyElection::new(1, 1).is_err());
        assert!(RmwOnlyElection::new(0, 4).is_err());
    }

    #[test]
    fn register_is_written_at_most_once() {
        // The Burns write-once discipline, checked on the trace: at
        // most one Rmw response differs from the register's value
        // after it (i.e. at most one grab changes the contents).
        let proto = RmwOnlyElection::new(4, 5).unwrap();
        for seed in 0..30 {
            let mut sim = Simulation::new(&proto, &proto.pid_inputs());
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 100)
                .unwrap();
            checker::check_election(&res).unwrap();
            let changes = res
                .trace
                .events()
                .iter()
                .filter(|e| match &e.kind {
                    bso_sim::EventKind::Applied { op, resp } => {
                        matches!(op.kind, OpKind::Rmw { .. }) && *resp == Value::Sym(Sym::BOTTOM)
                    }
                    _ => false,
                })
                .count();
            assert_eq!(changes, 1, "exactly one grab succeeds");
        }
    }

    #[test]
    fn cas_is_an_rmw_instance() {
        // The same schedule drives CasOnlyElection and RmwOnlyElection
        // to identical decisions: c&s(⊥ → p) is the grab function g_p.
        for seed in 0..30 {
            let cas = CasOnlyElection::new(3, 4).unwrap();
            let rmw = RmwOnlyElection::new(3, 4).unwrap();
            let mut sim_cas = Simulation::new(&cas, &cas.pid_inputs());
            let res_cas = sim_cas
                .run(&mut scheduler::RandomSched::new(seed), 100)
                .unwrap();
            let mut sim_rmw = Simulation::new(&rmw, &rmw.pid_inputs());
            let mut replay = scheduler::Scripted::new(res_cas.trace.schedule());
            let res_rmw = sim_rmw.run(&mut replay, 100).unwrap();
            assert_eq!(res_cas.decisions, res_rmw.decisions, "seed {seed}");
        }
    }

    #[test]
    fn on_hardware_atomics() {
        let proto = RmwOnlyElection::new(4, 5).unwrap();
        for _ in 0..20 {
            let decisions =
                bso_sim::thread_runner::run_on_threads(&proto, &proto.pid_inputs()).unwrap();
            let w = decisions[0].as_pid().unwrap();
            assert!(decisions.iter().all(|d| d.as_pid().unwrap() == w));
        }
    }
}
