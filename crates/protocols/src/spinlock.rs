use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{Action, Pid, Protocol};

/// A deliberately **non-wait-free** election: winner-takes-lock,
/// losers spin.
///
/// Process `p` performs `test&set` on a lock bit; the winner announces
/// itself in a register and decides, every loser *spins* re-reading
/// the announcement register until the winner's id appears. In a
/// failure-free run under a fair scheduler this always terminates and
/// elects correctly — which is exactly why it is a useful fixture: the
/// bug is invisible to run-level checking, but the protocol violates
/// wait-freedom, the property the paper's model demands. Two distinct
/// adversaries expose it:
///
/// * **Asynchrony alone**: a schedule that keeps stepping a loser
///   while the winner holds the lock un-announced revisits the same
///   global state — a cycle, found by the explorer as
///   [`NotWaitFree`](bso_sim::ViolationKind::NotWaitFree).
/// * **A single crash**: if the winner crashes between winning the
///   lock and announcing (the classic lock-holder failure), every
///   loser spins *forever* — no fairness assumption can save it. With
///   [`faults(1)`](bso_sim::Explorer::faults) and a
///   [`step_bound`](bso_sim::Explorer::step_bound) the explorer
///   produces a crash-schedule counterexample:
///   [`StepBound`](bso_sim::ViolationKind::StepBound) with a
///   [`CrashEvent`](bso_sim::CrashEvent) attached.
///
/// Contrast with [`crate::CasOnlyElection`] and
/// [`crate::LabelElection`], where losers learn the winner from the
/// *response of their own operation* and thus finish in a bounded
/// number of their own steps regardless of anyone else's fate.
///
/// # Example
///
/// ```
/// use bso_protocols::LockElection;
/// use bso_sim::{Explorer, TaskSpec, ViolationKind, ProtocolExt, ExploreOutcome};
///
/// let proto = LockElection::new(2);
/// let report = Explorer::new(&proto)
///     .inputs(&proto.pid_inputs())
///     .spec(TaskSpec::Election)
///     .faults(1)
///     .step_bound(4)
///     .run();
/// let ExploreOutcome::Violated(v) = report.outcome else { panic!() };
/// assert_eq!(v.kind, ViolationKind::StepBound);
/// assert!(!v.crashes.is_empty(), "the counterexample crashes the lock holder");
/// ```
#[derive(Clone, Debug)]
pub struct LockElection {
    n: usize,
}

impl LockElection {
    /// Configures the lock-based election among `n ≥ 2` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a solo process cannot lose the lock, hiding
    /// the spin loop this fixture exists to exhibit).
    pub fn new(n: usize) -> LockElection {
        assert!(n >= 2, "LockElection needs at least 2 processes");
        LockElection { n }
    }

    const LOCK: ObjectId = ObjectId(0);
    const WINNER: ObjectId = ObjectId(1);
}

/// Local state of one [`LockElection`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LockState {
    /// About to `test&set` the lock.
    Grab {
        /// This process's id.
        pid: Pid,
    },
    /// Won the lock; about to announce itself.
    Announce {
        /// This process's id.
        pid: Pid,
    },
    /// Lost the lock; spinning on the announcement register.
    ReadWinner {
        /// This process's id.
        pid: Pid,
    },
    /// Learned the winner.
    Done {
        /// The elected process.
        winner: Pid,
    },
}

impl Protocol for LockElection {
    type State = LockState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::TestAndSet);
        l.push(ObjectInit::Register(Value::Nil));
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> LockState {
        LockState::Grab { pid }
    }

    fn next_action(&self, state: &LockState) -> Action {
        match state {
            LockState::Grab { .. } => Action::Invoke(Op::new(Self::LOCK, OpKind::TestAndSet)),
            LockState::Announce { pid } => {
                Action::Invoke(Op::write(Self::WINNER, Value::Pid(*pid)))
            }
            LockState::ReadWinner { .. } => Action::Invoke(Op::read(Self::WINNER)),
            LockState::Done { winner } => Action::Decide(Value::Pid(*winner)),
        }
    }

    fn on_response(&self, state: &mut LockState, resp: Value) {
        *state = match state.clone() {
            LockState::Grab { pid } => {
                if resp == Value::Bool(false) {
                    LockState::Announce { pid }
                } else {
                    LockState::ReadWinner { pid }
                }
            }
            LockState::Announce { pid } => LockState::Done { winner: pid },
            LockState::ReadWinner { pid } => match resp.as_pid() {
                Some(winner) => LockState::Done { winner },
                // Nothing announced yet: spin. The state is unchanged,
                // which is precisely the cycle in the state graph.
                None => LockState::ReadWinner { pid },
            },
            done => done,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{
        checker, scheduler::RandomSched, ExploreOutcome, Explorer, ProtocolExt, Simulation,
        TaskSpec, ViolationKind,
    };

    #[test]
    fn failure_free_fair_runs_elect_correctly() {
        // The bug is invisible to run-level checking under fair
        // schedules: every run elects a winner.
        let proto = LockElection::new(3);
        for seed in 0..30 {
            let mut sim = Simulation::new(&proto, &proto.pid_inputs());
            let res = sim.run(&mut RandomSched::new(seed), 10_000).unwrap();
            checker::check_election(&res).unwrap();
        }
    }

    #[test]
    fn asynchrony_alone_refutes_wait_freedom() {
        // No crashes, no bound: the spin loop is a state-graph cycle.
        let proto = LockElection::new(2);
        let report = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election)
            .run();
        let ExploreOutcome::Violated(v) = report.outcome else {
            panic!("expected a violation, got {:?}", report.outcome);
        };
        assert_eq!(v.kind, ViolationKind::NotWaitFree);
        assert!(v.crashes.is_empty(), "no crash needed for the cycle: {v}");
    }

    #[test]
    fn crashed_lock_holder_yields_crash_counterexample() {
        let proto = LockElection::new(2);
        let report = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election)
            .faults(1)
            .step_bound(4)
            .run();
        let ExploreOutcome::Violated(v) = report.outcome else {
            panic!("expected a violation, got {:?}", report.outcome);
        };
        assert_eq!(v.kind, ViolationKind::StepBound, "{v}");
        assert!(
            !v.crashes.is_empty(),
            "crash-first exploration should exhibit the lock-holder crash: {v}"
        );
    }
}
