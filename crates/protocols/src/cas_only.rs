use bso_combinatorics::perm::{factorial, nth_permutation};
use bso_objects::spec::ObjectState;
use bso_objects::{Layout, ObjectId, ObjectInit, Op, Sym, Value};
use bso_sim::{Action, DecideHint, Footprint, Pid, Protocol, SharedMemory, SymmetricProtocol};

/// Leader election among `n ≤ k − 1` processes using a
/// `compare&swap-(k)` register **alone** — no read/write registers.
///
/// This is the regime of Burns, Cruz and Loui \[5\], who prove `k − 1`
/// is exactly the ceiling for a `k`-valued register used by itself (in
/// their write-once read-modify-write model). The construction is the
/// matching algorithm:
///
/// * process `p` owns the non-⊥ symbol `p` and performs a single
///   `c&s(⊥ → p)`;
/// * the operation's response is the register's previous value: ⊥
///   means `p`'s own swap succeeded and `p` is the leader; any other
///   value `v` is the *winner's* symbol, because the first successful
///   swap is the only one that ever changes the register (every
///   attempt expects ⊥, and ⊥ never returns).
///
/// One shared-memory operation per process; the domain affords only
/// `k − 1` distinct owner symbols, which is why the algorithm cannot
/// be stretched further — and why the jump to `(k−1)!` processes in
/// [`crate::LabelElection`] needs the read/write registers.
///
/// # Example
///
/// ```
/// use bso_protocols::CasOnlyElection;
/// use bso_sim::{checker, scheduler::RoundRobin, ProtocolExt, Simulation};
///
/// let proto = CasOnlyElection::new(3, 4).unwrap(); // 3 ≤ 4 − 1
/// let mut sim = Simulation::new(&proto, &proto.pid_inputs());
/// let res = sim.run(&mut RoundRobin::new(), 100).unwrap();
/// checker::check_election(&res).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct CasOnlyElection {
    n: usize,
    k: usize,
}

impl CasOnlyElection {
    /// Configures an election among `n` processes with a
    /// `compare&swap-(k)`.
    ///
    /// # Errors
    ///
    /// Returns the Burns–Cruz–Loui ceiling as an error message when
    /// `n > k − 1` (or `k < 2`): this protocol *cannot* host more
    /// processes because it has no spare symbols.
    pub fn new(n: usize, k: usize) -> Result<CasOnlyElection, String> {
        if k < 2 {
            return Err(format!("compare&swap-(k) needs k >= 2, got {k}"));
        }
        if n == 0 || n > k - 1 {
            return Err(format!(
                "a compare&swap-({k}) alone elects at most {} processes, got {n}",
                k - 1
            ));
        }
        Ok(CasOnlyElection { n, k })
    }

    /// The register's domain size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    const CAS: ObjectId = ObjectId(0);
}

/// Local state: about to swap, or done.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CasOnlyState {
    /// About to perform `c&s(⊥ → own symbol)`.
    Grab {
        /// This process's id (and owned symbol).
        pid: Pid,
    },
    /// Learned the winner.
    Done {
        /// The elected process.
        winner: Pid,
    },
}

impl Protocol for CasOnlyElection {
    type State = CasOnlyState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: self.k });
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> CasOnlyState {
        CasOnlyState::Grab { pid }
    }

    fn next_action(&self, state: &CasOnlyState) -> Action {
        match state {
            CasOnlyState::Grab { pid } => Action::Invoke(Op::cas(
                Self::CAS,
                Sym::BOTTOM.into(),
                Sym::new(*pid as u8).into(),
            )),
            CasOnlyState::Done { winner } => Action::Decide(Value::Pid(*winner)),
        }
    }

    fn on_response(&self, state: &mut CasOnlyState, resp: Value) {
        if let CasOnlyState::Grab { pid } = *state {
            let prev = resp.as_sym().expect("compare&swap returns a symbol");
            let winner = match prev.value() {
                None => pid, // register held ⊥: our swap succeeded
                Some(sym) => sym as Pid,
            };
            *state = CasOnlyState::Done { winner };
        }
    }

    /// The winner is sealed by the first successful swap: once the
    /// register holds a non-⊥ symbol every pending `c&s(⊥ → ·)` is a
    /// read-only failure and every future decision equals that symbol.
    /// Exposing this lets the explorer's partial-order reduction
    /// collapse the `(n−1)!` orderings of the losers.
    fn footprint(&self, state: &CasOnlyState, mem: &SharedMemory) -> Footprint {
        match state {
            CasOnlyState::Grab { .. } => match mem.object(Self::CAS) {
                Some(ObjectState::CasK { val, .. }) if val.value().is_some() => Footprint::empty()
                    .read(Self::CAS)
                    .decide(DecideHint::Exactly(Value::Pid(val.value().unwrap() as Pid))),
                _ => Footprint::empty()
                    .read(Self::CAS)
                    .write(Self::CAS)
                    .decide(DecideHint::Unknown),
            },
            CasOnlyState::Done { winner } => {
                Footprint::empty().decide(DecideHint::Exactly(Value::Pid(*winner)))
            }
        }
    }
}

/// The protocol is fully symmetric: process `p`'s only pid-dependent
/// behaviour is owning symbol `p`, so relabelling the processes by any
/// permutation — provided the owned symbols are relabelled in lockstep
/// — maps runs to runs. The symmetry group is all of `Sₙ`, collapsing
/// the explorer's state space by up to `n!`.
impl SymmetricProtocol for CasOnlyElection {
    fn symmetry_group(&self) -> Vec<Vec<Pid>> {
        // n is at most k−1 ≤ 254, but enumerating n! elements is only
        // worthwhile (or feasible) for small instances; past this the
        // canonicalization would cost more than it saves.
        if self.n > 7 {
            return Vec::new();
        }
        // Rank 0 is the identity, which is implied.
        (1..factorial(self.n))
            .map(|rank| {
                nth_permutation(rank, self.n)
                    .into_iter()
                    .map(usize::from)
                    .collect()
            })
            .collect()
    }

    fn permute_state(&self, perm: &[Pid], state: &CasOnlyState) -> CasOnlyState {
        match state {
            CasOnlyState::Grab { pid } => CasOnlyState::Grab { pid: perm[*pid] },
            CasOnlyState::Done { winner } => CasOnlyState::Done {
                winner: perm[*winner],
            },
        }
    }

    fn permute_value(&self, perm: &[Pid], v: &Value) -> Value {
        match v {
            Value::Pid(p) if *p < perm.len() => Value::Pid(perm[*p]),
            // Symbol `p` is owned by process `p` and moves with it;
            // ⊥ and out-of-range symbols are fixed.
            Value::Sym(s) => match s.value() {
                Some(code) if (code as usize) < perm.len() => {
                    Value::Sym(Sym::new(perm[code as usize] as u8))
                }
                _ => v.clone(),
            },
            other => other.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{checker, scheduler, Explorer, ProtocolExt, Simulation};
    use bso_sim::{ExploreOutcome, TaskSpec};

    #[test]
    fn construction_enforces_burns_ceiling() {
        assert!(CasOnlyElection::new(2, 3).is_ok());
        let err = CasOnlyElection::new(3, 3).unwrap_err();
        assert!(err.contains("at most 2"), "{err}");
        assert!(CasOnlyElection::new(0, 3).is_err());
        assert!(CasOnlyElection::new(1, 1).is_err());
    }

    #[test]
    fn exhaustively_correct_at_the_ceiling() {
        // Every n ≤ k−1 for k = 3..6, all schedules.
        for k in 3..=6 {
            let proto = CasOnlyElection::new(k - 1, k).unwrap();
            let report = Explorer::new(&proto)
                .inputs(&proto.pid_inputs())
                .spec(TaskSpec::Election)
                .run();
            assert!(report.outcome.is_verified(), "k={k}: {:?}", report.outcome);
            // One c&s + one decide per process: exactly 2 steps.
            assert!(report.max_steps_per_proc.iter().all(|&s| s == 2));
        }
    }

    #[test]
    fn parallel_exploration_agrees_with_serial_at_the_ceiling() {
        for k in 3..=6 {
            let proto = CasOnlyElection::new(k - 1, k).unwrap();
            let base = Explorer::new(&proto)
                .inputs(&proto.pid_inputs())
                .spec(TaskSpec::Election);
            let serial = base.clone().run();
            let parallel = base.parallel(true).workers(4).run();
            assert!(serial.outcome.is_verified());
            assert!(
                parallel.outcome.is_verified(),
                "k={k}: {:?}",
                parallel.outcome
            );
            assert_eq!(serial.states, parallel.states, "k={k}");
            assert_eq!(serial.max_steps_per_proc, parallel.max_steps_per_proc);
        }
    }

    #[test]
    fn symmetry_reduction_turns_exhaustion_into_verification() {
        // The k = 6 ceiling instance: 5 processes, 5! = 120 relabellings
        // per orbit. A state budget the plain explorer exhausts is
        // ample once orbits collapse to representatives.
        let proto = CasOnlyElection::new(5, 6).unwrap();
        let inputs = proto.pid_inputs();
        let base = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::Election);
        let plain = base.clone().run();
        let sym = base.clone().symmetric(true).run();
        assert!(plain.outcome.is_verified() && sym.outcome.is_verified());
        assert_eq!(plain.max_steps_per_proc, sym.max_steps_per_proc);
        assert!(
            sym.states * 10 < plain.states,
            "orbits should collapse: {} vs {}",
            sym.states,
            plain.states
        );
        let tight = base.max_states(sym.states);
        assert!(
            matches!(
                tight.clone().run().outcome,
                ExploreOutcome::Exhausted { .. }
            ),
            "the plain explorer must exhaust a {}-state budget",
            sym.states
        );
        assert!(
            tight.symmetric(true).run().outcome.is_verified(),
            "the same budget must suffice under symmetry reduction"
        );
    }

    #[test]
    fn footprint_tracks_the_sealed_winner() {
        let proto = CasOnlyElection::new(3, 4).unwrap();
        let mut sim = Simulation::new(&proto, &proto.pid_inputs());
        // Before anyone swaps: a pending c&s may mutate and the
        // decision is open.
        let st = CasOnlyState::Grab { pid: 1 };
        let fp = proto.footprint(&st, sim.memory());
        assert_eq!(
            fp,
            Footprint::empty()
                .read(CasOnlyElection::CAS)
                .write(CasOnlyElection::CAS)
                .decide(DecideHint::Unknown)
        );
        // Run to completion: the register is sealed, so a (stale)
        // grabber is read-only and its decision pinned to the winner.
        let res = sim.run(&mut scheduler::RoundRobin::new(), 100).unwrap();
        let winner = res.decisions[0].as_ref().unwrap().clone();
        let fp = proto.footprint(&st, sim.memory());
        assert_eq!(
            fp,
            Footprint::empty()
                .read(CasOnlyElection::CAS)
                .decide(DecideHint::Exactly(winner.clone()))
        );
        // A decided process touches nothing and decides exactly once.
        let done = CasOnlyState::Done {
            winner: winner.as_pid().unwrap(),
        };
        let fp = proto.footprint(&done, sim.memory());
        assert_eq!(fp, Footprint::empty().decide(DecideHint::Exactly(winner)));
    }

    #[test]
    fn dpor_prunes_commuting_loser_orders() {
        // Once the winner is sealed, the explorer should not enumerate
        // the orderings of the losers' failed swaps — DPOR collapses
        // the state count from Θ(3ⁿ) to Θ(n²).
        for k in 4..=6 {
            let proto = CasOnlyElection::new(k - 1, k).unwrap();
            let base = Explorer::new(&proto)
                .inputs(&proto.pid_inputs())
                .spec(TaskSpec::Election);
            let plain = base.clone().run();
            let dpor = base.dpor(true).run();
            assert!(plain.outcome.is_verified());
            assert!(dpor.outcome.is_verified(), "k={k}: {:?}", dpor.outcome);
            assert!(
                dpor.states < plain.states,
                "k={k}: dpor {} vs plain {}",
                dpor.states,
                plain.states
            );
            if k >= 6 {
                assert!(
                    dpor.states * 10 < plain.states,
                    "k={k}: expected ≥10x cut, got {} vs {}",
                    dpor.states,
                    plain.states
                );
            }
        }
    }

    #[test]
    fn dpor_verifies_beyond_plain_frontier() {
        // The k = 9 instance: 8 processes, 3⁸-ish reachable states in
        // the plain graph. A budget the plain explorer exhausts is
        // ample once commuting loser orders are pruned.
        let proto = CasOnlyElection::new(8, 9).unwrap();
        let base = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election)
            .max_states(500);
        assert!(
            matches!(base.clone().run().outcome, ExploreOutcome::Exhausted { .. }),
            "the plain explorer must exhaust a 500-state budget"
        );
        let dpor = base.dpor(true).run();
        assert!(
            dpor.outcome.is_verified(),
            "the same budget must suffice under DPOR: {:?}",
            dpor.outcome
        );
    }

    #[test]
    fn solo_runner_elects_itself() {
        let proto = CasOnlyElection::new(3, 4).unwrap();
        let mut sim = Simulation::new(&proto, &proto.pid_inputs());
        // Only process 2 runs (others crash immediately).
        let plan = bso_sim::CrashPlan::none().crash(0, 0).crash(1, 0);
        let mut sim2 = sim.clone().with_crash_plan(plan);
        let res = sim2.run(&mut scheduler::RoundRobin::new(), 100).unwrap();
        assert_eq!(res.decisions[2], Some(Value::Pid(2)));
        // And a full run is still a correct election.
        let res = sim.run(&mut scheduler::RandomSched::new(1), 100).unwrap();
        checker::check_election(&res).unwrap();
    }

    #[test]
    fn register_value_never_changes_after_first_success() {
        let proto = CasOnlyElection::new(4, 5).unwrap();
        for seed in 0..50 {
            let mut sim = Simulation::new(&proto, &proto.pid_inputs());
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 100)
                .unwrap();
            checker::check_election(&res).unwrap();
            let winner = res.decisions[0].as_ref().unwrap().as_pid().unwrap();
            // The register ends holding the winner's symbol.
            let mem = sim.memory();
            match mem.object(CasOnlyElection::CAS).unwrap() {
                bso_objects::spec::ObjectState::CasK { val, .. } => {
                    assert_eq!(val.value(), Some(winner as u8));
                }
                other => panic!("unexpected object {other:?}"),
            }
        }
    }
}
