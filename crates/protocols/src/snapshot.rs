//! The classical wait-free atomic snapshot from single-writer
//! registers (Afek, Attiya, Dolev, Gafni, Merritt, Shavit).
//!
//! The paper's model (and its emulation) freely assumes an atomic
//! `SnapShot` of the shared read/write data structures; the other
//! protocols in this workspace use the simulator's snapshot *object*
//! for tractability. This module supplies the missing justification:
//! snapshot objects are wait-free implementable from plain swmr
//! registers, so nothing in the workspace exceeds read/write power
//! where read/write power is claimed.
//!
//! The construction: register `R[i]` (written only by process `i`)
//! holds a triple *(seq, data, view)*. An **update** scans, then writes
//! the new data with an incremented sequence number and the scan it
//! just took. A **scan** repeatedly collects all registers:
//!
//! * two consecutive collects with identical sequence numbers — a
//!   *clean double collect* — return the collected data directly;
//! * otherwise some register moved; a register that moves **twice**
//!   within one scan belongs to a writer whose entire update (its
//!   embedded scan included) happened inside this scan's interval, so
//!   its embedded *view* can be *borrowed* as this scan's result.
//!
//! With `n` processes, after `n + 1` collects some register has moved
//! twice — the scan is wait-free with `O(n²)` reads.
//!
//! [`SnapshotExerciser`] packages the construction as a checkable
//! protocol: every process performs `rounds` updates (each embedding a
//! scan) and decides its final scan. [`views_are_comparable`] is the
//! linearizability criterion specific to snapshots: all returned views
//! must be totally ordered by componentwise version.

use bso_objects::{Layout, ObjectId, ObjectInit, Op, Value};
use bso_sim::{Action, Pid, Protocol};

/// One decoded register triple.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Entry {
    seq: i64,
    data: Value,
    view: Vec<Value>,
}

fn decode(n: usize, raw: &Value) -> Entry {
    match raw.as_seq() {
        None => Entry {
            seq: 0,
            data: Value::Nil,
            view: vec![Value::Nil; n],
        },
        Some(parts) => Entry {
            seq: parts[0].as_int().expect("seq field"),
            data: parts[1].clone(),
            view: parts[2].as_seq().expect("view field").to_vec(),
        },
    }
}

fn encode(seq: i64, data: Value, view: Vec<Value>) -> Value {
    Value::Seq(vec![Value::Int(seq), data, Value::Seq(view)])
}

/// The in-progress state of one scan.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ScanState {
    prev: Option<Vec<Entry>>,
    partial: Vec<Entry>,
    /// changes[j]: observed sequence-number changes of register j
    /// across consecutive collects within this scan.
    changes: Vec<u32>,
}

impl ScanState {
    fn fresh(n: usize) -> ScanState {
        ScanState {
            prev: None,
            partial: Vec::new(),
            changes: vec![0; n],
        }
    }
}

/// What the current scan's result will be used for.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Purpose {
    /// Embedded in the `r`-th update.
    ForUpdate { r: usize },
    /// The final scan whose view is decided.
    Final,
}

/// Local state of one [`SnapshotExerciser`] process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SnapState {
    pid: Pid,
    my_seq: i64,
    phase: SnapPhase,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum SnapPhase {
    Scanning { purpose: Purpose, scan: ScanState },
    Writing { r: usize, view: Vec<Value> },
    Deciding { view: Vec<Value> },
}

/// Exercises the register-based snapshot: `n` processes, each
/// performing `rounds` updates (writing `(pid, round)` as data) and
/// deciding its final scanned view.
///
/// # Example
///
/// ```
/// use bso_protocols::snapshot::{views_are_comparable, SnapshotExerciser};
/// use bso_sim::{scheduler::RandomSched, Simulation};
/// use bso_objects::Value;
///
/// let proto = SnapshotExerciser::new(3, 2);
/// let mut sim = Simulation::new(&proto, &vec![Value::Nil; 3]);
/// let res = sim.run(&mut RandomSched::new(3), 100_000).unwrap();
/// let views: Vec<Vec<Value>> = res
///     .decisions
///     .iter()
///     .map(|d| d.as_ref().unwrap().as_seq().unwrap().to_vec())
///     .collect();
/// assert!(views_are_comparable(&views));
/// ```
#[derive(Clone, Debug)]
pub struct SnapshotExerciser {
    n: usize,
    rounds: usize,
}

impl SnapshotExerciser {
    /// `n` processes, `rounds` updates each.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, rounds: usize) -> SnapshotExerciser {
        assert!(n > 0, "need at least one process");
        SnapshotExerciser { n, rounds }
    }

    fn after_write(&self, pid: Pid, my_seq: i64, r: usize) -> SnapState {
        let purpose = if r + 1 < self.rounds {
            Purpose::ForUpdate { r: r + 1 }
        } else {
            Purpose::Final
        };
        SnapState {
            pid,
            my_seq,
            phase: SnapPhase::Scanning {
                purpose,
                scan: ScanState::fresh(self.n),
            },
        }
    }
}

impl Protocol for SnapshotExerciser {
    type State = SnapState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        // R[i]: single-writer (by i) multi-reader register.
        l.push_n(ObjectInit::Register(Value::Nil), self.n);
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> SnapState {
        let purpose = if self.rounds == 0 {
            Purpose::Final
        } else {
            Purpose::ForUpdate { r: 0 }
        };
        SnapState {
            pid,
            my_seq: 0,
            phase: SnapPhase::Scanning {
                purpose,
                scan: ScanState::fresh(self.n),
            },
        }
    }

    fn next_action(&self, state: &SnapState) -> Action {
        match &state.phase {
            SnapPhase::Scanning { scan, .. } => {
                Action::Invoke(Op::read(ObjectId(scan.partial.len())))
            }
            SnapPhase::Writing { r, view } => Action::Invoke(Op::write(
                ObjectId(state.pid),
                encode(
                    state.my_seq + 1,
                    Value::pair(Value::Pid(state.pid), Value::Int(*r as i64)),
                    view.clone(),
                ),
            )),
            SnapPhase::Deciding { view } => Action::Decide(Value::Seq(view.clone())),
        }
    }

    fn on_response(&self, state: &mut SnapState, resp: Value) {
        match &mut state.phase {
            SnapPhase::Scanning { purpose, scan } => {
                scan.partial.push(decode(self.n, &resp));
                if scan.partial.len() < self.n {
                    return;
                }
                // A collect is complete.
                let current = std::mem::take(&mut scan.partial);
                let result: Option<Vec<Value>> = match &scan.prev {
                    None => None,
                    Some(prev) => {
                        if prev.iter().zip(&current).all(|(a, b)| a.seq == b.seq) {
                            // Clean double collect.
                            Some(current.iter().map(|e| e.data.clone()).collect())
                        } else {
                            let mut borrowed = None;
                            for j in 0..self.n {
                                if prev[j].seq != current[j].seq {
                                    scan.changes[j] += 1;
                                    if scan.changes[j] >= 2 && borrowed.is_none() {
                                        // j completed a whole update
                                        // within this scan: borrow it.
                                        borrowed = Some(current[j].view.clone());
                                    }
                                }
                            }
                            borrowed
                        }
                    }
                };
                match result {
                    None => scan.prev = Some(current),
                    Some(view) => {
                        state.phase = match purpose {
                            Purpose::ForUpdate { r } => SnapPhase::Writing { r: *r, view },
                            Purpose::Final => SnapPhase::Deciding { view },
                        };
                    }
                }
            }
            SnapPhase::Writing { r, .. } => {
                let r = *r;
                *state = self.after_write(state.pid, state.my_seq + 1, r);
            }
            SnapPhase::Deciding { .. } => {}
        }
    }
}

/// The per-slot version of a snapshot view entry produced by
/// [`SnapshotExerciser`]: `Nil` is −1, data `(pid, r)` is `r`.
fn version(v: &Value) -> i64 {
    match v.as_pair() {
        None => -1,
        Some((_, r)) => r.as_int().expect("round field"),
    }
}

/// The snapshot linearizability criterion: all views must form a chain
/// under componentwise version order (two incomparable views cannot
/// both be atomic snapshots of the same update history).
pub fn views_are_comparable(views: &[Vec<Value>]) -> bool {
    for a in views {
        for b in views {
            let a_le_b = a.iter().zip(b).all(|(x, y)| version(x) <= version(y));
            let b_le_a = a.iter().zip(b).all(|(x, y)| version(x) >= version(y));
            if !a_le_b && !b_le_a {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{scheduler, Explorer, Simulation, TaskSpec};

    fn final_views(res: &bso_sim::RunResult) -> Vec<Vec<Value>> {
        res.decisions
            .iter()
            .flatten()
            .map(|d| d.as_seq().unwrap().to_vec())
            .collect()
    }

    #[test]
    fn exhaustive_two_processes_one_round() {
        // Termination + wait-freedom for every interleaving.
        let proto = SnapshotExerciser::new(2, 1);
        let report = Explorer::new(&proto)
            .inputs(&[Value::Nil, Value::Nil])
            .spec(TaskSpec::None)
            .run();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn views_comparable_under_random_schedules() {
        for (n, rounds) in [(2, 3), (3, 2), (4, 2), (5, 1)] {
            let proto = SnapshotExerciser::new(n, rounds);
            for seed in 0..40 {
                let mut sim = Simulation::new(&proto, &vec![Value::Nil; n]);
                let res = sim
                    .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
                    .unwrap();
                let views = final_views(&res);
                assert!(
                    views_are_comparable(&views),
                    "incomparable views n={n} rounds={rounds} seed={seed}: {views:?}"
                );
                // Every process's final view contains its own last
                // update (only `p` writes slot `p`, and the final scan
                // follows `p`'s last write).
                for (p, view) in views.iter().enumerate() {
                    assert_eq!(
                        version(&view[p]),
                        rounds as i64 - 1,
                        "p{p} missing its own update"
                    );
                }
            }
        }
    }

    #[test]
    fn bursty_schedules_force_borrowed_views() {
        // Burst scheduling makes double collects fail often, exercising
        // the borrow path; comparability must survive.
        let proto = SnapshotExerciser::new(4, 3);
        for seed in 0..30 {
            let mut sim = Simulation::new(&proto, &vec![Value::Nil; 4]);
            let res = sim
                .run(&mut scheduler::BurstSched::new(seed, 7), 1_000_000)
                .unwrap();
            assert!(views_are_comparable(&final_views(&res)));
        }
    }

    #[test]
    fn scan_cost_is_bounded() {
        // Wait-freedom in numbers: each scan costs at most (n+1)·n
        // reads, each process does rounds+1 scans and rounds writes.
        let n = 3;
        let rounds = 2;
        let proto = SnapshotExerciser::new(n, rounds);
        let bound = (rounds + 1) * (n + 1) * n + rounds + 1;
        for seed in 0..20 {
            let mut sim = Simulation::new(&proto, &vec![Value::Nil; n]);
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
                .unwrap();
            bso_sim::checker::check_step_bound(&res, bound).unwrap();
        }
    }

    #[test]
    fn comparability_criterion_rejects_forks() {
        // Sanity of the checker itself: two views that each miss the
        // other's update are incomparable.
        let a = vec![Value::pair(Value::Pid(0), Value::Int(0)), Value::Nil];
        let b = vec![Value::Nil, Value::pair(Value::Pid(1), Value::Int(0))];
        assert!(!views_are_comparable(&[a.clone(), b.clone()]));
        assert!(views_are_comparable(&[a.clone(), a]));
    }

    #[test]
    fn on_hardware_atomics() {
        let proto = SnapshotExerciser::new(4, 2);
        for _ in 0..10 {
            let decisions =
                bso_sim::thread_runner::run_on_threads(&proto, &vec![Value::Nil; 4]).unwrap();
            let views: Vec<Vec<Value>> = decisions
                .iter()
                .map(|d| d.as_seq().unwrap().to_vec())
                .collect();
            assert!(views_are_comparable(&views), "{views:?}");
        }
    }
}
