//! Consensus protocols populating Herlihy's hierarchy.
//!
//! The paper's introduction leans on the classical landscape: with
//! read/write registers alone even two processes cannot reach
//! consensus \[9, 10, 13, 18\]; test&set solves it for exactly two;
//! compare&swap solves it for any number (consensus number ∞) — *even
//! when it can hold only three values*, which is precisely why the
//! paper needs a finer, space-sensitive measure. This module provides
//! the machine-checked witnesses:
//!
//! * [`TasConsensus`] — 2 processes, one test&set bit.
//! * [`FaaConsensus`] — 2 processes, one fetch&add counter.
//! * [`CasConsensus`] — n processes, one *unbounded* compare&swap.
//! * [`CasKConsensus`] — n processes, one `compare&swap-(k)` **plus
//!   registers**, for any `n ≤ (k−1)!` — consensus from
//!   [`crate::LabelElection`]: elect a leader, adopt the leader's
//!   announced input. This is the object the paper studies.
//! * [`StickyConsensus`] — n processes, one sticky (write-once)
//!   register, Plotkin's universal primitive.
//! * [`RwConsensus`] — the natural *doomed* read/write candidate, kept
//!   as a refuter target for `bso-hierarchy`.

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{Action, Pid, Protocol};

use crate::LabelElection;

/// Two-process consensus from one test&set bit plus two announcement
/// registers: announce the input, grab the bit; the winner decides its
/// own input, the loser adopts the winner's announcement (which was
/// written before the winner could grab).
#[derive(Clone, Debug)]
pub struct TasConsensus;

/// Local state of [`TasConsensus`] / [`FaaConsensus`] (they share the
/// announce → grab → read-peer shape).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum GrabState {
    /// About to announce the input in the own register.
    Announce {
        /// Own pid.
        pid: Pid,
        /// Own input.
        input: Value,
    },
    /// About to access the arbitration object.
    Grab {
        /// Own pid.
        pid: Pid,
        /// Own input.
        input: Value,
    },
    /// Lost; about to read the peer's announcement.
    ReadPeer {
        /// Own pid.
        pid: Pid,
    },
    /// About to decide.
    Done {
        /// The agreed value.
        value: Value,
    },
}

fn grab_layout(arbiter: ObjectInit) -> Layout {
    let mut l = Layout::new();
    l.push(arbiter); // o0
    l.push_n(ObjectInit::Register(Value::Nil), 2); // o1, o2
    l
}

fn grab_next(state: &GrabState, arbiter_op: OpKind) -> Action {
    match state {
        GrabState::Announce { pid, input } => {
            Action::Invoke(Op::write(ObjectId(1 + pid), input.clone()))
        }
        GrabState::Grab { .. } => Action::Invoke(Op::new(ObjectId(0), arbiter_op)),
        GrabState::ReadPeer { pid } => Action::Invoke(Op::read(ObjectId(1 + (1 - pid)))),
        GrabState::Done { value } => Action::Decide(value.clone()),
    }
}

fn grab_response(state: &mut GrabState, resp: Value, won: impl Fn(&Value) -> bool) {
    *state = match state.clone() {
        GrabState::Announce { pid, input } => GrabState::Grab { pid, input },
        GrabState::Grab { pid, input } => {
            if won(&resp) {
                GrabState::Done { value: input }
            } else {
                GrabState::ReadPeer { pid }
            }
        }
        GrabState::ReadPeer { .. } => GrabState::Done { value: resp },
        done => done,
    };
}

impl Protocol for TasConsensus {
    type State = GrabState;

    fn processes(&self) -> usize {
        2
    }

    fn layout(&self) -> Layout {
        grab_layout(ObjectInit::TestAndSet)
    }

    fn init(&self, pid: Pid, input: &Value) -> GrabState {
        GrabState::Announce {
            pid,
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &GrabState) -> Action {
        grab_next(state, OpKind::TestAndSet)
    }

    fn on_response(&self, state: &mut GrabState, resp: Value) {
        grab_response(state, resp, |r| *r == Value::Bool(false));
    }
}

/// Two-process consensus from one fetch&add counter (consensus number
/// of fetch&add is 2): the process that receives 0 from `f&a(1)` won.
#[derive(Clone, Debug)]
pub struct FaaConsensus;

impl Protocol for FaaConsensus {
    type State = GrabState;

    fn processes(&self) -> usize {
        2
    }

    fn layout(&self) -> Layout {
        grab_layout(ObjectInit::FetchAdd(0))
    }

    fn init(&self, pid: Pid, input: &Value) -> GrabState {
        GrabState::Announce {
            pid,
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &GrabState) -> Action {
        grab_next(state, OpKind::FetchAdd(1))
    }

    fn on_response(&self, state: &mut GrabState, resp: Value) {
        grab_response(state, resp, |r| *r == Value::Int(0));
    }
}

/// n-process consensus from one *unbounded* compare&swap register:
/// every process performs `c&s(Nil → input)` and decides the register's
/// resulting contents (its own input on success, the winner's
/// otherwise). One operation per process — the textbook witness that
/// compare&swap has consensus number ∞.
#[derive(Clone, Debug)]
pub struct CasConsensus {
    n: usize,
}

impl CasConsensus {
    /// Consensus among `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> CasConsensus {
        assert!(n > 0, "need at least one process");
        CasConsensus { n }
    }
}

/// Local state of single-grab protocols ([`CasConsensus`],
/// [`StickyConsensus`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum OneShotState {
    /// About to perform the single decisive operation.
    Try {
        /// Own input.
        input: Value,
    },
    /// About to decide.
    Done {
        /// The agreed value.
        value: Value,
    },
}

impl Protocol for CasConsensus {
    type State = OneShotState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasReg(Value::Nil));
        l
    }

    fn init(&self, _pid: Pid, input: &Value) -> OneShotState {
        OneShotState::Try {
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &OneShotState) -> Action {
        match state {
            OneShotState::Try { input } => {
                Action::Invoke(Op::cas(ObjectId(0), Value::Nil, input.clone()))
            }
            OneShotState::Done { value } => Action::Decide(value.clone()),
        }
    }

    fn on_response(&self, state: &mut OneShotState, resp: Value) {
        if let OneShotState::Try { input } = state.clone() {
            let value = if resp.is_nil() { input } else { resp };
            *state = OneShotState::Done { value };
        }
    }
}

/// n-process consensus from one sticky (write-once) register
/// (Plotkin \[20\]): the sticky write returns the surviving contents.
#[derive(Clone, Debug)]
pub struct StickyConsensus {
    n: usize,
}

impl StickyConsensus {
    /// Consensus among `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> StickyConsensus {
        assert!(n > 0, "need at least one process");
        StickyConsensus { n }
    }
}

impl Protocol for StickyConsensus {
    type State = OneShotState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Sticky);
        l
    }

    fn init(&self, _pid: Pid, input: &Value) -> OneShotState {
        OneShotState::Try {
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &OneShotState) -> Action {
        match state {
            OneShotState::Try { input } => {
                Action::Invoke(Op::new(ObjectId(0), OpKind::StickyWrite(input.clone())))
            }
            OneShotState::Done { value } => Action::Decide(value.clone()),
        }
    }

    fn on_response(&self, state: &mut OneShotState, resp: Value) {
        if let OneShotState::Try { .. } = state {
            *state = OneShotState::Done { value: resp };
        }
    }
}

/// Multi-valued consensus among `n ≤ (k−1)!` processes from **one
/// `compare&swap-(k)` plus read/write memory** — the object
/// configuration the paper studies.
///
/// Structure: every process announces its input in its slot of an
/// announcement snapshot, then runs [`LabelElection`]; everyone adopts
/// the elected leader's announcement. The announcement is written
/// *before* the election's registration step, so by the time any
/// process learns the election outcome, the leader's input is visible
/// (leader announced → leader registered → final history value written
/// → outcome observable).
#[derive(Clone, Debug)]
pub struct CasKConsensus {
    election: LabelElection,
}

impl CasKConsensus {
    /// Announcement snapshot object (allocated after the election's
    /// two objects).
    const ANNOUNCE: ObjectId = ObjectId(2);

    /// Consensus among `n` processes with a `compare&swap-(k)`.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::LabelElectionError`] (`n > (k−1)!` or
    /// `k < 3`).
    pub fn new(n: usize, k: usize) -> Result<CasKConsensus, crate::LabelElectionError> {
        Ok(CasKConsensus {
            election: LabelElection::new(n, k)?,
        })
    }
}

/// Local state of [`CasKConsensus`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CasKConsensusState {
    /// About to announce the input.
    Announce {
        /// Own input.
        input: Value,
    },
    /// Running the embedded election.
    Electing {
        /// The election sub-state (never a decided state; decisions are
        /// intercepted in `on_response`).
        inner: crate::label_election::LabelState,
    },
    /// Leader known; about to read its announcement.
    Fetch {
        /// The elected leader.
        winner: Pid,
    },
    /// About to decide.
    Done {
        /// The leader's input.
        value: Value,
    },
}

impl Protocol for CasKConsensus {
    type State = CasKConsensusState;

    fn processes(&self) -> usize {
        self.election.processes()
    }

    fn layout(&self) -> Layout {
        let mut l = self.election.layout(); // o0 = cas, o1 = logs
        l.push(ObjectInit::Snapshot {
            slots: self.processes(),
        }); // o2
        l
    }

    fn init(&self, _pid: Pid, input: &Value) -> CasKConsensusState {
        CasKConsensusState::Announce {
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &CasKConsensusState) -> Action {
        match state {
            CasKConsensusState::Announce { input } => Action::Invoke(Op::new(
                Self::ANNOUNCE,
                OpKind::SnapshotUpdate(input.clone()),
            )),
            CasKConsensusState::Electing { inner } => match self.election.next_action(inner) {
                Action::Invoke(op) => Action::Invoke(op),
                Action::Decide(_) => {
                    unreachable!("decided election states are intercepted in on_response")
                }
            },
            CasKConsensusState::Fetch { .. } => {
                Action::Invoke(Op::new(Self::ANNOUNCE, OpKind::SnapshotScan))
            }
            CasKConsensusState::Done { value } => Action::Decide(value.clone()),
        }
    }

    fn on_response(&self, state: &mut CasKConsensusState, resp: Value) {
        *state = match state.clone() {
            CasKConsensusState::Announce { .. } => CasKConsensusState::Electing {
                // The election's initial state is pid-independent.
                inner: self.election.init(0, &Value::Nil),
            },
            CasKConsensusState::Electing { mut inner } => {
                self.election.on_response(&mut inner, resp);
                match self.election.next_action(&inner) {
                    Action::Decide(v) => CasKConsensusState::Fetch {
                        winner: v.as_pid().expect("election decides a pid"),
                    },
                    _ => CasKConsensusState::Electing { inner },
                }
            }
            CasKConsensusState::Fetch { winner } => {
                let slots = resp.as_seq().expect("scan returns a sequence");
                CasKConsensusState::Done {
                    value: slots[winner].clone(),
                }
            }
            done => done,
        };
    }
}

/// Two-process consensus from one pre-loaded FIFO queue — the
/// classical witness that queues have consensus number 2 (Herlihy
/// \[10\]): the queue starts holding a *winner* token followed by a
/// *loser* token; each process announces its input and dequeues; the
/// process that draws the winner token decides its own input, the
/// other adopts the winner's announcement.
#[derive(Clone, Debug)]
pub struct QueueConsensus;

impl QueueConsensus {
    /// The token handed to the first dequeuer.
    pub fn winner_token() -> Value {
        Value::Int(1)
    }

    /// The token handed to the second dequeuer.
    pub fn loser_token() -> Value {
        Value::Int(0)
    }
}

impl Protocol for QueueConsensus {
    type State = GrabState;

    fn processes(&self) -> usize {
        2
    }

    fn layout(&self) -> Layout {
        grab_layout(ObjectInit::Queue(vec![
            Self::winner_token(),
            Self::loser_token(),
        ]))
    }

    fn init(&self, pid: Pid, input: &Value) -> GrabState {
        GrabState::Announce {
            pid,
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &GrabState) -> Action {
        grab_next(state, OpKind::Dequeue)
    }

    fn on_response(&self, state: &mut GrabState, resp: Value) {
        grab_response(state, resp, |r| *r == QueueConsensus::winner_token());
    }
}

/// The natural — doomed — read/write consensus candidate: announce,
/// read the peer, decide the smaller announced input. FLP guarantees a
/// schedule on which it disagrees; `bso-hierarchy` exhibits it.
#[derive(Clone, Debug)]
pub struct RwConsensus;

/// Local state of [`RwConsensus`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum RwState {
    /// About to announce.
    Write {
        /// Own pid.
        pid: Pid,
        /// Own input.
        input: Value,
    },
    /// About to read the peer's register.
    Read {
        /// Own pid.
        pid: Pid,
        /// Own input.
        input: Value,
    },
    /// About to decide.
    Done {
        /// The chosen value.
        value: Value,
    },
}

impl Protocol for RwConsensus {
    type State = RwState;

    fn processes(&self) -> usize {
        2
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push_n(ObjectInit::Register(Value::Nil), 2);
        l
    }

    fn init(&self, pid: Pid, input: &Value) -> RwState {
        RwState::Write {
            pid,
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &RwState) -> Action {
        match state {
            RwState::Write { pid, input } => {
                Action::Invoke(Op::write(ObjectId(*pid), input.clone()))
            }
            RwState::Read { pid, .. } => Action::Invoke(Op::read(ObjectId(1 - *pid))),
            RwState::Done { value } => Action::Decide(value.clone()),
        }
    }

    fn on_response(&self, state: &mut RwState, resp: Value) {
        *state = match state.clone() {
            RwState::Write { pid, input } => RwState::Read { pid, input },
            RwState::Read { input, .. } => {
                let value = match resp {
                    Value::Nil => input,
                    peer => input.min(peer),
                };
                RwState::Done { value }
            }
            done => done,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{refute, Explorer, TaskSpec};

    fn int_inputs(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::Int(10 + i as i64)).collect()
    }

    fn verify_consensus<P: Protocol>(proto: &P, inputs: &[Value])
    where
        P::State: std::hash::Hash + Eq,
    {
        let report = Explorer::new(proto)
            .inputs(inputs)
            .spec(TaskSpec::Consensus(inputs.to_vec()))
            .run();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn tas_consensus_exhaustively_correct() {
        verify_consensus(&TasConsensus, &int_inputs(2));
    }

    #[test]
    fn faa_consensus_exhaustively_correct() {
        verify_consensus(&FaaConsensus, &int_inputs(2));
    }

    #[test]
    fn cas_consensus_exhaustively_correct_n4() {
        verify_consensus(&CasConsensus::new(4), &int_inputs(4));
    }

    #[test]
    fn queue_consensus_exhaustively_correct() {
        verify_consensus(&QueueConsensus, &int_inputs(2));
    }

    #[test]
    fn queue_consensus_on_hardware() {
        let inputs = int_inputs(2);
        for _ in 0..20 {
            let decisions =
                bso_sim::thread_runner::run_on_threads(&QueueConsensus, &inputs).unwrap();
            assert_eq!(decisions[0], decisions[1]);
            assert!(inputs.contains(&decisions[0]));
        }
    }

    #[test]
    fn sticky_consensus_exhaustively_correct_n3() {
        verify_consensus(&StickyConsensus::new(3), &int_inputs(3));
    }

    #[test]
    fn cas_k_consensus_exhaustively_correct_small() {
        // k = 3, n = 2 = (k−1)!: the bounded register + registers reach
        // multi-valued consensus.
        verify_consensus(&CasKConsensus::new(2, 3).unwrap(), &int_inputs(2));
        // k = 4, n = 3 (partial house).
        verify_consensus(&CasKConsensus::new(3, 4).unwrap(), &int_inputs(3));
    }

    #[test]
    fn cas_k_consensus_stress_full_house() {
        use bso_sim::{checker, scheduler, Simulation};
        let proto = CasKConsensus::new(6, 4).unwrap();
        let inputs = int_inputs(6);
        for seed in 0..30 {
            let mut sim = Simulation::new(&proto, &inputs);
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
                .unwrap();
            checker::check_consensus(&res, &inputs).unwrap();
        }
    }

    #[test]
    fn rw_consensus_is_refuted() {
        let verdict = refute::refute_consensus(&RwConsensus, &int_inputs(2), 1_000_000);
        assert!(
            verdict.refutation().is_some(),
            "FLP demands a counterexample"
        );
    }

    #[test]
    fn identical_inputs_always_win() {
        // With equal inputs every protocol must decide that input.
        let inputs = vec![Value::Int(7), Value::Int(7)];
        verify_consensus(&TasConsensus, &inputs);
        verify_consensus(&CasKConsensus::new(2, 3).unwrap(), &inputs);
    }
}
