//! A reusable single-writer-register snapshot *submachine*.
//!
//! [`crate::snapshot::SnapshotExerciser`] demonstrates the classical
//! wait-free snapshot from swmr registers as a standalone protocol;
//! this module packages the same construction as an **embeddable state
//! machine**, so other protocols can run their scans and updates over
//! plain registers instead of the simulator's snapshot object.
//! [`crate::LabelElectionRw`] uses it to make the (k−1)! election
//! fully from-scratch: one `compare&swap-(k)` plus read/write
//! registers and *nothing else*.
//!
//! Register `i` (written only by process `i`) holds a triple
//! *(seq, data, view)*; see the [`crate::snapshot`] module docs for
//! the scan/borrow protocol.

use bso_objects::{ObjectId, Op, Value};

/// The location of an `n`-slot swmr snapshot: registers
/// `base .. base + n` of the layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SnapCell {
    /// First register id.
    pub base: usize,
    /// Number of slots (= processes).
    pub n: usize,
}

/// One decoded register triple.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Entry {
    seq: i64,
    data: Value,
    view: Vec<Value>,
}

/// An in-progress scan.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ScanState {
    prev: Option<Vec<Entry>>,
    partial: Vec<Entry>,
    changes: Vec<u32>,
}

impl SnapCell {
    /// A new snapshot location.
    pub fn new(base: usize, n: usize) -> SnapCell {
        SnapCell { base, n }
    }

    fn decode(&self, raw: &Value) -> Entry {
        match raw.as_seq() {
            None => Entry {
                seq: 0,
                data: Value::Nil,
                view: vec![Value::Nil; self.n],
            },
            Some(parts) => Entry {
                seq: parts[0].as_int().expect("seq field"),
                data: parts[1].clone(),
                view: parts[2].as_seq().expect("view field").to_vec(),
            },
        }
    }

    /// Begins a scan.
    pub fn begin_scan(&self) -> ScanState {
        ScanState {
            prev: None,
            partial: Vec::new(),
            changes: vec![0; self.n],
        }
    }

    /// The next shared operation of an in-progress scan.
    pub fn scan_action(&self, st: &ScanState) -> Op {
        Op::read(ObjectId(self.base + st.partial.len()))
    }

    /// Feeds a response; returns the snapshot view (the data parts)
    /// when the scan completes.
    pub fn scan_response(&self, st: &mut ScanState, resp: Value) -> Option<Vec<Value>> {
        st.partial.push(self.decode(&resp));
        if st.partial.len() < self.n {
            return None;
        }
        let current = std::mem::take(&mut st.partial);
        let result = match &st.prev {
            None => None,
            Some(prev) => {
                if prev.iter().zip(&current).all(|(a, b)| a.seq == b.seq) {
                    Some(current.iter().map(|e| e.data.clone()).collect())
                } else {
                    let mut borrowed = None;
                    for j in 0..self.n {
                        if prev[j].seq != current[j].seq {
                            st.changes[j] += 1;
                            if st.changes[j] >= 2 && borrowed.is_none() {
                                borrowed = Some(current[j].view.clone());
                            }
                        }
                    }
                    borrowed
                }
            }
        };
        if result.is_none() {
            st.prev = Some(current);
        }
        result
    }

    /// The write completing an update: stores `(seq, data, view)` into
    /// the caller's own register. (A full update is: run a scan to get
    /// `view`, then issue this write.)
    pub fn update_op(&self, pid: usize, seq: i64, data: Value, view: Vec<Value>) -> Op {
        Op::write(
            ObjectId(self.base + pid),
            Value::Seq(vec![Value::Int(seq), data, Value::Seq(view)]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_objects::{Layout, ObjectInit};
    use bso_sim::SharedMemory;

    fn drive_scan(cell: &SnapCell, mem: &mut SharedMemory) -> Vec<Value> {
        let mut st = cell.begin_scan();
        loop {
            let op = cell.scan_action(&st);
            let resp = mem.apply(9, &op).unwrap();
            if let Some(view) = cell.scan_response(&mut st, resp) {
                return view;
            }
        }
    }

    #[test]
    fn sequential_scan_sees_updates() {
        let mut layout = Layout::new();
        layout.push_n(ObjectInit::Register(Value::Nil), 3);
        let mut mem = SharedMemory::new(&layout);
        let cell = SnapCell::new(0, 3);
        // Initially all Nil.
        assert_eq!(drive_scan(&cell, &mut mem), vec![Value::Nil; 3]);
        // Process 1 updates with data 7 (its embedded view is a scan).
        let view = drive_scan(&cell, &mut mem);
        mem.apply(1, &cell.update_op(1, 1, Value::Int(7), view))
            .unwrap();
        assert_eq!(
            drive_scan(&cell, &mut mem),
            vec![Value::Nil, Value::Int(7), Value::Nil]
        );
    }

    #[test]
    fn scan_needs_two_equal_collects() {
        let mut layout = Layout::new();
        layout.push_n(ObjectInit::Register(Value::Nil), 2);
        let mut mem = SharedMemory::new(&layout);
        let cell = SnapCell::new(0, 2);
        let mut st = cell.begin_scan();
        // First collect (2 reads) never completes the scan.
        for _ in 0..2 {
            let resp = mem.apply(9, &cell.scan_action(&st)).unwrap();
            assert!(cell.scan_response(&mut st, resp).is_none());
        }
        // Second, equal collect completes it.
        let mut done = None;
        for _ in 0..2 {
            let resp = mem.apply(9, &cell.scan_action(&st)).unwrap();
            done = cell.scan_response(&mut st, resp);
        }
        assert_eq!(done, Some(vec![Value::Nil, Value::Nil]));
    }
}
