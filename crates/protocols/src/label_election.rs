use std::error::Error;
use std::fmt;

use bso_combinatorics::perm::{factorial, nth_permutation, permutation_rank};
use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso_sim::{Action, Pid, Protocol};

/// Wait-free leader election among `n ≤ (k−1)!` processes using **one**
/// `compare&swap-(k)` register plus read/write memory.
///
/// This realizes the lower-bound side of the paper — the Θ(k!)
/// election of the FOCS '93 companion \[1\] — with the paper's own
/// *label* idea as the algorithm (the full FOCS '93 text is not
/// available to us; this construction is our reconstruction, verified
/// mechanically — see DESIGN.md §2).
///
/// # The algorithm
///
/// The compare&swap register is driven so that **every value is
/// written at most once**: its value history is a growing permutation
/// prefix `⊥, v₁, v₂, …` of the domain Σ — exactly the "sequence of
/// first values" the paper calls a *label*. There are `(k−1)!` complete
/// labels, and a Lehmer-code bijection assigns one to each process id;
/// the completed label *names the leader*.
///
/// Shared memory: the `compare&swap-(k)` `C`, plus one atomic-snapshot
/// object whose slot `p` holds `p`'s **log** — `p`'s view of the label
/// so far (`Nil` until `p` registers). The snapshot object stands for
/// plain swmr registers (see [`crate::snapshot`] for the classical
/// wait-free construction from registers that justifies it).
///
/// Each process loops over a three-phase iteration:
///
/// 1. **Read** `C` (the derived `c&s(v→v)` read), obtaining `cur`.
/// 2. **Scan** the snapshot; the *merged log* `L` is the longest slot
///    (all slots are prefixes of the true history — an invariant the
///    write-ahead discipline below maintains).
///    * If `cur ∉ L ∪ {⊥}`: `cur` is the unique *pending* (in-`C`-but-
///      unlogged) value; **append**: write `L·cur` to the own slot and
///      restart. This is the write-ahead/helping step: `C` may advance
///      *only past logged values*, so no process can ever miss a value
///      of the history — the paper's emulators need the same
///      no-missed-first-values property and get it from their history
///      tree.
///    * If `|L| = k−1` (label complete): **decide** the process whose
///      permutation is `L` — it is registered (invariant below).
///    * Otherwise pick the minimal *registered* process `q` whose
///      permutation extends `L` and **attempt** `c&s(last(L) → next)`
///      where `next = perm(q)[|L|]`; restart regardless of the
///      response.
///
/// **Key invariant**: every history prefix has, from the moment it
/// becomes current, at least one registered process whose permutation
/// extends it. (Base: everyone registers first, and every process is
/// aligned with `⊥`. Step: a successful attempt was targeted at such a
/// `q`, and `q` stays aligned with the extended history.) Hence the
/// completed label is the permutation of a *registered* — i.e.
/// participating — process, giving validity; agreement holds because
/// the completed label is unique; and the attempt rule can never run
/// out of candidates.
///
/// **Why values are never reused**: an attempt `c&s(last(L) → b)` can
/// succeed only while `C = last(L)`; since values never repeat, `C`
/// equals the last value of the true history, so success implies the
/// attempter's `L` *was* the whole history and `b` (a fresh value by
/// the alignment rule) extends it.
///
/// **Wait-freedom**: a process's compare&swap attempt fails only if
/// the history advanced since its read or a pending value awaits
/// logging — the first happens at most `k−1` times globally, the
/// second leads the process itself to append on its next iteration
/// (at most `k−1` appends per process). Every process decides within
/// `O(k)` of its own steps; the exhaustive explorer reports the exact
/// bound for small instances.
///
/// # Example
///
/// ```
/// use bso_protocols::LabelElection;
/// use bso_sim::{checker, scheduler::RandomSched, ProtocolExt, Simulation};
///
/// let proto = LabelElection::new(6, 4).unwrap(); // 6 = (4−1)! processes
/// let mut sim = Simulation::new(&proto, &proto.pid_inputs());
/// let res = sim.run(&mut RandomSched::new(42), 100_000).unwrap();
/// checker::check_election(&res).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct LabelElection {
    n: usize,
    k: usize,
    /// perms[p] = the permutation of {0..k−2} with Lehmer rank p.
    perms: Vec<Vec<u8>>,
}

/// Construction errors for [`LabelElection`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LabelElectionError {
    /// `k < 3`: with only {⊥, 0} there is a single label and a single
    /// process — use [`crate::CasOnlyElection`].
    DomainTooSmall {
        /// The offending domain size.
        k: usize,
    },
    /// `n` exceeds the `(k−1)!` labels the register can produce.
    TooManyProcesses {
        /// Requested process count.
        n: usize,
        /// The `(k−1)!` ceiling.
        max: u128,
    },
}

impl fmt::Display for LabelElectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelElectionError::DomainTooSmall { k } => {
                write!(f, "label election needs k >= 3, got {k}")
            }
            LabelElectionError::TooManyProcesses { n, max } => {
                write!(
                    f,
                    "a compare&swap-(k) yields {max} labels, cannot elect {n} processes"
                )
            }
        }
    }
}

impl Error for LabelElectionError {}

impl LabelElection {
    const CAS: ObjectId = ObjectId(0);
    const LOGS: ObjectId = ObjectId(1);

    /// Configures an election among `n` processes with a
    /// `compare&swap-(k)`.
    ///
    /// # Errors
    ///
    /// [`LabelElectionError`] if `k < 3` or `n > (k−1)!`.
    pub fn new(n: usize, k: usize) -> Result<LabelElection, LabelElectionError> {
        if k < 3 {
            return Err(LabelElectionError::DomainTooSmall { k });
        }
        let max = factorial(k - 1);
        if n == 0 || n as u128 > max {
            return Err(LabelElectionError::TooManyProcesses { n, max });
        }
        let perms = (0..n).map(|p| nth_permutation(p as u128, k - 1)).collect();
        Ok(LabelElection { n, k, perms })
    }

    /// The register's domain size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The permutation (label) assigned to process `pid`.
    pub fn label_of(&self, pid: Pid) -> &[u8] {
        &self.perms[pid]
    }

    /// The process a completed label elects.
    ///
    /// # Panics
    ///
    /// Panics if `label` is not one of this instance's assigned labels
    /// (cannot happen in a run — the key invariant guarantees the
    /// final label belongs to a registered process).
    pub fn owner_of(&self, label: &[u8]) -> Pid {
        let rank = permutation_rank(label);
        assert!(
            (rank as usize) < self.n,
            "label {label:?} has rank {rank}, but only {} processes exist",
            self.n
        );
        rank as Pid
    }

    /// Decodes a snapshot view into `(registered, merged log)`.
    fn digest_view(&self, view: &Value) -> (Vec<Pid>, Vec<u8>) {
        let slots = view.as_seq().expect("snapshot scan returns a sequence");
        let mut registered = Vec::new();
        let mut merged: &[Value] = &[];
        for (pid, slot) in slots.iter().enumerate() {
            if let Some(log) = slot.as_seq() {
                registered.push(pid);
                debug_assert!(
                    log.iter().zip(merged.iter()).all(|(a, b)| a == b),
                    "slot logs are not mutual prefixes: {slots:?}"
                );
                if log.len() > merged.len() {
                    merged = log;
                }
            }
        }
        let merged: Vec<u8> = merged
            .iter()
            .map(|v| {
                v.as_sym()
                    .and_then(Sym::value)
                    .expect("logs hold non-⊥ symbols")
            })
            .collect();
        (registered, merged)
    }

    fn encode_log(log: &[u8]) -> Value {
        Value::Seq(log.iter().map(|&v| Value::Sym(Sym::new(v))).collect())
    }

    /// The register value after history `log` (⊥ for the empty log).
    fn last_sym(log: &[u8]) -> Sym {
        match log.last() {
            None => Sym::BOTTOM,
            Some(&v) => Sym::new(v),
        }
    }
}

/// Local state of one [`LabelElection`] process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LabelState {
    /// About to register (write the empty log into the own slot).
    Register,
    /// About to read the compare&swap register.
    ReadCas,
    /// Read `cur`; about to scan the snapshot object.
    Scan {
        /// The value just read from the register.
        cur: Sym,
    },
    /// About to write-ahead the pending value into the own slot.
    Append {
        /// The extended log to publish.
        log: Vec<u8>,
    },
    /// About to attempt `c&s(expect → next)`.
    Attempt {
        /// The last logged value.
        expect: Sym,
        /// The fresh value to install.
        next: Sym,
    },
    /// Label complete: about to decide.
    Done {
        /// The elected process.
        winner: Pid,
    },
}

impl Protocol for LabelElection {
    type State = LabelState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: self.k });
        l.push(ObjectInit::Snapshot { slots: self.n });
        l
    }

    fn init(&self, _pid: Pid, _input: &Value) -> LabelState {
        LabelState::Register
    }

    fn next_action(&self, state: &LabelState) -> Action {
        match state {
            LabelState::Register => Action::Invoke(Op::new(
                Self::LOGS,
                OpKind::SnapshotUpdate(Value::Seq(Vec::new())),
            )),
            LabelState::ReadCas => Action::Invoke(Op::read(Self::CAS)),
            LabelState::Scan { .. } => Action::Invoke(Op::new(Self::LOGS, OpKind::SnapshotScan)),
            LabelState::Append { log } => Action::Invoke(Op::new(
                Self::LOGS,
                OpKind::SnapshotUpdate(Self::encode_log(log)),
            )),
            LabelState::Attempt { expect, next } => {
                Action::Invoke(Op::cas(Self::CAS, Value::Sym(*expect), Value::Sym(*next)))
            }
            LabelState::Done { winner } => Action::Decide(Value::Pid(*winner)),
        }
    }

    fn on_response(&self, state: &mut LabelState, resp: Value) {
        *state = match std::mem::replace(state, LabelState::ReadCas) {
            LabelState::Register => LabelState::ReadCas,
            LabelState::ReadCas => LabelState::Scan {
                cur: resp.as_sym().expect("compare&swap read returns a symbol"),
            },
            LabelState::Scan { cur } => {
                let (registered, merged) = self.digest_view(&resp);
                match cur.value() {
                    // A pending value: write-ahead before anything else.
                    Some(v) if !merged.contains(&v) => {
                        let mut log = merged;
                        log.push(v);
                        LabelState::Append { log }
                    }
                    _ if merged.len() == self.k - 1 => LabelState::Done {
                        winner: self.owner_of(&merged),
                    },
                    _ => {
                        let j = merged.len();
                        let q = registered
                            .iter()
                            .copied()
                            .find(|&q| self.perms[q][..j] == merged[..])
                            .unwrap_or_else(|| {
                                panic!(
                                    "invariant broken: no registered process aligned \
                                     with {merged:?} among {registered:?}"
                                )
                            });
                        LabelState::Attempt {
                            expect: Self::last_sym(&merged),
                            next: Sym::new(self.perms[q][j]),
                        }
                    }
                }
            }
            // After an append or an attempt (successful or not), start a
            // fresh iteration.
            LabelState::Append { .. } => LabelState::ReadCas,
            LabelState::Attempt { .. } => LabelState::ReadCas,
            done @ LabelState::Done { .. } => done,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::TaskSpec;
    use bso_sim::{checker, scheduler, CrashPlan, Explorer, ProtocolExt, Simulation};

    #[test]
    fn construction_enforces_label_ceiling() {
        assert!(LabelElection::new(2, 3).is_ok()); // (3−1)! = 2
        assert_eq!(
            LabelElection::new(3, 3).unwrap_err(),
            LabelElectionError::TooManyProcesses { n: 3, max: 2 }
        );
        assert!(LabelElection::new(6, 4).is_ok()); // (4−1)! = 6
        assert!(LabelElection::new(7, 4).is_err());
        assert_eq!(
            LabelElection::new(2, 2).unwrap_err(),
            LabelElectionError::DomainTooSmall { k: 2 }
        );
        assert!(LabelElection::new(0, 4).is_err());
    }

    #[test]
    fn labels_are_distinct_permutations() {
        let proto = LabelElection::new(6, 4).unwrap();
        let mut labels: Vec<Vec<u8>> = (0..6).map(|p| proto.label_of(p).to_vec()).collect();
        for l in &labels {
            assert_eq!(
                proto.owner_of(l),
                labels.iter().position(|x| x == l).unwrap()
            );
        }
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn exhaustive_full_house_k3() {
        // (3−1)! = 2 processes, k = 3: every interleaving.
        let proto = LabelElection::new(2, 3).unwrap();
        let report = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election)
            .run();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        // Wait-freedom witness: the explorer certifies a finite bound.
        assert!(report.max_steps_per_proc.iter().all(|&s| s <= 12 * 3));
    }

    #[test]
    fn exhaustive_partial_house_k4() {
        // 3 of the possible 6 processes, k = 4: every interleaving.
        let proto = LabelElection::new(3, 4).unwrap();
        let report = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election)
            .run();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
        assert!(report.max_steps_per_proc.iter().all(|&s| s <= 12 * 4));
    }

    #[test]
    fn random_stress_full_house_k4_and_k5() {
        for (n, k) in [(6, 4), (24, 5)] {
            let proto = LabelElection::new(n, k).unwrap();
            for seed in 0..40 {
                let mut sim = Simulation::new(&proto, &proto.pid_inputs());
                let res = sim
                    .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
                    .unwrap();
                checker::check_election(&res).unwrap();
                checker::check_step_bound(&res, 12 * k).unwrap();
            }
        }
    }

    #[test]
    fn bursty_schedules_and_crashes() {
        let proto = LabelElection::new(6, 4).unwrap();
        for seed in 0..30 {
            // Crash two processes at seed-dependent points.
            let plan = CrashPlan::none()
                .crash((seed as usize) % 6, (seed as usize) % 7)
                .crash((seed as usize + 3) % 6, (seed as usize) % 3);
            let mut sim = Simulation::new(&proto, &proto.pid_inputs()).with_crash_plan(plan);
            let res = sim
                .run(&mut scheduler::BurstSched::new(seed, 5), 1_000_000)
                .unwrap();
            checker::check_election(&res).unwrap();
        }
    }

    #[test]
    fn solo_runner_elects_itself() {
        let proto = LabelElection::new(6, 4).unwrap();
        for solo in 0..6 {
            let plan = (0..6)
                .filter(|&p| p != solo)
                .fold(CrashPlan::none(), |pl, p| pl.crash(p, 0));
            let mut sim = Simulation::new(&proto, &proto.pid_inputs()).with_crash_plan(plan);
            let res = sim.run(&mut scheduler::RoundRobin::new(), 10_000).unwrap();
            assert_eq!(res.decisions[solo], Some(Value::Pid(solo)));
        }
    }

    #[test]
    fn history_is_a_permutation_prefix_in_every_run() {
        // Audit the trace: values written into the cas never repeat.
        let proto = LabelElection::new(6, 4).unwrap();
        for seed in 0..30 {
            let mut sim = Simulation::new(&proto, &proto.pid_inputs());
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
                .unwrap();
            let mut history = vec![Sym::BOTTOM];
            for e in res.trace.events() {
                if let bso_sim::EventKind::Applied { op, resp } = &e.kind {
                    if let bso_objects::OpKind::Cas { expect, new } = &op.kind {
                        if resp == expect {
                            // successful c&s
                            let new = new.as_sym().unwrap();
                            assert!(!history.contains(&new), "value {new} reused in seed {seed}");
                            assert_eq!(
                                Value::Sym(*history.last().unwrap()),
                                *expect,
                                "history out of order"
                            );
                            history.push(new);
                        }
                    }
                }
            }
            assert_eq!(history.len(), proto.k(), "history incomplete");
            // The winner owns the completed label.
            let label: Vec<u8> = history[1..].iter().map(|s| s.value().unwrap()).collect();
            let winner = res.decisions[0].as_ref().unwrap().as_pid().unwrap();
            assert_eq!(proto.owner_of(&label), winner);
        }
    }

    #[test]
    fn on_hardware_atomics() {
        let proto = LabelElection::new(6, 4).unwrap();
        for _ in 0..20 {
            let decisions =
                bso_sim::thread_runner::run_on_threads(&proto, &proto.pid_inputs()).unwrap();
            let w = decisions[0].as_pid().unwrap();
            assert!(decisions.iter().all(|d| d.as_pid().unwrap() == w));
            assert!(w < 6);
        }
    }
}
