//! `l`-set consensus protocols.
//!
//! The paper's reduction (Theorem 1) turns a hypothetical big leader
//! election into a *(k−1)!-set consensus* algorithm for `(k−1)!+1`
//! processes out of read/write registers — impossible by
//! Borowsky–Gafni / Herlihy–Shavit / Saks–Zaharoglou. The protocols
//! here are the *possible* side of that landscape, used as baselines
//! and test fixtures:
//!
//! * [`PartitionSetConsensus`] — the classical possibility result:
//!   partition `n` processes into `l` groups and give each group its
//!   own consensus object; at most `l` values survive. With strong
//!   objects this is trivially wait-free — which is exactly why the
//!   *read/write-only* case is the interesting one.
//! * [`OwnInputSetConsensus`] — every process decides its own input:
//!   `n`-set consensus from nothing at all, the vacuous baseline.

use bso_objects::{Layout, ObjectId, ObjectInit, Op, Value};
use bso_sim::{Action, Pid, Protocol};

/// `l`-set consensus for `n` processes: group `p % l` shares one
/// unbounded compare&swap register; each process performs
/// `c&s(Nil → input)` on its group's register and decides the
/// register's resulting contents.
#[derive(Clone, Debug)]
pub struct PartitionSetConsensus {
    n: usize,
    l: usize,
}

impl PartitionSetConsensus {
    /// `l`-set consensus among `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `l == 0` or `l > n`.
    pub fn new(n: usize, l: usize) -> PartitionSetConsensus {
        assert!(l >= 1 && l <= n, "need 1 <= l <= n, got l={l}, n={n}");
        PartitionSetConsensus { n, l }
    }

    /// The group of process `p`.
    pub fn group_of(&self, p: Pid) -> usize {
        p % self.l
    }

    /// The set-consensus parameter `l`.
    pub fn l(&self) -> usize {
        self.l
    }
}

/// Local state of [`PartitionSetConsensus`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PartitionState {
    /// About to `c&s(Nil → input)` on the group register.
    Try {
        /// Own group.
        group: usize,
        /// Own input.
        input: Value,
    },
    /// About to decide.
    Done {
        /// The group's agreed value.
        value: Value,
    },
}

impl Protocol for PartitionSetConsensus {
    type State = PartitionState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push_n(ObjectInit::CasReg(Value::Nil), self.l);
        l
    }

    fn init(&self, pid: Pid, input: &Value) -> PartitionState {
        PartitionState::Try {
            group: self.group_of(pid),
            input: input.clone(),
        }
    }

    fn next_action(&self, state: &PartitionState) -> Action {
        match state {
            PartitionState::Try { group, input } => {
                Action::Invoke(Op::cas(ObjectId(*group), Value::Nil, input.clone()))
            }
            PartitionState::Done { value } => Action::Decide(value.clone()),
        }
    }

    fn on_response(&self, state: &mut PartitionState, resp: Value) {
        if let PartitionState::Try { input, .. } = state.clone() {
            let value = if resp.is_nil() { input } else { resp };
            *state = PartitionState::Done { value };
        }
    }
}

/// The vacuous `n`-set consensus: decide your own input without
/// communicating.
#[derive(Clone, Debug)]
pub struct OwnInputSetConsensus {
    n: usize,
}

impl OwnInputSetConsensus {
    /// `n`-set consensus among `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> OwnInputSetConsensus {
        assert!(n > 0, "need at least one process");
        OwnInputSetConsensus { n }
    }
}

impl Protocol for OwnInputSetConsensus {
    type State = Value;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        Layout::new()
    }

    fn init(&self, _pid: Pid, input: &Value) -> Value {
        input.clone()
    }

    fn next_action(&self, state: &Value) -> Action {
        Action::Decide(state.clone())
    }

    fn on_response(&self, _state: &mut Value, _resp: Value) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{checker, scheduler, Explorer, Simulation, TaskSpec};

    fn int_inputs(n: usize) -> Vec<Value> {
        (0..n).map(|i| Value::Int(i as i64)).collect()
    }

    #[test]
    fn partition_meets_its_bound_exhaustively() {
        let inputs = int_inputs(4);
        for l in 1..=3 {
            let proto = PartitionSetConsensus::new(4, l);
            let report = Explorer::new(&proto)
                .inputs(&inputs)
                .spec(TaskSpec::SetConsensus(inputs.clone(), l))
                .run();
            assert!(report.outcome.is_verified(), "l={l}: {:?}", report.outcome);
        }
    }

    #[test]
    fn partition_actually_uses_l_values() {
        // Round-robin gives each group a distinct winner: exactly l
        // values decided, witnessing that the bound is tight.
        let proto = PartitionSetConsensus::new(6, 3);
        let inputs = int_inputs(6);
        let mut sim = Simulation::new(&proto, &inputs);
        let res = sim.run(&mut scheduler::RoundRobin::new(), 100).unwrap();
        checker::check_set_consensus(&res, &inputs, 3).unwrap();
        assert_eq!(res.decision_set().len(), 3);
        assert!(checker::check_set_consensus(&res, &inputs, 2).is_err());
    }

    #[test]
    fn own_input_is_n_set_only() {
        let proto = OwnInputSetConsensus::new(3);
        let inputs = int_inputs(3);
        let report = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::SetConsensus(inputs.clone(), 3))
            .run();
        assert!(report.outcome.is_verified());
        let report = Explorer::new(&proto)
            .inputs(&inputs)
            .spec(TaskSpec::SetConsensus(inputs.clone(), 2))
            .run();
        assert!(report.outcome.violation().is_some());
    }

    #[test]
    fn group_assignment() {
        let proto = PartitionSetConsensus::new(5, 2);
        assert_eq!(proto.l(), 2);
        assert_eq!(
            (0..5).map(|p| proto.group_of(p)).collect::<Vec<_>>(),
            vec![0, 1, 0, 1, 0]
        );
    }
}
