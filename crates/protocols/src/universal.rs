//! Herlihy's universal construction: any sequentially specified object,
//! wait-free, from consensus objects plus registers.
//!
//! The paper's framing (§1) rests on universality: "various shared
//! synchronization objects, such as compare&swap …, are universal
//! \[10, 20\]. That is, any sequentially specified task can be solved
//! in a concurrent system that supports these objects and a large
//! enough number of shared read/write registers." This module makes
//! that premise executable.
//!
//! The construction is the classical consensus-log: the implemented
//! object's state is determined by an agreed, growing **log of
//! operations**; slot `i` of the log is one consensus object (here an
//! unbounded compare&swap used once: `c&s(Nil → entry)`); processes
//! *announce* their pending operations in single-writer slots of a
//! snapshot object, and every proposer at log position `i` proposes
//! the pending announcement of process `i mod n` if there is one —
//! Herlihy's helping rule, which makes the construction wait-free:
//! once announced, an operation is agreed within at most `2n` further
//! log slots, no matter who is scheduled.
//!
//! Responses are computed deterministically by replaying the agreed
//! log prefix against the sequential specification
//! ([`bso_objects::spec::ObjectState`]) — so linearizability holds *by
//! construction*, with the log order as the linearization. The same
//! operation may be agreed into two slots (a helper and the owner
//! racing for different slots); replay deduplicates by `(process,
//! index)`, as in the standard construction.
//!
//! [`UniversalExerciser`] packages it as a checkable protocol: each
//! process applies a script of operations to the universal object and
//! decides the sequence of responses; [`check_universal`] replays the
//! final agreed log and confirms every response.

use bso_objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Value};
use bso_sim::{Action, Pid, Protocol};

/// Encodes an [`OpKind`] as a [`Value`] (for log entries).
fn encode_opkind(kind: &OpKind) -> Value {
    match kind {
        OpKind::Read => Value::Seq(vec![Value::Int(0)]),
        OpKind::Write(v) => Value::Seq(vec![Value::Int(1), v.clone()]),
        OpKind::Cas { expect, new } => Value::Seq(vec![Value::Int(2), expect.clone(), new.clone()]),
        OpKind::TestAndSet => Value::Seq(vec![Value::Int(3)]),
        OpKind::Reset => Value::Seq(vec![Value::Int(4)]),
        OpKind::FetchAdd(d) => Value::Seq(vec![Value::Int(5), Value::Int(*d)]),
        OpKind::Swap(v) => Value::Seq(vec![Value::Int(6), v.clone()]),
        OpKind::SnapshotScan => Value::Seq(vec![Value::Int(7)]),
        OpKind::SnapshotUpdate(v) => Value::Seq(vec![Value::Int(8), v.clone()]),
        OpKind::StickyWrite(v) => Value::Seq(vec![Value::Int(9), v.clone()]),
        OpKind::Rmw { func } => Value::Seq(vec![Value::Int(10), Value::Int(*func as i64)]),
        OpKind::Enqueue(v) => Value::Seq(vec![Value::Int(11), v.clone()]),
        OpKind::Dequeue => Value::Seq(vec![Value::Int(12)]),
    }
}

/// Decodes an [`OpKind`] encoded by [`encode_opkind`].
///
/// # Panics
///
/// Panics on malformed encodings.
fn decode_opkind(v: &Value) -> OpKind {
    let parts = v.as_seq().expect("opkind encoding");
    match parts[0].as_int().expect("opkind tag") {
        0 => OpKind::Read,
        1 => OpKind::Write(parts[1].clone()),
        2 => OpKind::Cas {
            expect: parts[1].clone(),
            new: parts[2].clone(),
        },
        3 => OpKind::TestAndSet,
        4 => OpKind::Reset,
        5 => OpKind::FetchAdd(parts[1].as_int().expect("delta")),
        6 => OpKind::Swap(parts[1].clone()),
        7 => OpKind::SnapshotScan,
        8 => OpKind::SnapshotUpdate(parts[1].clone()),
        9 => OpKind::StickyWrite(parts[1].clone()),
        10 => OpKind::Rmw {
            func: parts[1].as_int().expect("func") as usize,
        },
        11 => OpKind::Enqueue(parts[1].clone()),
        12 => OpKind::Dequeue,
        t => panic!("unknown opkind tag {t}"),
    }
}

/// One agreed log entry: operation `idx` of process `pid`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LogEntry {
    /// The operation's owner.
    pub pid: Pid,
    /// The owner's operation index.
    pub idx: usize,
    /// The operation itself.
    pub kind: OpKind,
}

impl LogEntry {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            Value::Pid(self.pid),
            Value::Int(self.idx as i64),
            encode_opkind(&self.kind),
        ])
    }

    /// Decodes an agreed entry.
    ///
    /// # Panics
    ///
    /// Panics on malformed encodings.
    pub fn from_value(v: &Value) -> LogEntry {
        let parts = v.as_seq().expect("entry encoding");
        LogEntry {
            pid: parts[0].as_pid().expect("pid"),
            idx: parts[1].as_int().expect("idx") as usize,
            kind: decode_opkind(&parts[2]),
        }
    }
}

/// A wait-free universal implementation of one sequentially specified
/// object, exercised by per-process operation scripts.
#[derive(Clone, Debug)]
pub struct UniversalExerciser {
    n: usize,
    inner: ObjectInit,
    scripts: Vec<Vec<OpKind>>,
    slots: usize,
}

impl UniversalExerciser {
    const ANNOUNCE: ObjectId = ObjectId(0);

    /// A universal object with the given sequential type, driven by
    /// one operation script per process.
    ///
    /// # Panics
    ///
    /// Panics if `scripts` is empty.
    pub fn new(inner: ObjectInit, scripts: Vec<Vec<OpKind>>) -> UniversalExerciser {
        let n = scripts.len();
        assert!(n > 0, "need at least one process");
        let total: usize = scripts.iter().map(Vec::len).sum();
        // Each agreed slot consumes one proposal; duplicates (helper
        // and owner agreeing the same op into different slots) are
        // bounded by one per (process, pending op) pair per slot
        // round; (n + 1)·total slots are safely enough for the test
        // workloads and asserted against exhaustion at run time.
        let slots = (n + 1) * total.max(1);
        UniversalExerciser {
            n,
            inner,
            scripts,
            slots,
        }
    }

    /// The sequential type being implemented.
    pub fn inner(&self) -> &ObjectInit {
        &self.inner
    }

    /// The per-process scripts.
    pub fn scripts(&self) -> &[Vec<OpKind>] {
        &self.scripts
    }

    fn slot_obj(&self, i: usize) -> ObjectId {
        assert!(
            i < self.slots,
            "consensus log exhausted — raise the slot bound"
        );
        ObjectId(1 + i)
    }
}

/// Local state of one [`UniversalExerciser`] process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct UniState {
    pid: Pid,
    /// Next own operation index to get agreed.
    idx: usize,
    /// Responses to own operations, in order.
    responses: Vec<Value>,
    /// Log position up to which the replica has been replayed.
    log_pos: usize,
    /// The local replica of the implemented object.
    replica: bso_objects::spec::ObjectState,
    /// `(pid, idx)` pairs already applied (duplicate suppression).
    seen: Vec<(Pid, usize)>,
    /// The own operation index currently published in the
    /// announcement slot (proposals require `announced == Some(idx)`).
    announced: Option<usize>,
    phase: UniPhase,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum UniPhase {
    /// Publish the pending own operation.
    Announce,
    /// Read the consensus slot at `log_pos`.
    ReadSlot,
    /// Scan announcements to pick a proposal (helping rule).
    Scan,
    /// Propose at `log_pos`.
    Propose(LogEntry),
    /// All own operations done.
    Finished,
}

impl Protocol for UniversalExerciser {
    type State = UniState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::Snapshot { slots: self.n });
        l.push_n(ObjectInit::CasReg(Value::Nil), self.slots);
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> UniState {
        let phase = if self.scripts[pid].is_empty() {
            UniPhase::Finished
        } else {
            UniPhase::Announce
        };
        UniState {
            pid,
            idx: 0,
            responses: Vec::new(),
            log_pos: 0,
            replica: bso_objects::spec::ObjectState::from_init(&self.inner),
            seen: Vec::new(),
            announced: None,
            phase,
        }
    }

    fn next_action(&self, st: &UniState) -> Action {
        match &st.phase {
            UniPhase::Announce => {
                let entry = LogEntry {
                    pid: st.pid,
                    idx: st.idx,
                    kind: self.scripts[st.pid][st.idx].clone(),
                };
                Action::Invoke(Op::new(
                    Self::ANNOUNCE,
                    OpKind::SnapshotUpdate(entry.to_value()),
                ))
            }
            UniPhase::ReadSlot => Action::Invoke(Op::read(self.slot_obj(st.log_pos))),
            UniPhase::Scan => Action::Invoke(Op::new(Self::ANNOUNCE, OpKind::SnapshotScan)),
            UniPhase::Propose(entry) => Action::Invoke(Op::cas(
                self.slot_obj(st.log_pos),
                Value::Nil,
                entry.to_value(),
            )),
            UniPhase::Finished => Action::Decide(Value::Seq(st.responses.clone())),
        }
    }

    fn on_response(&self, st: &mut UniState, resp: Value) {
        match st.phase.clone() {
            UniPhase::Announce => {
                st.announced = Some(st.idx);
                st.phase = UniPhase::ReadSlot;
            }
            UniPhase::ReadSlot => {
                if resp.is_nil() {
                    st.phase = UniPhase::Scan;
                } else {
                    self.consume(st, &resp);
                }
            }
            UniPhase::Scan => {
                // Helping rule: the pending announcement of process
                // `log_pos mod n` has priority; otherwise propose the
                // own pending operation.
                let slots = resp.as_seq().expect("announcement scan");
                let priority = st.log_pos % self.n;
                let mut proposal: Option<LogEntry> = None;
                if let Some(v) = slots.get(priority) {
                    if !v.is_nil() {
                        let e = LogEntry::from_value(v);
                        if !st.seen.contains(&(e.pid, e.idx)) {
                            proposal = Some(e);
                        }
                    }
                }
                let proposal = proposal.unwrap_or_else(|| LogEntry {
                    pid: st.pid,
                    idx: st.idx,
                    kind: self.scripts[st.pid][st.idx].clone(),
                });
                st.phase = UniPhase::Propose(proposal);
            }
            UniPhase::Propose(mine) => {
                // The compare&swap response is the previous contents:
                // Nil means our proposal was agreed; anything else is
                // the agreed rival entry.
                let agreed = if resp.is_nil() { mine.to_value() } else { resp };
                self.consume(st, &agreed);
            }
            UniPhase::Finished => {}
        }
    }
}

impl UniversalExerciser {
    /// Applies the agreed entry at `st.log_pos` to the replica and
    /// advances the state machine.
    fn consume(&self, st: &mut UniState, agreed: &Value) {
        let entry = LogEntry::from_value(agreed);
        let duplicate = st.seen.contains(&(entry.pid, entry.idx));
        if !duplicate {
            let r = st
                .replica
                .apply(entry.pid, &entry.kind)
                .expect("scripted operations must fit the inner object");
            st.seen.push((entry.pid, entry.idx));
            if entry.pid == st.pid && entry.idx == st.idx {
                st.responses.push(r);
                st.idx += 1;
            }
        }
        st.log_pos += 1;
        st.phase = if st.idx >= self.scripts[st.pid].len() {
            UniPhase::Finished
        } else if st.announced == Some(st.idx) {
            // The pending own op is already published: keep chasing the
            // log.
            UniPhase::ReadSlot
        } else {
            // The pending own op changed (or was never announced):
            // publish it before proposing anywhere — the helping rule
            // depends on announcements being current.
            UniPhase::Announce
        };
    }
}

/// Validates a finished run: reconstructs the agreed log from the
/// final memory, replays it, and checks every process's responses.
///
/// # Panics
///
/// Panics (with a descriptive message) if any response diverges from
/// the replay — the universal object would not be linearizable.
pub fn check_universal(
    proto: &UniversalExerciser,
    sim: &bso_sim::Simulation<'_, UniversalExerciser>,
) {
    // 1. Reconstruct the agreed log.
    let mut log = Vec::new();
    for i in 0..proto.slots {
        match sim.memory().object(ObjectId(1 + i)) {
            Some(bso_objects::spec::ObjectState::CasReg { val }) if !val.is_nil() => {
                log.push(LogEntry::from_value(val));
            }
            _ => log.push(LogEntry {
                pid: usize::MAX,
                idx: 0,
                kind: OpKind::Read,
            }),
        }
    }
    // Trim trailing unagreed slots; interior gaps would be a bug.
    while log.last().is_some_and(|e| e.pid == usize::MAX) {
        log.pop();
    }
    assert!(
        log.iter().all(|e| e.pid != usize::MAX),
        "agreed log has an interior gap"
    );
    // 2. Replay with deduplication.
    let mut replica = bso_objects::spec::ObjectState::from_init(&proto.inner);
    let mut seen = Vec::new();
    let mut responses: Vec<Vec<Value>> = vec![Vec::new(); proto.n];
    for e in &log {
        if seen.contains(&(e.pid, e.idx)) {
            continue;
        }
        seen.push((e.pid, e.idx));
        let r = replica.apply(e.pid, &e.kind).expect("replay must be legal");
        responses[e.pid].push(r);
    }
    // 3. Compare with the decided response sequences.
    for (pid, status) in sim.statuses().iter().enumerate() {
        if let bso_sim::ProcStatus::Decided(v) = status {
            let got = v.as_seq().expect("decision is the response sequence");
            assert_eq!(
                got,
                &responses[pid][..got.len()],
                "p{pid}: responses diverge from the agreed-log replay"
            );
            assert_eq!(
                got.len(),
                proto.scripts[pid].len(),
                "p{pid}: missing responses"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{scheduler, Explorer, Simulation, TaskSpec};

    fn faa_scripts(n: usize, each: usize) -> Vec<Vec<OpKind>> {
        (0..n).map(|_| vec![OpKind::FetchAdd(1); each]).collect()
    }

    #[test]
    fn exhaustive_universal_counter_two_processes() {
        let proto = UniversalExerciser::new(ObjectInit::FetchAdd(0), faa_scripts(2, 1));
        let report = Explorer::new(&proto)
            .inputs(&[Value::Nil, Value::Nil])
            .spec(TaskSpec::None)
            .run();
        assert!(report.outcome.is_verified(), "{:?}", report.outcome);
    }

    #[test]
    fn universal_counter_responses_are_ranks() {
        // n processes each increment once: the responses across all
        // processes must be a permutation of 0..n (the consensus log
        // totally orders the increments).
        for seed in 0..30 {
            let proto = UniversalExerciser::new(ObjectInit::FetchAdd(0), faa_scripts(4, 1));
            let mut sim = Simulation::new(&proto, &vec![Value::Nil; 4]);
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
                .unwrap();
            check_universal(&proto, &sim);
            let mut ranks: Vec<i64> = res
                .decisions
                .iter()
                .flat_map(|d| d.as_ref().unwrap().as_seq().unwrap().to_vec())
                .map(|v| v.as_int().unwrap())
                .collect();
            ranks.sort_unstable();
            assert_eq!(ranks, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn universal_test_and_set_has_one_winner() {
        for seed in 0..30 {
            let scripts = vec![vec![OpKind::TestAndSet]; 3];
            let proto = UniversalExerciser::new(ObjectInit::TestAndSet, scripts);
            let mut sim = Simulation::new(&proto, &vec![Value::Nil; 3]);
            let res = sim
                .run(&mut scheduler::BurstSched::new(seed, 4), 1_000_000)
                .unwrap();
            check_universal(&proto, &sim);
            let winners = res
                .decisions
                .iter()
                .filter(|d| d.as_ref().unwrap().as_seq().unwrap()[0] == Value::Bool(false))
                .count();
            assert_eq!(winners, 1, "seed {seed}");
        }
    }

    #[test]
    fn universal_register_reads_see_writes() {
        // p0 writes then reads; p1 writes; the read sees one of the
        // writes (whatever the log ordered) — replay-validated.
        for seed in 0..30 {
            let scripts = vec![
                vec![OpKind::Write(Value::Int(10)), OpKind::Read],
                vec![OpKind::Write(Value::Int(20))],
            ];
            let proto = UniversalExerciser::new(ObjectInit::Register(Value::Nil), scripts);
            let mut sim = Simulation::new(&proto, &vec![Value::Nil; 2]);
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
                .unwrap();
            check_universal(&proto, &sim);
            let p0 = res.decisions[0]
                .as_ref()
                .unwrap()
                .as_seq()
                .unwrap()
                .to_vec();
            assert!(p0[1] == Value::Int(10) || p0[1] == Value::Int(20), "{p0:?}");
        }
    }

    #[test]
    fn multi_op_scripts_under_crashes() {
        use bso_sim::CrashPlan;
        for seed in 0..20 {
            let proto = UniversalExerciser::new(ObjectInit::FetchAdd(0), faa_scripts(3, 2));
            let mut sim = Simulation::new(&proto, &vec![Value::Nil; 3])
                .with_crash_plan(CrashPlan::none().crash(seed as usize % 3, 5));
            let _ = sim
                .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
                .unwrap();
            // Survivors' responses still replay-consistent.
            check_universal(&proto, &sim);
        }
    }

    #[test]
    fn on_hardware_atomics() {
        let proto = UniversalExerciser::new(ObjectInit::FetchAdd(0), faa_scripts(4, 2));
        for _ in 0..10 {
            let decisions =
                bso_sim::thread_runner::run_on_threads(&proto, &vec![Value::Nil; 4]).unwrap();
            let mut ranks: Vec<i64> = decisions
                .iter()
                .flat_map(|d| d.as_seq().unwrap().to_vec())
                .map(|v| v.as_int().unwrap())
                .collect();
            ranks.sort_unstable();
            assert_eq!(ranks, (0..8).collect::<Vec<i64>>());
        }
    }

    #[test]
    fn empty_scripts_finish_immediately() {
        let proto = UniversalExerciser::new(ObjectInit::FetchAdd(0), vec![vec![], vec![]]);
        let mut sim = Simulation::new(&proto, &vec![Value::Nil; 2]);
        let res = sim.run(&mut scheduler::RoundRobin::new(), 100).unwrap();
        assert!(res
            .decisions
            .iter()
            .all(|d| d == &Some(Value::Seq(Vec::new()))));
    }

    #[test]
    fn log_entry_roundtrip() {
        let kinds = vec![
            OpKind::Read,
            OpKind::Write(Value::Pid(3)),
            OpKind::Cas {
                expect: Value::Nil,
                new: Value::Int(1),
            },
            OpKind::TestAndSet,
            OpKind::Reset,
            OpKind::FetchAdd(-4),
            OpKind::Swap(Value::Bool(true)),
            OpKind::SnapshotScan,
            OpKind::SnapshotUpdate(Value::Int(2)),
            OpKind::StickyWrite(Value::Pid(1)),
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let e = LogEntry {
                pid: i,
                idx: i * 2,
                kind,
            };
            assert_eq!(LogEntry::from_value(&e.to_value()), e);
        }
    }
}
