use bso_combinatorics::perm::{factorial, nth_permutation, permutation_rank};
use bso_objects::{Layout, ObjectId, ObjectInit, Op, Sym, Value};
use bso_sim::{Action, Pid, Protocol};

use crate::swmr::{ScanState, SnapCell};
use crate::LabelElectionError;

/// [`crate::LabelElection`], fully from scratch: one
/// `compare&swap-(k)` plus **plain single-writer registers** — no
/// snapshot object.
///
/// The primitive-snapshot variant is the one to read (same algorithm,
/// clearer states); this variant substitutes the classical wait-free
/// snapshot construction ([`crate::swmr`], after Afek–Attiya–Dolev–
/// Gafni–Merritt–Shavit) for the simulator's snapshot object, closing
/// the one modelling convenience the paper's "unbounded read/write
/// memory plus one compare&swap-(k)" setting allows us: everything
/// below the compare&swap is now literally reads and writes.
///
/// Scans cost `O(n²)` reads, so the per-process step bound grows from
/// `O(k)` shared operations to `O(k·n²)` — the price of the
/// construction, measured in the tests.
///
/// Exhaustive exploration is *not* applicable here: the snapshot
/// construction's sequence numbers grow without bound, so the global
/// state space is infinite (the explorer reports `Exhausted`, not a
/// verdict). Correctness evidence is the spec checker under stress
/// schedules, crash plans, and hardware runs — plus the exhaustively
/// verified primitive-snapshot variant it mirrors.
#[derive(Clone, Debug)]
pub struct LabelElectionRw {
    n: usize,
    k: usize,
    perms: Vec<Vec<u8>>,
    logs: SnapCell,
}

impl LabelElectionRw {
    const CAS: ObjectId = ObjectId(0);

    /// Configures an election among `n` processes with a
    /// `compare&swap-(k)`.
    ///
    /// # Errors
    ///
    /// [`LabelElectionError`] if `k < 3` or `n > (k−1)!`.
    pub fn new(n: usize, k: usize) -> Result<LabelElectionRw, LabelElectionError> {
        if k < 3 {
            return Err(LabelElectionError::DomainTooSmall { k });
        }
        let max = factorial(k - 1);
        if n == 0 || n as u128 > max {
            return Err(LabelElectionError::TooManyProcesses { n, max });
        }
        let perms = (0..n).map(|p| nth_permutation(p as u128, k - 1)).collect();
        Ok(LabelElectionRw {
            n,
            k,
            perms,
            logs: SnapCell::new(1, n),
        })
    }

    /// The register's domain size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Decodes the data parts of a scan into `(registered, merged
    /// log)` — identical to the primitive variant's digest.
    fn digest(&self, datas: &[Value]) -> (Vec<Pid>, Vec<u8>) {
        let mut registered = Vec::new();
        let mut merged: &[Value] = &[];
        for (pid, slot) in datas.iter().enumerate() {
            if let Some(log) = slot.as_seq() {
                registered.push(pid);
                debug_assert!(
                    log.iter().zip(merged.iter()).all(|(a, b)| a == b),
                    "slot logs are not mutual prefixes"
                );
                if log.len() > merged.len() {
                    merged = log;
                }
            }
        }
        let merged: Vec<u8> = merged
            .iter()
            .map(|v| {
                v.as_sym()
                    .and_then(Sym::value)
                    .expect("logs hold non-⊥ symbols")
            })
            .collect();
        (registered, merged)
    }

    fn encode_log(log: &[u8]) -> Value {
        Value::Seq(log.iter().map(|&v| Value::Sym(Sym::new(v))).collect())
    }

    fn last_sym(log: &[u8]) -> Sym {
        match log.last() {
            None => Sym::BOTTOM,
            Some(&v) => Sym::new(v),
        }
    }
}

/// Local state of one [`LabelElectionRw`] process.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RwLabelState {
    pid: Pid,
    /// Own update counter (sequence numbers for the snapshot cells).
    seq: i64,
    phase: RwPhase,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum RwPhase {
    /// Scanning for the embedded view of a pending own-log update.
    UpdateScan {
        /// The log to publish once the scan completes.
        data: Vec<u8>,
        /// Scan progress.
        scan: ScanState,
    },
    /// Writing the own register (completing the update).
    WriteBack {
        /// The log being published.
        data: Vec<u8>,
        /// The embedded helping view.
        view: Vec<Value>,
    },
    /// Reading the compare&swap register.
    ReadCas,
    /// Scanning the logs (the iteration's second phase).
    DigestScan {
        /// The value read from the compare&swap.
        cur: Sym,
        /// Scan progress.
        scan: ScanState,
    },
    /// Attempting `c&s(expect → next)`.
    Attempt {
        /// Last logged value.
        expect: Sym,
        /// Fresh value to install.
        next: Sym,
    },
    /// About to decide.
    Done {
        /// The elected process.
        winner: Pid,
    },
}

impl Protocol for LabelElectionRw {
    type State = RwLabelState;

    fn processes(&self) -> usize {
        self.n
    }

    fn layout(&self) -> Layout {
        let mut l = Layout::new();
        l.push(ObjectInit::CasK { k: self.k });
        // n single-writer registers — nothing stronger below the cas.
        l.push_n(ObjectInit::Register(Value::Nil), self.n);
        l
    }

    fn init(&self, pid: Pid, _input: &Value) -> RwLabelState {
        // Registration = first update, publishing the empty log.
        RwLabelState {
            pid,
            seq: 0,
            phase: RwPhase::UpdateScan {
                data: Vec::new(),
                scan: self.logs.begin_scan(),
            },
        }
    }

    fn next_action(&self, st: &RwLabelState) -> Action {
        match &st.phase {
            RwPhase::UpdateScan { scan, .. } | RwPhase::DigestScan { scan, .. } => {
                Action::Invoke(self.logs.scan_action(scan))
            }
            RwPhase::WriteBack { data, view } => Action::Invoke(self.logs.update_op(
                st.pid,
                st.seq + 1,
                Self::encode_log(data),
                view.clone(),
            )),
            RwPhase::ReadCas => Action::Invoke(Op::read(Self::CAS)),
            RwPhase::Attempt { expect, next } => {
                Action::Invoke(Op::cas(Self::CAS, Value::Sym(*expect), Value::Sym(*next)))
            }
            RwPhase::Done { winner } => Action::Decide(Value::Pid(*winner)),
        }
    }

    fn on_response(&self, st: &mut RwLabelState, resp: Value) {
        match &mut st.phase {
            RwPhase::UpdateScan { data, scan } => {
                if let Some(view) = self.logs.scan_response(scan, resp) {
                    st.phase = RwPhase::WriteBack {
                        data: std::mem::take(data),
                        view,
                    };
                }
            }
            RwPhase::WriteBack { .. } => {
                st.seq += 1;
                st.phase = RwPhase::ReadCas;
            }
            RwPhase::ReadCas => {
                st.phase = RwPhase::DigestScan {
                    cur: resp.as_sym().expect("compare&swap read returns a symbol"),
                    scan: self.logs.begin_scan(),
                };
            }
            RwPhase::DigestScan { cur, scan } => {
                let cur = *cur;
                if let Some(view) = self.logs.scan_response(scan, resp) {
                    let (registered, merged) = self.digest(&view);
                    st.phase = match cur.value() {
                        Some(v) if !merged.contains(&v) => {
                            // Pending value: write-ahead before anything
                            // else (a fresh update, scan included).
                            let mut log = merged;
                            log.push(v);
                            RwPhase::UpdateScan {
                                data: log,
                                scan: self.logs.begin_scan(),
                            }
                        }
                        _ if merged.len() == self.k - 1 => {
                            let rank = permutation_rank(&merged);
                            assert!(
                                (rank as usize) < self.n,
                                "final label must belong to a registered process"
                            );
                            RwPhase::Done {
                                winner: rank as Pid,
                            }
                        }
                        _ => {
                            let j = merged.len();
                            let q = registered
                                .iter()
                                .copied()
                                .find(|&q| self.perms[q][..j] == merged[..])
                                .expect("invariant: a registered aligned process exists");
                            RwPhase::Attempt {
                                expect: Self::last_sym(&merged),
                                next: Sym::new(self.perms[q][j]),
                            }
                        }
                    };
                }
            }
            RwPhase::Attempt { .. } => st.phase = RwPhase::ReadCas,
            RwPhase::Done { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bso_sim::{checker, scheduler, CrashPlan, ProtocolExt, Simulation};

    #[test]
    fn construction_mirrors_the_primitive_variant() {
        assert!(LabelElectionRw::new(2, 3).is_ok());
        assert!(LabelElectionRw::new(3, 3).is_err());
        assert!(LabelElectionRw::new(6, 4).is_ok());
        assert!(LabelElectionRw::new(7, 4).is_err());
        assert!(LabelElectionRw::new(1, 2).is_err());
    }

    #[test]
    fn layout_is_one_cas_plus_plain_registers() {
        let proto = LabelElectionRw::new(6, 4).unwrap();
        let layout = proto.layout();
        assert_eq!(layout.len(), 7);
        assert!(matches!(layout.objects()[0], ObjectInit::CasK { k: 4 }));
        for o in &layout.objects()[1..] {
            assert!(matches!(o, ObjectInit::Register(_)), "{o:?}");
        }
    }

    #[test]
    fn stress_full_house_k4() {
        let proto = LabelElectionRw::new(6, 4).unwrap();
        for seed in 0..40 {
            let mut sim = Simulation::new(&proto, &proto.pid_inputs());
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 5_000_000)
                .unwrap();
            checker::check_election(&res).unwrap();
            // O(k·n²) step bound: scans cost (n+1)·n reads each.
            let n = 6;
            checker::check_step_bound(&res, 15 * 4 * (n + 1) * n).unwrap();
        }
    }

    #[test]
    fn stress_k5_partial_house() {
        let proto = LabelElectionRw::new(8, 5).unwrap();
        for seed in 0..10 {
            let mut sim = Simulation::new(&proto, &proto.pid_inputs());
            let res = sim
                .run(&mut scheduler::BurstSched::new(seed, 6), 20_000_000)
                .unwrap();
            checker::check_election(&res).unwrap();
        }
    }

    #[test]
    fn crashes_and_solo_runs() {
        let proto = LabelElectionRw::new(6, 4).unwrap();
        for solo in [0usize, 3, 5] {
            let plan = (0..6)
                .filter(|&p| p != solo)
                .fold(CrashPlan::none(), |pl, p| pl.crash(p, 0));
            let mut sim = Simulation::new(&proto, &proto.pid_inputs()).with_crash_plan(plan);
            let res = sim.run(&mut scheduler::RoundRobin::new(), 100_000).unwrap();
            assert_eq!(res.decisions[solo], Some(Value::Pid(solo)));
        }
        for seed in 0..15 {
            let plan = CrashPlan::none()
                .crash(seed as usize % 6, seed as usize % 9)
                .crash((seed as usize + 2) % 6, 1);
            let mut sim = Simulation::new(&proto, &proto.pid_inputs()).with_crash_plan(plan);
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 5_000_000)
                .unwrap();
            checker::check_election(&res).unwrap();
        }
    }

    #[test]
    fn agrees_with_primitive_variant_on_winner_semantics() {
        // Same label → same winner: the Lehmer decoding is shared.
        let rw = LabelElectionRw::new(6, 4).unwrap();
        let prim = crate::LabelElection::new(6, 4).unwrap();
        for p in 0..6 {
            assert_eq!(rw.perms[p], prim.label_of(p));
        }
    }

    #[test]
    fn on_hardware_atomics() {
        let proto = LabelElectionRw::new(6, 4).unwrap();
        for _ in 0..10 {
            let decisions =
                bso_sim::thread_runner::run_on_threads(&proto, &proto.pid_inputs()).unwrap();
            let w = decisions[0].as_pid().unwrap();
            assert!(decisions.iter().all(|d| d.as_pid().unwrap() == w));
        }
    }

    #[test]
    fn history_is_still_a_permutation_prefix() {
        let proto = LabelElectionRw::new(6, 4).unwrap();
        for seed in 0..10 {
            let mut sim = Simulation::new(&proto, &proto.pid_inputs());
            let res = sim
                .run(&mut scheduler::RandomSched::new(seed), 5_000_000)
                .unwrap();
            let hist =
                bso_sim::viz::register_history(&res.trace, ObjectId(0), Value::Sym(Sym::BOTTOM));
            let mut values: Vec<Value> = hist.iter().map(|(_, v)| v.clone()).collect();
            let len = values.len();
            values.sort();
            values.dedup();
            assert_eq!(values.len(), len, "seed {seed}: value reused");
            assert_eq!(len, proto.k(), "seed {seed}: history incomplete");
        }
    }
}
