//! Experiment E3/E4: the two election regimes, side by side.
//!
//! For each domain size `k`: `CasOnlyElection` hosts exactly `k−1`
//! processes (Burns–Cruz–Loui), `LabelElection` hosts `(k−1)!` once
//! read/write registers are added. Small instances are verified
//! *exhaustively* (every interleaving); larger ones are stress-tested
//! under seeded adversarial schedules, reporting worst-case steps per
//! process (the wait-freedom bound).
//!
//! ```text
//! cargo run --example election [--exhaustive]
//! ```

use bso::sim::{checker, scheduler, Explorer, ProtocolExt, Simulation, TaskSpec};
use bso::{CasOnlyElection, LabelElection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exhaustive = std::env::args().any(|a| a == "--exhaustive");

    println!(
        "{:>3} | {:>18} | {:>20} | {:>14}",
        "k", "cas alone (n=k−1)", "+ registers (n=(k−1)!)", "max steps/proc"
    );
    println!("{}", "-".repeat(68));
    for k in 3..=6 {
        // Burns regime.
        let burns_n = k - 1;
        let burns = CasOnlyElection::new(burns_n, k)?;
        let burns_status = if k <= 5 {
            let report = Explorer::new(&burns)
                .inputs(&burns.pid_inputs())
                .spec(TaskSpec::Election)
                .run();
            assert!(report.outcome.is_verified());
            format!("n={burns_n} ✓ exhaustive")
        } else {
            stress(&burns, 50)?;
            format!("n={burns_n} ✓ stress")
        };

        // Label regime.
        let label_n = bso::bounds::nk_algorithmic(k) as usize;
        let label = LabelElection::new(label_n, k)?;
        let (label_status, max_steps) = if exhaustive && k == 3 {
            let report = Explorer::new(&label)
                .inputs(&label.pid_inputs())
                .spec(TaskSpec::Election)
                .run();
            assert!(report.outcome.is_verified());
            (
                format!("n={label_n} ✓ exhaustive"),
                *report.max_steps_per_proc.iter().max().unwrap(),
            )
        } else {
            let steps = stress(&label, 50)?;
            (format!("n={label_n} ✓ stress"), steps)
        };

        println!(
            "{:>3} | {:>18} | {:>20} | {:>10} ≤ 12k",
            k, burns_status, label_status, max_steps
        );
    }
    println!();
    println!("Both protocols are wait-free with O(k) steps per process; the jump from");
    println!("k−1 to (k−1)! processes is bought entirely by the read/write registers.");
    for (kind, path) in bso::telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
    Ok(())
}

/// Runs `seeds` random and bursty schedules; returns the worst
/// observed per-process step count.
fn stress<P: bso::sim::Protocol>(
    proto: &P,
    seeds: u64,
) -> Result<usize, Box<dyn std::error::Error>> {
    let mut max_steps = 0;
    for seed in 0..seeds {
        for sched in [true, false] {
            let mut sim = Simulation::new(proto, &proto.pid_inputs());
            let result = if sched {
                sim.run(&mut scheduler::RandomSched::new(seed), 10_000_000)?
            } else {
                sim.run(&mut scheduler::BurstSched::new(seed, 6), 10_000_000)?
            };
            checker::check_election(&result)?;
            max_steps = max_steps.max(*result.steps.iter().max().unwrap());
        }
    }
    Ok(max_steps)
}
