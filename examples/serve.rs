//! Serving bounded synchronization objects over the wire.
//!
//! Starts a `bso-server` on an ephemeral loopback port with one
//! `compare&swap-(4)`, a register, and a fetch&add counter; drives it
//! from three recorded client connections (CAS contention, counter
//! traffic, and a leader election); then checks the recorded history
//! against the sequential specs with the Wing–Gong linearizability
//! checker — the same end-to-end pipeline `loadgen --smoke` runs in CI.
//!
//! Along the way it attaches a client latency histogram, scrapes the
//! live server with the wire-level `Introspect` request, and — when
//! `BSO_TELEMETRY` names a file — dumps the whole registry (server
//! metrics *and* the client round trips) on exit.
//!
//! ```text
//! cargo run --example serve
//! BSO_TELEMETRY=serve.json cargo run --example serve   # + server metrics
//! ```

use std::sync::Arc;

use bso::client::{Connection, HistoryRecorder};
use bso::objects::{Layout, ObjectId, ObjectInit, Op, OpKind, Sym, Value};
use bso::server::Server;
use bso::sim::check_history;
use bso::telemetry::json::{self, Json};
use bso::telemetry::Registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The global registry when `BSO_TELEMETRY` names a dump file (so
    // the client round trips land in it), a private live one
    // otherwise — the printed latency summary is real either way.
    let registry = if Registry::global().is_enabled() {
        Registry::default()
    } else {
        Registry::enabled()
    };
    // The served universe: Σ = {⊥, 0, 1, 2} compare&swap, a register,
    // and a counter.
    let mut layout = Layout::new();
    let cas = layout.push(ObjectInit::CasK { k: 4 });
    let reg = layout.push(ObjectInit::Register(Value::Nil));
    let ctr = layout.push(ObjectInit::FetchAdd(0));

    let handle = Server::builder().shards(2).bind("127.0.0.1:0", &layout)?;
    let addr = handle.local_addr();
    println!("serving {} objects on {addr}", layout.len());

    // Three client threads, one shared recording clock.
    let recorder = Arc::new(HistoryRecorder::new());
    std::thread::scope(|s| {
        for pid in 0..3usize {
            let recorder = Arc::clone(&recorder);
            let latency = registry.histogram("client.rtt_ns");
            s.spawn(move || {
                let mut conn = Connection::builder()
                    .recorder(recorder)
                    .latency_histogram(latency)
                    .connect(addr)
                    .expect("connect");
                // Everyone races the same compare&swap slot…
                conn.apply(
                    pid,
                    Op::cas(
                        cas,
                        Value::Sym(Sym::BOTTOM),
                        Value::Sym(Sym::new(pid as u8)),
                    ),
                )
                .expect("cas");
                // …stamps the register…
                conn.apply(pid, Op::write(reg, Value::Pid(pid)))
                    .expect("write");
                // …and pipelines a burst of counter increments (sent
                // as one batch, answered as one batch).
                let ids: Vec<u64> = (0..10)
                    .map(|_| {
                        conn.send(pid, Op::new(ctr, OpKind::FetchAdd(1)))
                            .expect("send")
                    })
                    .collect();
                for id in ids {
                    conn.wait(id).expect("wait");
                }
            });
        }
    });

    // The recorded concurrent history linearizes against the
    // sequential object specs.
    let log = recorder.take_log();
    check_history(&layout, &log)?;
    println!("history of {} ops: linearizable ✓", log.len());

    // Leader election as a service: one session, all participants
    // (spread over fresh connections) agree on the winner.
    let mut conn = Connection::builder().connect(addr)?;
    let session = conn.open_election(4)?;
    let mut winners = Vec::new();
    for pid in 0..3u32 {
        winners.push(Connection::builder().connect(addr)?.elect(session, pid)?);
    }
    assert!(winners.windows(2).all(|w| w[0] == w[1]));
    println!(
        "election session {session}: all 3 participants elected p{}",
        winners[0]
    );

    let ctr_now = conn.apply(0, Op::read(ObjectId(ctr.0)))?;
    println!("counter after the pipelined bursts: {ctr_now}");

    // Every completed round trip above recorded into the latency
    // histogram attached at connect time.
    let rtt = &registry.snapshot().histograms["client.rtt_ns"];
    println!(
        "client rtt over {} ops: p50 {:.1}us, p99 {:.1}us, max {:.1}us",
        rtt.count,
        rtt.p50() as f64 / 1e3,
        rtt.p99() as f64 / 1e3,
        rtt.max as f64 / 1e3,
    );

    // A running server is scrapable over the same wire: the
    // `Introspect` request returns a `bso-introspect/v1` snapshot of
    // per-shard state (see DESIGN.md §3.13, and `bsotop` for a live
    // dashboard built on it).
    let intro = json::parse(&conn.introspect()?)?;
    let shards = intro.get("shards").and_then(Json::items).unwrap_or(&[]);
    let served: u64 = shards
        .iter()
        .map(|s| {
            s.get("apply_ns")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        })
        .sum();
    println!(
        "introspect: {} over {} shards, {served} applies recorded in-shard",
        intro.get("schema").and_then(Json::as_str).unwrap_or("?"),
        shards.len(),
    );
    drop(conn);

    let stats = handle.shutdown();
    println!(
        "server drained: {} conns, {} requests, {} responses, {} busy, {} malformed",
        stats.connections, stats.requests, stats.responses, stats.busy, stats.malformed
    );
    for (name, path) in bso::telemetry::dump_all_if_env() {
        println!("{name} telemetry → {}", path.display());
    }
    Ok(())
}
