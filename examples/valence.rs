//! The anatomy of the impossibility arguments: valency analysis.
//!
//! FLP-style proofs (which the paper's reduction ultimately leans on)
//! revolve around *bivalent* states — global states from which both
//! decisions are still reachable — and *critical* states, where one
//! step resolves the bivalence. This example materializes the state
//! graphs of a sound consensus protocol and of a doomed one and counts
//! those states; for the doomed candidate it also prints the concrete
//! counterexample schedule found by the refuter, with a space–time
//! rendering.
//!
//! ```text
//! cargo run --example valence
//! ```

use bso::objects::Value;
use bso::protocols::consensus::{RwConsensus, TasConsensus};
use bso::sim::scheduler::Scripted;
use bso::sim::{refute, valence, viz, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inputs = vec![Value::Int(0), Value::Int(1)];

    println!("Valency analysis (binary inputs 0, 1)\n");
    for (name, report) in [
        (
            "TasConsensus (sound, test&set)",
            valence::analyze(&TasConsensus, &inputs, 1_000_000),
        ),
        (
            "RwConsensus (doomed, registers only)",
            valence::analyze(&RwConsensus, &inputs, 1_000_000),
        ),
    ] {
        println!("{name}:");
        println!("  states reachable : {}", report.states);
        println!(
            "  initial valence  : {:?} ({})",
            report.initial.values(),
            if report.initial.is_bivalent() {
                "bivalent"
            } else {
                "univalent"
            }
        );
        println!("  bivalent states  : {}", report.bivalent);
        println!("  critical states  : {}", report.critical);
        println!();
    }

    println!("The sound protocol funnels every schedule through a critical state");
    println!("(the test&set). The register-only candidate has no primitive that can");
    println!("resolve bivalence consistently — the refuter exhibits the schedule:\n");

    let verdict = refute::refute_consensus(&RwConsensus, &inputs, 1_000_000);
    let r = verdict.refutation().expect("FLP: must be refutable");
    println!("counterexample after exploring {} states:", r.states);
    let mut sim = Simulation::new(&RwConsensus, &inputs);
    let res = sim.run(&mut Scripted::new(r.violation.schedule.clone()), 1_000)?;
    print!("{}", viz::timeline(&res.trace, 2));
    println!(
        "\ndecisions: p0 → {:?}, p1 → {:?}  (disagreement)",
        res.decisions[0], res.decisions[1]
    );
    for (kind, path) in bso::telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
    Ok(())
}
