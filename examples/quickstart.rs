//! Quickstart: elect a leader among (k−1)! processes with one
//! `compare&swap-(k)` — in the simulator, under an adversarial
//! schedule, and on real hardware atomics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bso::sim::{checker, scheduler, Explorer, ProtocolExt, Simulation, TaskSpec};
use bso::LabelElection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, k) = (6, 4); // (k−1)! = 6 processes, domain {⊥, 0, 1, 2}
    let proto = LabelElection::new(n, k)?;
    println!("LabelElection: n = {n} processes, one compare&swap-({k}) + registers");
    println!(
        "(the register alone would support only k−1 = {} processes)\n",
        k - 1
    );

    // 1. Simulator, random adversarial schedule.
    let mut sim = Simulation::new(&proto, &proto.pid_inputs());
    let result = sim.run(&mut scheduler::RandomSched::new(42), 100_000)?;
    checker::check_election(&result)?;
    let winner = result.decisions[0].as_ref().unwrap();
    println!("simulated run : all {n} processes elected {winner}");
    println!(
        "              : steps per process = {:?} (wait-free, O(k) each)",
        result.steps
    );

    // 1b. The run, drawn: one row per process, one column per step.
    println!("\n{}", bso::sim::viz::timeline(&result.trace, n));
    println!(
        "compare&swap history: {}\n",
        bso::sim::viz::register_history_string(
            &result.trace,
            bso::objects::ObjectId(0),
            bso::objects::Sym::BOTTOM.into(),
        )
    );

    // 2. Bursty schedule with two crash failures.
    let plan = bso::sim::CrashPlan::none().crash(1, 3).crash(4, 0);
    let mut sim = Simulation::new(&proto, &proto.pid_inputs()).with_crash_plan(plan);
    let result = sim.run(&mut scheduler::BurstSched::new(7, 5), 100_000)?;
    checker::check_election(&result)?;
    println!(
        "crashy run    : survivors elected {}",
        result.decision_set().first().unwrap()
    );

    // 3. Real OS threads over hardware compare&swap.
    let decisions = bso::sim::thread_runner::run_on_threads(&proto, &proto.pid_inputs())?;
    println!("hardware run  : threads elected {}", decisions[0]);

    // 4. Every interleaving of a small instance, exhaustively.
    let small = LabelElection::new(2, 3)?;
    let report = Explorer::new(&small)
        .inputs(&small.pid_inputs())
        .spec(TaskSpec::Election)
        // Names the instance in any BSO_CHECKPOINT file so the
        // `replay checkpoint` command can rebuild it and resume.
        .protocol_id("label-election-2-3")
        .run();
    println!(
        "explorer      : n=2, k=3 verified over {} states ({} terminal)",
        report.states, report.terminals
    );

    for (kind, path) in bso::telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
    Ok(())
}
