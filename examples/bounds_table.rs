//! Experiment E6: the bound landscape of `n_k` (the paper's §1/§4).
//!
//! Regenerates the comparison the paper's introduction and conclusion
//! draw: the Burns–Cruz–Loui floor `k−1` (compare&swap alone), the
//! algorithmic `(k−1)!` (one compare&swap-(k) + registers,
//! `LabelElection`), the conjectured Θ(k!), and Theorem 1's ceiling
//! `k^(k²+3)`.
//!
//! ```text
//! cargo run --example bounds_table
//! ```

use bso::bounds;

fn main() {
    println!("n_k: processes electable with one compare&swap-(k)\n");
    println!(
        "{:>3} | {:>10} | {:>14} | {:>16} | {:>28}",
        "k", "cas alone", "+ registers", "conjecture Θ(k!)", "Theorem 1 ceiling k^(k²+3)"
    );
    println!(
        "{:>3} | {:>10} | {:>14} | {:>16} | {:>28}",
        "", "(k−1)", "(k−1)!", "k!", ""
    );
    println!("{}", "-".repeat(84));
    for row in bounds::landscape(10) {
        let upper = match row.upper {
            Some(u) => format!("{u}"),
            None => format!("≈ 2^{:.0}", row.upper_log2),
        };
        println!(
            "{:>3} | {:>10} | {:>14} | {:>16} | {:>28}",
            row.k, row.cas_alone, row.with_registers, row.conjectured, upper
        );
    }
    println!();
    println!("Every row satisfies  k−1 ≤ (k−1)! ≤ k! ≤ k^(k²+3):");
    println!("adding read/write registers to a bounded strong object increases its");
    println!("power exponentially — and (Theorem 1) only exponentially.");
    for (kind, path) in bso::telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
}
