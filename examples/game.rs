//! Experiment E2: Lemma 1.1 — the move/jump agent game.
//!
//! Exhaustively computes the maximum number of moves `m` agents can
//! make on the complete `k`-node digraph before the painted edges
//! contain a cycle, and compares against the lemma's `m^k` bound
//! (valid for `m ≥ 2`; the `m = 1` row shows the Hamiltonian-path
//! degeneracy the extended abstract glosses over — see EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release --example game
//! ```

use bso::combinatorics::search::{greedy_moves, max_moves_any_start};

fn main() {
    println!("Lemma 1.1: max moves before a painted cycle (exhaustive search)\n");
    println!(
        "{:>3} {:>3} | {:>10} | {:>8} | bound holds (m ≥ 2)",
        "k", "m", "max moves", "m^k"
    );
    println!("{}", "-".repeat(56));
    for (k, m) in [
        (2, 1),
        (3, 1),
        (4, 1),
        (2, 2),
        (3, 2),
        (4, 2),
        (2, 3),
        (3, 3),
    ] {
        let measured = max_moves_any_start(k, m);
        let bound = (m as u128).pow(k as u32);
        let verdict = if m == 1 {
            "degenerate (= k−1)".to_string()
        } else if (measured as u128) <= bound {
            "✓".to_string()
        } else {
            "✗ VIOLATED".to_string()
        };
        println!("{k:>3} {m:>3} | {measured:>10} | {bound:>8} | {verdict}");
        if m >= 2 {
            assert!(
                measured as u128 <= bound,
                "Lemma 1.1 violated at k={k}, m={m}"
            );
        }
    }

    println!("\nGreedy lower-bound witnesses on larger instances:");
    println!(
        "{:>3} {:>3} | {:>12} | {:>10}",
        "k", "m", "greedy moves", "m^k"
    );
    println!("{}", "-".repeat(40));
    for (k, m) in [(4, 3), (5, 2), (5, 3), (6, 2)] {
        let g = greedy_moves(k, &(0..m).map(|a| a % k).collect::<Vec<_>>(), 1_000_000);
        let bound = (m as u128).pow(k as u32);
        assert!((g as u128) <= bound);
        println!("{k:>3} {m:>3} | {g:>12} | {bound:>10}");
    }
    println!("\nThe potential argument (weights m^level against the final topological");
    println!("sort) is audited move-by-move in bso-combinatorics::game::audit_potential.");
    for (kind, path) in bso::telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
}
