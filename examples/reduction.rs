//! Experiment E1: the reduction of Theorem 1, executed.
//!
//! `m` emulators communicating through read/write memory only
//! construct legal runs of a compare&swap-(k) leader election and
//! adopt their runs' decisions. The paper's counting — at most
//! `(k−1)!` labels, hence at most `(k−1)!` distinct decisions — is
//! printed and checked, and every constructed run is validated by
//! linearizability replay (the executable Lemma 1.2).
//!
//! ```text
//! cargo run --example reduction
//! ```

use bso::combinatorics::perm::factorial;
use bso::{LabelElection, Reduction};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (phi, k, m) = (6, 4, 3);
    println!("Emulating A = LabelElection(Φ = {phi}, k = {k}) with m = {m} emulators");
    println!("Emulator shared memory: read/write (snapshot of swmr slots) ONLY.\n");

    let mut max_labels = 0;
    for seed in 0..30 {
        let a = LabelElection::new(phi, k)?;
        let report = Reduction::new(a, m).run_bursty(seed, 4)?;
        let summary = report.validate()?;
        let labels = report.distinct_labels();
        max_labels = max_labels.max(labels.len());
        if seed < 5 {
            println!(
                "seed {seed:>2}: {} branch(es), {} decision(s) {:?}, {} ops validated",
                summary.branches,
                report.distinct_decisions(),
                report.decision_set(),
                summary.ops_checked,
            );
        }
    }
    println!("  ⋮");
    println!(
        "\nacross 30 adversarial schedules: max distinct labels = {max_labels}, \
         bound (k−1)! = {}",
        factorial(k - 1)
    );
    assert!(max_labels as u128 <= factorial(k - 1));

    // A deterministic schedule that forces a *label* split: two
    // emulators each drive one v-process of LabelElection(2, 3) past
    // registration while the other is silent, then race their first
    // compare&swap successes scan–scan–publish–publish.
    println!("\nForcing a group split (k = 3, Φ = 2, m = 2, scripted schedule):");
    let a = LabelElection::new(2, 3)?;
    let red = Reduction::new(a, 2);
    let mut script: Vec<usize> = Vec::new();
    script.extend([1; 6]);
    script.extend([0; 6]);
    script.extend([0, 1, 0, 1]);
    let mut sched = bso::sim::scheduler::Scripted::new(script);
    let report = red.run_with(&mut sched, 1_000_000)?;
    report.validate()?;
    println!(
        "  labels {:?} → decisions {:?}: the emulators split into (k−1)! = 2 groups,",
        report.distinct_labels(),
        report.decision_set()
    );
    println!("  each group's run electing a different leader — a 2-set consensus among");
    println!("  the emulators, out of read/write memory plus nothing else.");

    println!("\nEvery constructed run passed linearizability replay against A's own");
    println!("object specifications (Lemma 1.2, executed). With Φ = O(k^(k²+3)) such");
    println!("an A would hand (k−1)!+1 read/write processes a (k−1)!-set consensus —");
    println!("impossible (Borowsky–Gafni, Herlihy–Shavit, Saks–Zaharoglou). Hence");
    println!("Theorem 1: n_k ≤ O(k^(k²+3)).");
    for (kind, path) in bso::telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
    Ok(())
}
