//! Experiment E5: Herlihy's hierarchy with the paper's space
//! refinement — verified witnesses and refuted candidates.
//!
//! ```text
//! cargo run --example hierarchy
//! ```

use bso::hierarchy::{hierarchy_table, refutations};

fn main() {
    println!("Herlihy's hierarchy, machine-checked, with the paper's refinement\n");
    println!(
        "{:<22} | {:>9} | {:<40}",
        "object", "consensus#", "one object + registers elects"
    );
    println!("{}", "-".repeat(80));
    for row in hierarchy_table() {
        println!(
            "{:<22} | {:>9} | {:<40}",
            row.object.to_string(),
            row.consensus_number.to_string(),
            row.single_object_election_ceiling
                .as_deref()
                .unwrap_or("unbounded"),
        );
    }

    println!("\nRefuting the impossible entries (exhaustive schedule exploration):\n");
    for d in refutations::demonstrate() {
        println!("• {}", d.candidate);
        println!("  fact     : {}", d.fact);
        println!(
            "  refuted  : {:?} after exploring {} states",
            d.violation, d.states
        );
        if d.schedule.is_empty() {
            println!("  witness  : cycle in the reachable state graph");
        } else {
            let shown: Vec<String> = d
                .schedule
                .iter()
                .take(12)
                .map(|p| format!("p{p}"))
                .collect();
            println!(
                "  schedule : {}{}",
                shown.join(" "),
                if d.schedule.len() > 12 { " …" } else { "" }
            );
        }
        println!();
    }
    println!("The possible entries (test&set n=2, fetch&add n=2, compare&swap any n,");
    println!("compare&swap-(k)+registers n ≤ (k−1)!) are verified exhaustively in the");
    println!("workspace test suites.");
    for (kind, path) in bso::telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
}
