//! Experiment E7: the full PODC '94 emulation machinery (Figures
//! 3/5/6) and the provisioning frontier.
//!
//! The reduction of Theorem 1 assumes an election `A` with a *huge*
//! number of virtual processes Φ — the suspension quotas and excess
//! thresholds consume them. This experiment makes that quantitative
//! assumption observable: for a fixed per-edge suspension quota, the
//! emulation **stalls** below a Φ frontier and completes above it —
//! stalling is not a bug but the executable face of "at most
//! O(k^(k²+3)) processes can elect", seen from the other side.
//!
//! Every constructed run — stalled or complete — is validated by the
//! run-legality checker (Lemma 1.2 without real-time constraints).
//!
//! ```text
//! cargo run --example rich_emulation
//! ```

use bso::emulation::pingpong::PingPong;
use bso::emulation::rich::{run_rich, RichConfig, RichEmulation};
use bso::sim::scheduler::RandomSched;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Rich emulation (suspension + rebalancing + tree-routed histories)");
    println!("A = PingPong(Φ, k = 3, 2 attempts): virtual processes REUSE register");
    println!("values, so the history must be woven through excess-graph cycles.\n");

    // 1. Φ sweep at fixed quota: the provisioning frontier.
    println!("Φ sweep, m = 2 emulators, suspension quota = 2 per edge:");
    println!(
        "{:>5} | {:>10} | {:>10} | {:>12}",
        "Φ", "completed", "stalled", "all legal?"
    );
    println!("{}", "-".repeat(48));
    let cfg = RichConfig {
        suspend_quota: 2,
        release_margin: 0, // adaptive (max over edge holders)
        threshold_base: 1,
        require_replacement: false,
        lazy_suspend: false,
    };
    for phi in [2usize, 4, 8, 16, 32] {
        let mut completed = 0;
        let mut stalled = 0;
        let mut legal = true;
        for seed in 0..10 {
            let a = PingPong::new(phi, 3, 2);
            let emu = RichEmulation::new(a, 2, cfg.clone());
            let report = run_rich(&emu, &mut RandomSched::new(seed), 400_000)?;
            if report.stalled {
                stalled += 1;
            } else {
                completed += 1;
            }
            legal &= report.validate().is_ok();
        }
        println!(
            "{:>5} | {:>10} | {:>10} | {:>12}",
            phi,
            completed,
            stalled,
            if legal { "✓" } else { "✗" }
        );
    }

    // 2. The paper's own parameters demand even more.
    println!("\nWith the paper's quotas (m·k² = 18 per edge) the same Φ stall:");
    for phi in [8usize, 32] {
        let a = PingPong::new(phi, 3, 2);
        let emu = RichEmulation::new(a, 2, RichConfig::paper(2, 3));
        let report = run_rich(&emu, &mut RandomSched::new(1), 200_000)?;
        println!(
            "  Φ = {phi:>3}: {}",
            if report.stalled {
                "stalled (under-provisioned)"
            } else {
                "completed"
            }
        );
    }

    println!("\nLabels never exceed (k−1)! = 2 despite value reuse, and every");
    println!("constructed run — including stalled prefixes — passes the");
    println!("run-legality check (the executable Lemma 1.2).");
    for (kind, path) in bso::telemetry::dump_all_if_env() {
        println!("{kind} written to {}", path.display());
    }
    Ok(())
}
