//! Integration tests spanning the workspace crates: the same protocol
//! state machines must satisfy the same specifications under the
//! simulator, the exhaustive explorer, the hardware thread runner and
//! the emulation.

use bso::objects::Value;
use bso::protocols::consensus::CasKConsensus;
use bso::protocols::snapshot::{views_are_comparable, SnapshotExerciser};
use bso::sim::{
    checker, linearizability, scheduler, thread_runner, CrashPlan, Explorer, Protocol, ProtocolExt,
    Simulation, TaskSpec,
};
use bso::{CasOnlyElection, LabelElection, Reduction};

#[test]
fn election_agrees_across_backends() {
    // Simulator, explorer and hardware must all certify the same
    // protocol instance.
    let proto = LabelElection::new(3, 4).unwrap();

    // Exhaustive.
    let report = Explorer::new(&proto)
        .inputs(&proto.pid_inputs())
        .spec(TaskSpec::Election)
        .run();
    assert!(report.outcome.is_verified());

    // Simulated.
    for seed in 0..10 {
        let mut sim = Simulation::new(&proto, &proto.pid_inputs());
        let res = sim
            .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
            .unwrap();
        checker::check_election(&res).unwrap();
    }

    // Hardware.
    for _ in 0..10 {
        let decisions = thread_runner::run_on_threads(&proto, &proto.pid_inputs()).unwrap();
        let w = decisions[0].as_pid().unwrap();
        assert!(decisions.iter().all(|d| d.as_pid().unwrap() == w));
    }
}

#[test]
fn hardware_histories_of_elections_are_linearizable() {
    // Record a full concurrent hardware history of the election and
    // replay it through the Wing–Gong checker against the sequential
    // object specifications.
    let proto = CasOnlyElection::new(3, 4).unwrap();
    for _ in 0..20 {
        let (decisions, log) =
            thread_runner::run_on_threads_recorded(&proto, &proto.pid_inputs()).unwrap();
        assert_eq!(decisions.len(), 3);
        linearizability::check_history(&proto.layout(), &log).unwrap();
    }
}

#[test]
fn consensus_composes_on_top_of_election() {
    // CasKConsensus = LabelElection + announcements: the composition
    // must satisfy consensus both simulated and on threads.
    let proto = CasKConsensus::new(6, 4).unwrap();
    let inputs: Vec<Value> = (0..6).map(|i| Value::Int(100 + i as i64)).collect();
    for seed in 0..10 {
        let mut sim = Simulation::new(&proto, &inputs);
        let res = sim
            .run(&mut scheduler::BurstSched::new(seed, 5), 1_000_000)
            .unwrap();
        checker::check_consensus(&res, &inputs).unwrap();
    }
    for _ in 0..5 {
        let decisions = thread_runner::run_on_threads(&proto, &inputs).unwrap();
        assert!(decisions.iter().all(|d| d == &decisions[0]));
        assert!(inputs.contains(&decisions[0]));
    }
}

#[test]
fn emulated_election_feeds_the_reduction() {
    // End-to-end: protocols crate supplies A, emulation constructs its
    // runs on read/write memory, sim validates them, combinatorics
    // bounds the label count.
    use bso::combinatorics::perm::factorial;
    for seed in 0..10 {
        let a = LabelElection::new(6, 4).unwrap();
        let report = Reduction::new(a, 3).run_seeded(seed).unwrap();
        let summary = report.validate().unwrap();
        assert!(summary.branches >= 1);
        assert!(report.distinct_labels().len() as u128 <= factorial(3));
        // The emulators' decisions are legal election outcomes of A.
        for d in report.result.decisions.iter().flatten() {
            assert!(d.as_pid().unwrap() < 6);
        }
    }
}

#[test]
fn emulation_of_burns_election_under_crashes() {
    // Crash an emulator mid-run: the others still decide (the
    // emulation inherits A's wait-freedom), and surviving branches
    // stay legal.
    for seed in 0..10 {
        let a = CasOnlyElection::new(4, 5).unwrap();
        let red = Reduction::new(a, 2);
        let inputs: Vec<Value> = (0..2).map(Value::Pid).collect();
        let proto = red.protocol();
        let mut sim = Simulation::new(proto, &inputs)
            .with_crash_plan(CrashPlan::none().crash(0, seed as usize % 5));
        let result = sim
            .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
            .unwrap();
        assert!(result.decisions[1].is_some(), "survivor must decide");
    }
}

#[test]
fn consensus_protocols_are_emulatable_targets() {
    // The reduction applies to anything of the right object shape —
    // including the consensus protocol BUILT on the election. The
    // emulators' decisions are then consensus values, and per-branch
    // legality still holds.
    let inputs: Vec<Value> = (0..6).map(|i| Value::Int(50 + i as i64)).collect();
    for seed in 0..6 {
        let a = CasKConsensus::new(6, 4).unwrap();
        let report = Reduction::new(a, 3).run_seeded(seed).unwrap();
        report.validate().unwrap();
        for d in report.result.decisions.iter().flatten() {
            // Decisions are Pid-shaped inputs of the emulated A (the
            // reduction feeds identities as inputs); they must be
            // valid v-process identities.
            assert!(d.as_pid().is_some() || d.as_int().is_some());
        }
    }
    let _ = inputs;
}

#[test]
fn rich_emulation_composes_with_protocol_crate() {
    use bso::emulation::rich::{run_rich, RichConfig, RichEmulation};
    for seed in 0..6 {
        let a = CasOnlyElection::new(3, 4).unwrap();
        let emu = RichEmulation::new(a, 2, RichConfig::demo());
        let report = run_rich(&emu, &mut scheduler::RandomSched::new(seed), 60_000).unwrap();
        report.validate().unwrap();
        assert!(report.result.decisions.iter().flatten().count() >= 1);
    }
}

#[test]
fn snapshot_construction_backs_the_snapshot_objects() {
    // The register-based snapshot produces comparable views on the
    // same backends that the snapshot-object-based protocols use.
    let proto = SnapshotExerciser::new(3, 2);
    let inputs = vec![Value::Nil; 3];
    for seed in 0..10 {
        let mut sim = Simulation::new(&proto, &inputs);
        let res = sim
            .run(&mut scheduler::RandomSched::new(seed), 1_000_000)
            .unwrap();
        let views: Vec<Vec<Value>> = res
            .decisions
            .iter()
            .map(|d| d.as_ref().unwrap().as_seq().unwrap().to_vec())
            .collect();
        assert!(views_are_comparable(&views));
    }
}

#[test]
fn refuter_and_verifier_disagree_on_nothing() {
    // Everything the test suites verify must not be refutable and vice
    // versa: spot-check representative instances.
    use bso::protocols::consensus::TasConsensus;
    use bso::sim::refute;
    let inputs = vec![Value::Int(1), Value::Int(2)];
    let verdict = refute::refute_consensus(&TasConsensus, &inputs, 1_000_000);
    assert!(
        verdict.is_correct(),
        "TasConsensus must verify, got {verdict:?}"
    );

    let verdict = refute::refute_election(&LabelElection::new(2, 3).unwrap(), 10_000_000);
    assert!(
        verdict.is_correct(),
        "LabelElection(2,3) must verify, got {verdict:?}"
    );
}
