//! Property-based tests on the workspace's core invariants.
//!
//! Seeded random-input loops over [`SplitMix64`] (no external
//! property-testing crate): each case is reproducible from the fixed
//! seed, and failure messages carry the case index.

use bso::combinatorics::game::{Game, GameAction};
use bso::combinatorics::perm::{nth_permutation, permutation_rank};
use bso::objects::rng::SplitMix64;
use bso::objects::{spec::ObjectState, ObjectInit, OpKind, Sym, Value};
use bso::protocols::snapshot::{views_are_comparable, SnapshotExerciser};
use bso::sim::{checker, scheduler::RandomSched, Protocol, ProtocolExt, Simulation};
use bso::LabelElection;

/// Lehmer encoding round-trips for every rank and size.
#[test]
fn perm_rank_roundtrip() {
    let mut rng = SplitMix64::new(1);
    for _ in 0..200 {
        let m = rng.usize_below(7);
        let total = bso::combinatorics::perm::factorial(m);
        let rank = if total == 0 {
            0
        } else {
            (rng.next_u64() as u128) % total
        };
        let p = nth_permutation(rank, m);
        assert_eq!(permutation_rank(&p), rank);
    }
}

/// The compare&swap-(k) sequential spec: the response always equals the
/// previous contents, and contents change exactly when the response
/// equals `expect`.
#[test]
fn cas_k_spec_semantics() {
    let mut rng = SplitMix64::new(2);
    for case in 0..200 {
        let k = rng.range_usize(2, 8);
        let mut cas = ObjectState::from_init(&ObjectInit::CasK { k });
        let mut shadow = Sym::BOTTOM;
        for _ in 0..rng.range_usize(1, 40) {
            let expect = Sym::from_code(rng.range_u8(0, 8) % k as u8);
            let new = Sym::from_code(rng.range_u8(0, 8) % k as u8);
            let resp = cas
                .apply(
                    0,
                    &OpKind::Cas {
                        expect: expect.into(),
                        new: new.into(),
                    },
                )
                .unwrap();
            assert_eq!(resp, Value::Sym(shadow), "case {case}");
            if shadow == expect {
                shadow = new;
            }
            assert_eq!(
                cas.apply(0, &OpKind::Read).unwrap(),
                Value::Sym(shadow),
                "case {case}"
            );
        }
    }
}

/// LabelElection satisfies the election spec under arbitrary seeded
/// schedules and instance sizes.
#[test]
fn label_election_random_instances() {
    let mut rng = SplitMix64::new(3);
    for case in 0..48 {
        let k = rng.range_usize(3, 6);
        let max = bso::combinatorics::perm::factorial(k - 1);
        let n = 1 + (rng.next_u64() as u128 % max) as usize;
        let seed = rng.next_u64();
        let proto = LabelElection::new(n, k).unwrap();
        let mut sim = Simulation::new(&proto, &proto.pid_inputs());
        let res = sim.run(&mut RandomSched::new(seed), 10_000_000).unwrap();
        assert!(
            checker::check_election(&res).is_ok(),
            "case {case} (n={n}, k={k})"
        );
        assert!(
            checker::check_step_bound(&res, 12 * k).is_ok(),
            "case {case}"
        );
    }
}

/// In the move/jump game, any legal action sequence keeps the painted
/// graph acyclic (cycle-closing moves are unplayable), and for m ≥ 2
/// the move count respects m^k.
#[test]
fn game_random_play_respects_bound() {
    let mut rng = SplitMix64::new(4);
    for case in 0..150 {
        let k = rng.range_usize(2, 5);
        let m = rng.range_usize(2, 4);
        let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
        let mut g = Game::new(k, &starts);
        for _ in 0..rng.range_usize(1, 120) {
            let actions = g.legal_actions();
            if actions.is_empty() {
                break;
            }
            g.act(actions[rng.usize_below(actions.len())]).unwrap();
        }
        assert!(
            (g.moves() as u128) <= (m as u128).pow(k as u32),
            "case {case}"
        );
        // Acyclicity: levels() terminates and respects every edge.
        let levels = g.levels();
        for u in 0..k {
            for v in 0..k {
                if u != v && g.is_painted(u, v) {
                    assert!(levels[u] > levels[v], "case {case}: edge {u}→{v}");
                }
            }
        }
    }
}

/// Snapshot views from the register-based construction are always
/// pairwise comparable.
#[test]
fn snapshot_views_comparable() {
    let mut rng = SplitMix64::new(5);
    for case in 0..64 {
        let n = rng.range_usize(2, 5);
        let rounds = rng.range_usize(1, 4);
        let seed = rng.next_u64();
        let proto = SnapshotExerciser::new(n, rounds);
        let mut sim = Simulation::new(&proto, &vec![Value::Nil; n]);
        let res = sim.run(&mut RandomSched::new(seed), 10_000_000).unwrap();
        let views: Vec<Vec<Value>> = res
            .decisions
            .iter()
            .map(|d| d.as_ref().unwrap().as_seq().unwrap().to_vec())
            .collect();
        assert!(
            views_are_comparable(&views),
            "case {case} (n={n}, rounds={rounds})"
        );
    }
}

/// The emulation respects the label bound on random instances.
#[test]
fn reduction_label_bound() {
    let mut rng = SplitMix64::new(6);
    for case in 0..12 {
        let m = rng.range_usize(2, 4);
        let seed = rng.next_u64();
        let a = LabelElection::new(6, 4).unwrap();
        let report = bso::Reduction::new(a, m).run_seeded(seed).unwrap();
        assert!(report.validate().is_ok(), "case {case} (m={m})");
        assert!(report.distinct_labels().len() <= 6, "case {case}");
    }
}

/// Completeness of the run-legality checker: every trace actually
/// produced by the simulator IS a legal run, so feeding its per-process
/// operation sequences back to `check_run_legality` must always succeed
/// (the simulator's own step order is a witness).
#[test]
fn simulated_runs_are_always_legal() {
    use bso::sim::{linearizability, EventKind};
    let mut rng = SplitMix64::new(7);
    for case in 0..48 {
        let max = bso::combinatorics::perm::factorial(3) as usize; // k = 4
        let n = rng.range_usize(2, 5).min(max);
        let seed = rng.next_u64();
        let proto = LabelElection::new(n, 4).unwrap();
        let mut sim = Simulation::new(&proto, &proto.pid_inputs());
        let res = sim.run(&mut RandomSched::new(seed), 10_000_000).unwrap();
        let mut by_pid: Vec<Vec<(usize, bso::objects::Op, Value)>> = vec![Vec::new(); n];
        for e in res.trace.events() {
            if let EventKind::Applied { op, resp } = &e.kind {
                by_pid[e.pid].push((e.pid, op.clone(), resp.clone()));
            }
        }
        assert!(
            linearizability::check_run_legality(&proto.layout(), &by_pid).is_ok(),
            "case {case} (n={n})"
        );
    }
}

/// Jump freshness bookkeeping: an agent can never jump to a node
/// without an intervening move into it.
#[test]
fn game_jump_requires_move() {
    for k in 2usize..5 {
        for m in 1usize..4 {
            let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
            let g = Game::new(k, &starts);
            for a in 0..m {
                for u in 0..k {
                    assert!(!g.is_fresh(a, u), "initially nothing is fresh");
                }
            }
            let only_moves = g
                .legal_actions()
                .iter()
                .all(|a| matches!(a, GameAction::Move { .. }));
            assert!(only_moves);
        }
    }
}
