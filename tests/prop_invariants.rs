//! Property-based tests (proptest) on the workspace's core invariants.

use bso::combinatorics::game::{Game, GameAction};
use bso::combinatorics::perm::{nth_permutation, permutation_rank};
use bso::objects::{spec::ObjectState, ObjectInit, OpKind, Sym, Value};
use bso::protocols::snapshot::{views_are_comparable, SnapshotExerciser};
use bso::sim::{checker, scheduler::RandomSched, Protocol, ProtocolExt, Simulation};
use bso::LabelElection;
use proptest::prelude::*;

proptest! {
    /// Lehmer encoding round-trips for every rank and size.
    #[test]
    fn perm_rank_roundtrip(m in 0usize..7, salt in any::<u64>()) {
        let total = bso::combinatorics::perm::factorial(m);
        let rank = if total == 0 { 0 } else { (salt as u128) % total };
        let p = nth_permutation(rank, m);
        prop_assert_eq!(permutation_rank(&p), rank);
    }

    /// The compare&swap-(k) sequential spec: the response always equals
    /// the previous contents, and contents change exactly when the
    /// response equals `expect`.
    #[test]
    fn cas_k_spec_semantics(
        k in 2usize..8,
        ops in proptest::collection::vec((0u8..8, 0u8..8), 1..40),
    ) {
        let mut cas = ObjectState::from_init(&ObjectInit::CasK { k });
        let mut shadow = Sym::BOTTOM;
        for (e, n) in ops {
            let expect = Sym::from_code(e % k as u8);
            let new = Sym::from_code(n % k as u8);
            let resp = cas
                .apply(0, &OpKind::Cas { expect: expect.into(), new: new.into() })
                .unwrap();
            prop_assert_eq!(resp, Value::Sym(shadow));
            if shadow == expect {
                shadow = new;
            }
            prop_assert_eq!(cas.apply(0, &OpKind::Read).unwrap(), Value::Sym(shadow));
        }
    }

    /// LabelElection satisfies the election spec under arbitrary
    /// seeded schedules and instance sizes.
    #[test]
    fn label_election_random_instances(
        k in 3usize..6,
        n_salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let max = bso::combinatorics::perm::factorial(k - 1);
        let n = 1 + (n_salt as u128 % max) as usize;
        let proto = LabelElection::new(n, k).unwrap();
        let mut sim = Simulation::new(&proto, &proto.pid_inputs());
        let res = sim.run(&mut RandomSched::new(seed), 10_000_000).unwrap();
        prop_assert!(checker::check_election(&res).is_ok());
        prop_assert!(checker::check_step_bound(&res, 12 * k).is_ok());
    }

    /// In the move/jump game, any legal action sequence keeps the
    /// painted graph acyclic (cycle-closing moves are unplayable), and
    /// for m ≥ 2 the move count respects m^k.
    #[test]
    fn game_random_play_respects_bound(
        k in 2usize..5,
        m in 2usize..4,
        choices in proptest::collection::vec(any::<u32>(), 1..120),
    ) {
        let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
        let mut g = Game::new(k, &starts);
        for c in choices {
            let actions = g.legal_actions();
            if actions.is_empty() {
                break;
            }
            g.act(actions[c as usize % actions.len()]).unwrap();
        }
        prop_assert!((g.moves() as u128) <= (m as u128).pow(k as u32));
        // Acyclicity: levels() terminates and respects every edge.
        let levels = g.levels();
        for u in 0..k {
            for v in 0..k {
                if u != v && g.is_painted(u, v) {
                    prop_assert!(levels[u] > levels[v]);
                }
            }
        }
    }

    /// Snapshot views from the register-based construction are always
    /// pairwise comparable.
    #[test]
    fn snapshot_views_comparable(
        n in 2usize..5,
        rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        let proto = SnapshotExerciser::new(n, rounds);
        let mut sim = Simulation::new(&proto, &vec![Value::Nil; n]);
        let res = sim.run(&mut RandomSched::new(seed), 10_000_000).unwrap();
        let views: Vec<Vec<Value>> = res
            .decisions
            .iter()
            .map(|d| d.as_ref().unwrap().as_seq().unwrap().to_vec())
            .collect();
        prop_assert!(views_are_comparable(&views));
    }

    /// The emulation respects the label bound on random instances.
    #[test]
    fn reduction_label_bound(seed in any::<u64>(), m in 2usize..4) {
        let a = LabelElection::new(6, 4).unwrap();
        let report = bso::Reduction::new(a, m).run_seeded(seed).unwrap();
        prop_assert!(report.validate().is_ok());
        prop_assert!(report.distinct_labels().len() <= 6);
    }

    /// Completeness of the run-legality checker: every trace actually
    /// produced by the simulator IS a legal run, so feeding its
    /// per-process operation sequences back to `check_run_legality`
    /// must always succeed (the simulator's own step order is a
    /// witness).
    #[test]
    fn simulated_runs_are_always_legal(seed in any::<u64>(), n in 2usize..5) {
        use bso::sim::{linearizability, EventKind};
        let max = bso::combinatorics::perm::factorial(3) as usize; // k = 4
        let n = n.min(max);
        let proto = LabelElection::new(n, 4).unwrap();
        let mut sim = Simulation::new(&proto, &proto.pid_inputs());
        let res = sim.run(&mut RandomSched::new(seed), 10_000_000).unwrap();
        let mut by_pid: Vec<Vec<(usize, bso::objects::Op, Value)>> = vec![Vec::new(); n];
        for e in res.trace.events() {
            if let EventKind::Applied { op, resp } = &e.kind {
                by_pid[e.pid].push((e.pid, op.clone(), resp.clone()));
            }
        }
        prop_assert!(linearizability::check_run_legality(&proto.layout(), &by_pid).is_ok());
    }

    /// Jump freshness bookkeeping: an agent can never jump to a node
    /// without an intervening move into it.
    #[test]
    fn game_jump_requires_move(k in 2usize..5, m in 1usize..4) {
        let starts: Vec<usize> = (0..m).map(|a| a % k).collect();
        let g = Game::new(k, &starts);
        for a in 0..m {
            for u in 0..k {
                prop_assert!(!g.is_fresh(a, u), "initially nothing is fresh");
            }
        }
        let only_moves =
            g.legal_actions().iter().all(|a| matches!(a, GameAction::Move { .. }));
        prop_assert!(only_moves);
    }
}
