//! The paper's quantitative claims as assertions — the experiment
//! index of EXPERIMENTS.md, executable.

use bso::combinatorics::perm::factorial;
use bso::combinatorics::{bounds, search};
use bso::sim::{Explorer, ProtocolExt, TaskSpec};
use bso::{CasOnlyElection, LabelElection, Reduction};

/// E6 / §1: the bound ordering k−1 ≤ (k−1)! ≤ k! ≤ k^(k²+3), strict in
/// the middle from k = 4 on.
#[test]
fn e6_bound_landscape_ordering() {
    for row in bounds::landscape(12) {
        assert!(row.cas_alone as u128 <= row.with_registers);
        assert!(row.with_registers <= row.conjectured);
        if let Some(u) = row.upper {
            assert!(row.conjectured <= u);
        } else {
            assert!(row.upper_log2 > 127.0);
        }
        if row.k >= 4 {
            assert!((row.cas_alone as u128) < row.with_registers);
        }
    }
}

/// E4 (Burns–Cruz–Loui [5]): a compare&swap-(k) alone elects exactly
/// k−1 — the construction exists at k−1 and structurally cannot go
/// further (no spare symbols).
#[test]
fn e4_burns_regime() {
    for k in 3..=6 {
        let proto = CasOnlyElection::new(k - 1, k).unwrap();
        let report = Explorer::new(&proto)
            .inputs(&proto.pid_inputs())
            .spec(TaskSpec::Election)
            .run();
        assert!(report.outcome.is_verified(), "k={k}");
        assert!(
            CasOnlyElection::new(k, k).is_err(),
            "k={k}: ceiling must bind"
        );
    }
}

/// E3 ([1]'s Ω(k!)): (k−1)! processes elect with one compare&swap-(k)
/// plus registers — exhaustively for k = 3, by stress beyond.
#[test]
fn e3_label_regime_k3_exhaustive() {
    let proto = LabelElection::new(2, 3).unwrap();
    let report = Explorer::new(&proto)
        .inputs(&proto.pid_inputs())
        .spec(TaskSpec::Election)
        .run();
    assert!(report.outcome.is_verified());
    // Wait-freedom in numbers: the exhaustive bound is O(k).
    let max = *report.max_steps_per_proc.iter().max().unwrap();
    assert!(max <= 12 * 3, "step bound {max} too large");
}

/// E3 continued: the ceiling (k−1)! binds, and the protocol scales to
/// n = 120 (k = 6) under adversarial schedules.
#[test]
fn e3_label_regime_scales() {
    use bso::sim::{checker, scheduler, Simulation};
    assert!(LabelElection::new(121, 6).is_err());
    let proto = LabelElection::new(120, 6).unwrap();
    for seed in 0..5 {
        let mut sim = Simulation::new(&proto, &proto.pid_inputs());
        let res = sim
            .run(&mut scheduler::RandomSched::new(seed), 50_000_000)
            .unwrap();
        checker::check_election(&res).unwrap();
        checker::check_step_bound(&res, 12 * 6).unwrap();
    }
}

/// E2 (Lemma 1.1): exhaustive maxima respect m^k for m ≥ 2; the m = 1
/// degeneracy equals k−1 (see the game module docs).
#[test]
fn e2_game_bound() {
    for (k, m) in [(2, 2), (3, 2), (2, 3), (3, 3)] {
        let measured = search::max_moves_any_start(k, m);
        assert!(
            (measured as u128) <= (m as u128).pow(k as u32),
            "k={k} m={m}: {measured}"
        );
    }
    for k in 2..=4 {
        assert_eq!(search::max_moves_any_start(k, 1), k - 1, "m=1 degeneracy");
    }
}

/// E2: the bound is attained at (k, m) = (3, 2) — the exhaustive
/// search realizes m^k... or documents the gap (regression-pinned).
#[test]
fn e2_game_exact_values() {
    // Exact maxima, pinned as regression values (see EXPERIMENTS.md for
    // the comparison against m^k).
    assert_eq!(search::max_moves_any_start(2, 2), 2);
    assert_eq!(search::max_moves_any_start(3, 2), 5);
    assert_eq!(search::max_moves_any_start(2, 3), 3);
    assert_eq!(search::max_moves_any_start(3, 3), 9);
}

/// E1 (Theorem 1 / Claim 1): the reduction's label count never exceeds
/// (k−1)!, and every constructed run validates.
#[test]
fn e1_reduction_label_bound() {
    for seed in 0..15 {
        let a = LabelElection::new(6, 4).unwrap();
        let report = Reduction::new(a, 3).run_bursty(seed, 4).unwrap();
        report.validate().unwrap();
        assert!(report.distinct_labels().len() as u128 <= factorial(3));
        assert!(report.distinct_decisions() as u128 <= factorial(3));
    }
}

/// E5: the hierarchy refutations all go through (detail in
/// bso-hierarchy's own tests; this is the cross-workspace smoke).
#[test]
fn e5_hierarchy_refutations() {
    let demos = bso::hierarchy::refutations::demonstrate();
    assert_eq!(demos.len(), 6);
}
